//! `jportal-inspect` — flight-recorder explorer: turn the decision
//! journal of a lossy analysis into per-thread quality tables, per-hole
//! candidate narratives, and decision-level diffs between runs.
//!
//! ```sh
//! cargo run --release --example inspect -- summarize            # all seed workloads
//! cargo run --release --example inspect -- summarize sunflow    # one workload
//! cargo run --release --example inspect -- explain --hole 1 sunflow
//! cargo run --release --example inspect -- diff a.jsonl b.jsonl
//! cargo run --release --example inspect -- corpus fop.jpcorpus --check
//! cargo run --release --example inspect -- telemetry http://127.0.0.1:9100
//! cargo run --release --example inspect -- telemetry target/obs/fop.metrics.json --check
//! cargo run --release --example inspect -- profile http://127.0.0.1:9100 --top 10
//! cargo run --release --example inspect -- profile profile.folded --check
//! cargo run --release --example inspect -- --check              # CI schema gate
//! ```
//!
//! `summarize` also writes `target/obs/<name>.journal.jsonl` so two runs
//! (e.g. before/after a matcher change) can be `diff`ed decision by
//! decision. `--check` validates the JSONL schema round-trip, the ring's
//! drop counter, and byte-identical journal structure between
//! `parallelism: Some(1)` and `None`.

use jportal::core::{JPortal, JPortalConfig, JPortalReport};
use jportal::jvm::{Jvm, JvmConfig, RunResult};
use jportal::obs::journal::{parse_jsonl, ParsedRecord};
use jportal::obs::json::{self, Value};
use jportal::obs::{http_get, JournalSnapshot};
use jportal::workloads::{all_workloads, workload_by_name, Workload};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Lossy collection config (same regime as `observe`): small PT buffers
/// and a slow exporter force per-core overflows, so recovery — and
/// therefore the journal — has decisions to record.
fn run_jvm(w: &Workload) -> RunResult {
    let cfg = JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: 1600,
        drain_bytes_per_kilocycle: 60,
        ..JvmConfig::default()
    };
    Jvm::new(cfg).run_threads(&w.program, &w.threads)
}

fn analyze(w: &Workload, r: &RunResult, config: JPortalConfig) -> (JPortalReport, JournalSnapshot) {
    let jp = JPortal::with_config(&w.program, config);
    let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
    let journal = jp.obs().journal_snapshot();
    (report, journal)
}

/// Every event kind the current schema emits (the `--check` allow-list;
/// `journal_summary` is the JSONL trailer, not an event).
const KNOWN_KINDS: &[&str] = &[
    "segment_matched",
    "hole_opened",
    "candidate_considered",
    "candidates_elided",
    "candidate_chosen",
    "fallback_walk",
    "hole_unfilled",
    "summary_prefilter",
    "corpus_lookup",
    "lint_break",
    "journal_summary",
];

// ---------------------------------------------------------------- summarize

fn summarize(w: &Workload) -> Result<(), String> {
    let r = run_jvm(w);
    let (report, journal) = analyze(w, &r, JPortalConfig::default());

    println!("=== {} ===", w.name);
    println!(
        "{:>7} {:>6} {:>4} {:>5} {:>9} {:>11} {:>11} {:>8}",
        "thread", "holes", "cs", "walk", "unfilled", "mean conf", "min conf", "records"
    );
    for (t, q) in report.threads.iter().zip(&report.quality.threads) {
        let recs = journal.thread(t.thread.0).count();
        let min_conf = q
            .weakest()
            .map(|f| format!("{:.3}", f.confidence))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>7} {:>6} {:>4} {:>5} {:>9} {:>11.3} {:>11} {:>8}",
            t.thread.0,
            t.recovery.holes,
            t.recovery.filled_from_cs,
            t.recovery.filled_by_walk,
            t.recovery.unfilled,
            q.mean_confidence(),
            min_conf,
            recs,
        );
    }
    println!(
        "journal: {} records, {} dropped, kinds {:?}",
        journal.records.len(),
        journal.dropped,
        journal.kinds()
    );

    let dir = PathBuf::from("target/obs");
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: mkdir failed: {e}", w.name))?;
    let path = dir.join(format!("{}.journal.jsonl", w.name));
    std::fs::write(&path, journal.to_jsonl())
        .map_err(|e| format!("{}: write failed: {e}", w.name))?;
    println!("wrote {}\n", path.display());
    Ok(())
}

// ------------------------------------------------------------------ explain

/// All parsed records of `thread` whose `hole` payload field equals
/// `hole`, in journal (sorted-key) order.
fn hole_records(records: &[ParsedRecord], thread: u64, hole: u32) -> Vec<&ParsedRecord> {
    records
        .iter()
        .filter(|r| r.thread == thread && r.field("hole") == Some(hole.to_string().as_str()))
        .collect()
}

fn explain_hole(records: &[ParsedRecord], thread: u64, hole: u32) -> Option<String> {
    let recs = hole_records(records, thread, hole);
    let opened = recs.iter().find(|r| r.kind == "hole_opened")?;
    let mut out = String::new();
    out.push_str(&format!("=== thread {thread}, hole {hole} ===\n"));
    out.push_str(&format!(
        "opened after segment {}: loss window [{}, {}], anchor {} (x={}), budget {} events\n",
        opened.segment,
        opened.field("first_ts").unwrap_or("?"),
        opened.field("last_ts").unwrap_or("?"),
        opened.field("anchor").unwrap_or("?"),
        opened.field("anchor_len").unwrap_or("?"),
        opened.field("budget").unwrap_or("?"),
    ));

    let considered: Vec<&&ParsedRecord> = recs
        .iter()
        .filter(|r| r.kind == "candidate_considered")
        .collect();
    if considered.is_empty() {
        out.push_str("no candidate CS matched the anchor\n");
    } else {
        out.push_str(&format!("candidates considered ({}):\n", considered.len()));
        for c in &considered {
            out.push_str(&format!(
                "  rank {:>4}  cs_segment {:>4} offset {:>6}  {:<13} score {}\n",
                c.field("rank").unwrap_or("?"),
                c.field("cs_segment").unwrap_or("?"),
                c.field("offset").unwrap_or("?"),
                c.field("outcome").unwrap_or("?"),
                c.field("score").unwrap_or("?"),
            ));
        }
    }
    if let Some(e) = recs.iter().find(|r| r.kind == "candidates_elided") {
        out.push_str(&format!(
            "  (+{} more candidates elided past the journal cap)\n",
            e.field("count").unwrap_or("?")
        ));
    }

    if let Some(c) = recs.iter().find(|r| r.kind == "candidate_chosen") {
        let conf: f64 = c
            .field("confidence_ppm")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0)
            / 1e6;
        out.push_str(&format!(
            "chosen: cs_segment {} offset {}, score {} vs runner-up {} (margin {}), \
             {} entries, budget-truncated {}, confidence {:.3}\n",
            c.field("cs_segment").unwrap_or("?"),
            c.field("offset").unwrap_or("?"),
            c.field("score").unwrap_or("?"),
            c.field("runner_up").unwrap_or("?"),
            c.field("margin").unwrap_or("?"),
            c.field("fill_len").unwrap_or("?"),
            c.field("truncated").unwrap_or("?"),
            conf,
        ));
    } else if let Some(f) = recs.iter().find(|r| r.kind == "fallback_walk") {
        let conf: f64 = f
            .field("confidence_ppm")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0)
            / 1e6;
        out.push_str(&format!(
            "no candidate confirmed; fallback ICFG walk filled {} entries, confidence {:.3}\n",
            f.field("fill_len").unwrap_or("?"),
            conf,
        ));
    } else if recs.iter().any(|r| r.kind == "hole_unfilled") {
        out.push_str("no candidate confirmed and the fallback walk failed: hole left unfilled\n");
    }
    Some(out)
}

fn explain(name: &str, hole: u32) -> Result<(), String> {
    let w = workload_by_name(name, 1);
    let r = run_jvm(&w);
    let (_report, journal) = analyze(&w, &r, JPortalConfig::default());
    let records =
        parse_jsonl(&journal.to_jsonl()).map_err(|e| format!("{name}: journal reparse: {e}"))?;
    let threads: Vec<u64> = {
        let mut t: Vec<u64> = records.iter().map(|r| r.thread).collect();
        t.sort();
        t.dedup();
        t
    };
    let mut found = false;
    for t in threads {
        if let Some(narrative) = explain_hole(&records, t, hole) {
            print!("{narrative}");
            found = true;
        }
    }
    if !found {
        return Err(format!(
            "{name}: no thread has a hole {hole} in its journal (try summarize first)"
        ));
    }
    Ok(())
}

// ------------------------------------------------------------------- corpus

/// `corpus <path>`: structural tour of a persisted segment corpus —
/// segment/arena totals, shard fill of the anchor index, and the top-10
/// busiest anchors. With `--check`, additionally proves the durability
/// contract: the checksum and version were already verified by the load,
/// and re-serializing must reproduce the file byte for byte.
fn corpus(path: &str, check: bool) -> Result<(), String> {
    let p = std::path::Path::new(path);
    let corpus = jportal::corpus::Corpus::load(p).map_err(|e| format!("{path}: {e}"))?;
    let stats = corpus.stats();
    println!("=== {path} ===");
    println!(
        "format v{}, anchor length {}",
        jportal::corpus::FORMAT_VERSION,
        corpus.anchor_len()
    );
    println!(
        "{} segments, {} syms, {} arena bytes, {} distinct anchors",
        stats.segments, stats.syms, stats.arena_bytes, stats.anchor_keys
    );
    let total: usize = stats.shard_fill.iter().sum();
    print!("shard fill ({} positions):", total);
    for (i, n) in stats.shard_fill.iter().enumerate() {
        print!("{}{n}", if i == 0 { " " } else { " | " });
    }
    println!();
    let busiest = corpus.busiest_anchors(10);
    if !busiest.is_empty() {
        println!("busiest anchors:");
        for (key, n) in &busiest {
            println!("  {:>8} positions  {}", n, corpus.spell_key(*key));
        }
    }
    if check {
        let bytes = std::fs::read(p).map_err(|e| format!("{path}: {e}"))?;
        if corpus.to_bytes() != bytes {
            return Err(format!(
                "{path}: re-serialization is not byte-identical to the file"
            ));
        }
        println!("check ok: magic, version, checksum, and byte round-trip all hold");
    }
    Ok(())
}

// ---------------------------------------------------------------- telemetry

/// Numeric members of the object at `doc[key]`, in document order.
fn section(doc: &Value, key: &str) -> Vec<(String, f64)> {
    match doc.get(key) {
        Some(Value::Obj(pairs)) => pairs
            .iter()
            .filter_map(|(k, v)| v.as_num().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    }
}

/// Compound members (histograms/sketches) of the object at `doc[key]`.
fn compound_section<'v>(doc: &'v Value, key: &str) -> Vec<(&'v String, &'v Value)> {
    match doc.get(key) {
        Some(Value::Obj(pairs)) => pairs.iter().map(|(k, v)| (k, v)).collect(),
        _ => Vec::new(),
    }
}

/// `telemetry <url-or-file>`: fetch a `/metrics.json` document — from a
/// live endpoint (any `http://` source; bare base URLs get
/// `/metrics.json` appended) or a file written by `observe` — and render
/// the same aligned summary table the pipeline prints for itself. With
/// `--check`, additionally asserts the schema: strict JSON, the four
/// sections, and ordered sketch percentiles.
fn telemetry(source: &str, check: bool) -> Result<(), String> {
    let body = if let Some(rest) = source.strip_prefix("http://") {
        let url = if rest.contains('/') {
            source.to_string()
        } else {
            format!("{source}/metrics.json")
        };
        let r = http_get(&url).map_err(|e| format!("{url}: {e}"))?;
        if r.status != 200 {
            return Err(format!("{url}: status {}", r.status));
        }
        r.body
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?
    };
    json::validate(&body).map_err(|e| format!("{source}: not strict JSON: {e}"))?;
    let doc = json::parse(&body).expect("validated above");

    let counters = section(&doc, "counters");
    let gauges = section(&doc, "gauges");
    let histograms = compound_section(&doc, "histograms");
    let sketches = compound_section(&doc, "sketches");
    let width = counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(gauges.iter().map(|(n, _)| n.len()))
        .chain(histograms.iter().map(|(n, _)| n.len()))
        .chain(sketches.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(8)
        .max(8);

    println!("=== {source} ===");
    let num = |v: &Value, k: &str| v.get(k).and_then(Value::as_num).unwrap_or(f64::NAN);
    if !counters.is_empty() {
        println!("counters");
        for (name, v) in &counters {
            println!("  {name:<width$}  {v:>12}");
        }
    }
    if !gauges.is_empty() {
        println!("gauges");
        for (name, v) in &gauges {
            println!("  {name:<width$}  {v:>12}");
        }
    }
    if !histograms.is_empty() {
        println!("histograms (count / sum / ~p50 / ~p99)");
        for (name, h) in &histograms {
            println!(
                "  {name:<width$}  {:>8} {:>12} {:>10} {:>10}",
                num(h, "count"),
                num(h, "sum"),
                num(h, "p50"),
                num(h, "p99"),
            );
        }
    }
    if !sketches.is_empty() {
        println!("sketches (count / ~p50 / ~p90 / ~p99 / max)");
        for (name, s) in &sketches {
            println!(
                "  {name:<width$}  {:>8} {:>10} {:>10} {:>10} {:>10}",
                num(s, "count"),
                num(s, "p50"),
                num(s, "p90"),
                num(s, "p99"),
                num(s, "max"),
            );
        }
    }

    if check {
        for key in ["counters", "gauges", "histograms", "sketches"] {
            if !matches!(doc.get(key), Some(Value::Obj(_))) {
                return Err(format!(
                    "{source}: section {key:?} missing or not an object"
                ));
            }
        }
        for (name, v) in counters.iter().chain(&gauges) {
            if *v < 0.0 || !v.is_finite() {
                return Err(format!("{source}: {name} has non-counter value {v}"));
            }
        }
        for (name, s) in &sketches {
            let (min, p50, p90, p99, max) = (
                num(s, "min"),
                num(s, "p50"),
                num(s, "p90"),
                num(s, "p99"),
                num(s, "max"),
            );
            if !(min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max) {
                return Err(format!(
                    "{source}: sketch {name} percentiles out of order: \
                     min {min} p50 {p50} p90 {p90} p99 {p99} max {max}"
                ));
            }
        }
        println!(
            "check ok: strict JSON, all four sections, {} sketches ordered",
            sketches.len()
        );
    }
    Ok(())
}

// ------------------------------------------------------------------ profile

/// `profile <url-or-file>`: render the hottest span stacks of a folded
/// profile — from a live `/profile/folded` endpoint (a bare base URL
/// gets the path appended, and the contention table is pulled from
/// `/metrics.json` alongside) or from a folded-stacks text file. With
/// `--check`, additionally asserts the folded grammar, positive stack
/// weights, and contention-counter consistency.
fn profile(source: &str, check: bool, top_n: usize) -> Result<(), String> {
    let (folded, metrics) = if let Some(rest) = source.strip_prefix("http://") {
        let base_only = !rest.contains('/');
        let folded_url = if base_only {
            format!("{source}/profile/folded")
        } else {
            source.to_string()
        };
        let r = http_get(&folded_url).map_err(|e| format!("{folded_url}: {e}"))?;
        if r.status != 200 {
            return Err(format!("{folded_url}: status {}", r.status));
        }
        let metrics = if base_only {
            let url = format!("{source}/metrics.json");
            let m = http_get(&url).map_err(|e| format!("{url}: {e}"))?;
            if m.status != 200 {
                return Err(format!("{url}: status {}", m.status));
            }
            json::validate(&m.body).map_err(|e| format!("{url}: not strict JSON: {e}"))?;
            Some(json::parse(&m.body).expect("validated above"))
        } else {
            None
        };
        (r.body, metrics)
    } else {
        (
            std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?,
            None,
        )
    };

    let mut stacks = jportal::ProfileSnapshot::parse_folded(&folded)
        .map_err(|e| format!("{source}: folded profile does not parse: {e}"))?;
    let total: u64 = stacks.iter().map(|(_, n)| n).sum();
    stacks.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    println!("=== {source} ===");
    println!("{} samples over {} distinct stacks", total, stacks.len());
    if !stacks.is_empty() {
        println!("hottest stacks (top {top_n}):");
        for (stack, count) in stacks.iter().take(top_n) {
            println!(
                "  {:>8} {:>6.2}%  {}",
                count,
                100.0 * *count as f64 / total.max(1) as f64,
                stack.join(";")
            );
        }
    }

    // Contention table: every `lock.<site>` family in the metrics
    // document, acquisitions vs contended slow paths plus wait-time
    // percentiles from the `wait_us` sketch.
    if let Some(doc) = &metrics {
        let counters = section(doc, "counters");
        let value = |name: &str| {
            counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        let mut sites: Vec<&str> = counters
            .iter()
            .filter_map(|(k, _)| k.strip_suffix(".acquires"))
            .filter(|k| k.starts_with("lock."))
            .collect();
        sites.sort_unstable();
        if !sites.is_empty() {
            let num = |v: &Value, k: &str| v.get(k).and_then(Value::as_num).unwrap_or(0.0);
            let width = sites.iter().map(|s| s.len()).max().unwrap_or(8);
            println!("contention ({} instrumented sites):", sites.len());
            println!(
                "  {:<width$} {:>10} {:>10} {:>9} {:>9} {:>9}",
                "site", "acquires", "contended", "wait p50", "wait p99", "wait max"
            );
            for site in &sites {
                let (acquires, contended) = (
                    value(&format!("{site}.acquires")),
                    value(&format!("{site}.contended")),
                );
                let wait = compound_section(doc, "sketches")
                    .into_iter()
                    .find(|(k, _)| *k == &format!("{site}.wait_us"))
                    .map(|(_, v)| (num(v, "p50"), num(v, "p99"), num(v, "max")))
                    .unwrap_or((0.0, 0.0, 0.0));
                println!(
                    "  {:<width$} {:>10} {:>10} {:>9} {:>9} {:>9}",
                    site, acquires, contended, wait.0, wait.1, wait.2
                );
                if check && contended > acquires {
                    return Err(format!(
                        "{source}: {site} contended {contended} exceeds acquires {acquires}"
                    ));
                }
            }
        }
        if check && !matches!(doc.get("profile"), Some(Value::Obj(_))) {
            return Err(format!(
                "{source}: /metrics.json has no profile section while profiling"
            ));
        }
    }

    if check {
        if stacks.iter().any(|(_, n)| *n == 0) {
            return Err(format!("{source}: zero-weight folded stack"));
        }
        println!(
            "check ok: folded grammar, {} stacks, contention counters consistent",
            stacks.len()
        );
    }
    Ok(())
}

// --------------------------------------------------------------------- diff

fn load(path: &str) -> Result<Vec<ParsedRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Decision-level diff: records are joined on their identity
/// `(thread, segment, seq, kind)`; a decision present in both runs but
/// with different payload fields is "changed".
fn diff(path_a: &str, path_b: &str) -> Result<bool, String> {
    let a = load(path_a)?;
    let b = load(path_b)?;
    let index = |recs: &[ParsedRecord]| -> BTreeMap<(u64, u64, u64, String), ParsedRecord> {
        recs.iter()
            .filter(|r| r.kind != "journal_summary")
            .map(|r| {
                let (t, s, q, k) = r.identity();
                ((t, s, q, k.to_string()), r.clone())
            })
            .collect()
    };
    let ia = index(&a);
    let ib = index(&b);

    let mut only_a = 0usize;
    let mut only_b = 0usize;
    let mut changed = 0usize;
    const SHOW: usize = 20;
    let mut shown = 0usize;
    let show = |line: String, shown: &mut usize| {
        if *shown < SHOW {
            println!("{line}");
        } else if *shown == SHOW {
            println!("  ... (further differences elided)");
        }
        *shown += 1;
    };

    for (k, ra) in &ia {
        match ib.get(k) {
            None => {
                only_a += 1;
                show(
                    format!("- {}:{}:{} {}", k.0, k.1, k.2, ra.render()),
                    &mut shown,
                );
            }
            Some(rb) if rb.fields != ra.fields => {
                changed += 1;
                show(
                    format!("~ {}:{}:{} {}", k.0, k.1, k.2, ra.render()),
                    &mut shown,
                );
                show(format!("            -> {}", rb.render()), &mut shown);
            }
            Some(_) => {}
        }
    }
    for (k, rb) in &ib {
        if !ia.contains_key(k) {
            only_b += 1;
            show(
                format!("+ {}:{}:{} {}", k.0, k.1, k.2, rb.render()),
                &mut shown,
            );
        }
    }

    println!(
        "{} decisions vs {}: {} only in {}, {} only in {}, {} changed",
        ia.len(),
        ib.len(),
        only_a,
        path_a,
        only_b,
        path_b,
        changed
    );
    Ok(only_a + only_b + changed == 0)
}

// -------------------------------------------------------------------- check

/// The CI schema gate: drop counter zero, JSONL round-trips through the
/// strict parser, only known kinds, determinism across `parallelism`,
/// silence when observability is off, and per-hole/quality agreement.
fn check(w: &Workload) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{}: {msg}", w.name));
    let r = run_jvm(w);
    let (report, journal) = analyze(w, &r, JPortalConfig::default());

    if journal.dropped != 0 {
        return fail(format!(
            "journal dropped {} records under the default capacity",
            journal.dropped
        ));
    }
    if journal.records.is_empty() {
        return fail("lossy run journaled nothing".into());
    }

    let jsonl = journal.to_jsonl();
    let parsed = match parse_jsonl(&jsonl) {
        Ok(p) => p,
        Err(e) => return fail(format!("journal JSONL does not re-parse: {e}")),
    };
    // Every line (records + the summary trailer) must survive the strict
    // parser, and nothing may carry an unknown kind.
    if parsed.len() != journal.records.len() + 1 {
        return fail(format!(
            "parsed {} lines from {} records (+1 summary expected)",
            parsed.len(),
            journal.records.len()
        ));
    }
    for p in &parsed {
        if !KNOWN_KINDS.contains(&p.kind.as_str()) {
            return fail(format!("unknown journal kind {:?}", p.kind));
        }
    }
    let summary = parsed.last().expect("non-empty");
    if summary.kind != "journal_summary"
        || summary.field("records") != Some(journal.records.len().to_string().as_str())
    {
        return fail("journal_summary trailer disagrees with the record count".into());
    }

    // Determinism: sequential analysis produces a byte-identical journal.
    let (_seq_report, seq_journal) = analyze(
        w,
        &r,
        JPortalConfig {
            parallelism: Some(1),
            ..JPortalConfig::default()
        },
    );
    if seq_journal.to_jsonl() != jsonl {
        return fail("journal differs between parallelism Some(1) and None".into());
    }

    // Observability off: branch-only recorders, nothing journaled.
    let (_dark_report, dark_journal) = analyze(
        w,
        &r,
        JPortalConfig {
            observability: false,
            ..JPortalConfig::default()
        },
    );
    if !dark_journal.records.is_empty() || dark_journal.dropped != 0 {
        return fail("disabled observability still journaled decisions".into());
    }

    // The quality rollup and the journal must tell the same story: one
    // hole_opened per fill record, and every confidence within [0, 1].
    for (t, q) in report.threads.iter().zip(&report.quality.threads) {
        let opened = journal
            .thread(t.thread.0)
            .filter(|r| r.event.kind() == "hole_opened")
            .count();
        if opened != q.fills.len() {
            return fail(format!(
                "thread {}: {} hole_opened events vs {} quality fills",
                t.thread.0,
                opened,
                q.fills.len()
            ));
        }
        for f in &q.fills {
            if !(0.0..=1.0).contains(&f.confidence) {
                return fail(format!(
                    "thread {}: hole {} confidence {} outside [0, 1]",
                    t.thread.0, f.hole, f.confidence
                ));
            }
        }
    }

    // `explain` must reproduce at least one hole's candidate ranking.
    let explained = parsed.iter().filter(|p| p.kind == "hole_opened").any(|p| {
        match explain_hole(&parsed, p.thread, 1) {
            Some(n) => n.contains("rank") || n.contains("no candidate CS matched"),
            None => false,
        }
    });
    if report.quality.total_fills() > 0 && !explained {
        return fail("explain could not reconstruct any hole narrative".into());
    }

    println!(
        "{:<10} ok: {} journal records, 0 dropped, kinds {:?}",
        w.name,
        journal.records.len(),
        journal.kinds()
    );
    Ok(())
}

// --------------------------------------------------------------------- main

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--check")
        && !matches!(
            args.first().map(String::as_str),
            Some("corpus") | Some("telemetry") | Some("profile")
        )
    {
        let names: Vec<&String> = args
            .iter()
            .filter(|a| !a.starts_with("--") && a.as_str() != "check")
            .collect();
        let workloads: Vec<Workload> = if names.is_empty() {
            all_workloads(1)
        } else {
            names.iter().map(|n| workload_by_name(n, 1)).collect()
        };
        for w in &workloads {
            if let Err(e) = check(w) {
                eprintln!("FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("all journal checks passed");
        return ExitCode::SUCCESS;
    }

    let cmd = args.first().map(|s| s.as_str()).unwrap_or("summarize");
    let rest = &args[args.len().min(1)..];
    let result: Result<(), String> = match cmd {
        "summarize" => {
            let names: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
            let workloads: Vec<Workload> = if names.is_empty() {
                all_workloads(1)
            } else {
                names.iter().map(|n| workload_by_name(n, 1)).collect()
            };
            workloads.iter().try_for_each(summarize)
        }
        "explain" => {
            let mut hole = 1u32;
            let mut name = "sunflow".to_string();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                if a == "--hole" {
                    hole = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--hole needs a number; using 1");
                        1
                    });
                } else if !a.starts_with("--") {
                    name = a.clone();
                }
            }
            explain(&name, hole)
        }
        "corpus" => {
            let files: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
            let check = rest.iter().any(|a| a == "--check");
            if files.len() != 1 {
                Err("corpus needs exactly one .jpcorpus path".into())
            } else {
                corpus(files[0], check)
            }
        }
        "telemetry" => {
            let sources: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
            let check = rest.iter().any(|a| a == "--check");
            if sources.len() != 1 {
                Err("telemetry needs exactly one URL or metrics.json path".into())
            } else {
                telemetry(sources[0], check)
            }
        }
        "profile" => {
            let check = rest.iter().any(|a| a == "--check");
            let mut top_n = 15usize;
            let mut sources: Vec<String> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                if a == "--top" {
                    match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => top_n = n,
                        None => {
                            eprintln!("--top needs a number; using 15");
                        }
                    }
                } else if !a.starts_with("--") {
                    sources.push(a.clone());
                }
            }
            if sources.len() != 1 {
                Err("profile needs exactly one URL or folded-stacks path".into())
            } else {
                profile(&sources[0], check, top_n)
            }
        }
        "diff" => {
            let files: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
            if files.len() != 2 {
                Err("diff needs exactly two JSONL paths".into())
            } else {
                match diff(files[0], files[1]) {
                    Ok(true) => {
                        println!("journals are decision-identical");
                        Ok(())
                    }
                    Ok(false) => Err("journals differ".into()),
                    Err(e) => Err(e),
                }
            }
        }
        other => Err(format!(
            "unknown command {other:?} (expected summarize, explain, corpus, telemetry, \
             profile, diff, or --check)"
        )),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
