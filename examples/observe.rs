//! `jportal observe` — run seed workloads under full telemetry and
//! export the pipeline's view of itself in all three formats:
//!
//! * `target/obs/<name>.trace.json` — Chrome trace-event JSON (load in
//!   `chrome://tracing` or <https://ui.perfetto.dev>): one wall-time
//!   track per worker thread plus a simulated-time track with the
//!   per-core PT overflow windows the pipeline had to recover across;
//! * `target/obs/<name>.metrics.json` — flat metrics snapshot
//!   (counters, gauges, histogram quantiles);
//! * a human-readable summary table on stdout.
//!
//! Workloads run under a deliberately lossy collection configuration so
//! the overflow/recovery telemetry has something to show.
//!
//! ```sh
//! cargo run --release --example observe              # all workloads
//! cargo run --release --example observe -- luindex   # one workload
//! cargo run --release --example observe -- --check   # CI schema gate
//! cargo run --release --example observe -- --overhead # <5% smoke
//! ```
//!
//! `--check` validates the emitted JSON against the strict in-tree
//! parser, asserts the span categories and key metrics are present, and
//! re-analyzes sequentially to confirm the report is identical with
//! observability enabled. `--overhead` compares analysis time with
//! observability off vs on (median of paired, order-alternated runs)
//! and fails above a 5% ratio.

use jportal::core::{JPortal, JPortalConfig, JPortalReport};
use jportal::jvm::{Jvm, JvmConfig, RunResult};
use jportal::obs::{json, TelemetryReport};
use jportal::workloads::{all_workloads, workload_by_name, Workload};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Lossy collection config (same regime as `lint --lossy`): small PT
/// buffers and a slow exporter force per-core overflows.
fn run_jvm(w: &Workload) -> RunResult {
    let cfg = JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: 1600,
        drain_bytes_per_kilocycle: 60,
        ..JvmConfig::default()
    };
    Jvm::new(cfg).run_threads(&w.program, &w.threads)
}

fn analyze(w: &Workload, r: &RunResult, config: JPortalConfig) -> (JPortalReport, TelemetryReport) {
    let jp = JPortal::with_config(&w.program, config);
    let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
    let telemetry = jp.telemetry();
    (report, telemetry)
}

fn export(w: &Workload, telemetry: &TelemetryReport) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir = PathBuf::from("target/obs");
    std::fs::create_dir_all(&dir)?;
    let trace_path = dir.join(format!("{}.trace.json", w.name));
    let metrics_path = dir.join(format!("{}.metrics.json", w.name));
    std::fs::write(&trace_path, telemetry.chrome_trace_json())?;
    std::fs::write(&metrics_path, telemetry.metrics_json())?;
    Ok((trace_path, metrics_path))
}

fn observe(w: &Workload) -> Result<(), String> {
    let r = run_jvm(w);
    let (report, telemetry) = analyze(w, &r, JPortalConfig::default());
    let (trace_path, metrics_path) =
        export(w, &telemetry).map_err(|e| format!("{}: write failed: {e}", w.name))?;
    println!("=== {} ===", w.name);
    println!(
        "{} thread(s), {} entries, collection loss {:.1}%",
        report.threads.len(),
        report.total_entries(),
        report.collection.loss_fraction() * 100.0
    );
    println!("{}", telemetry.summary_table());
    println!(
        "wrote {} and {}\n",
        trace_path.display(),
        metrics_path.display()
    );
    Ok(())
}

/// The CI gate: schema-validate the exports and check the wiring end to
/// end — span categories from every stage, dfa-cache and per-core loss
/// metrics, and report determinism with observability enabled.
fn check(w: &Workload) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{}: {msg}", w.name));
    let r = run_jvm(w);
    let (report, telemetry) = analyze(w, &r, JPortalConfig::default());

    let trace = telemetry.chrome_trace_json();
    if let Err(e) = json::validate(&trace) {
        return fail(format!("chrome trace is not valid JSON: {e}"));
    }
    let metrics = telemetry.metrics_json();
    if let Err(e) = json::validate(&metrics) {
        return fail(format!("metrics snapshot is not valid JSON: {e}"));
    }

    let cats = telemetry.span_categories();
    for need in [
        "collect", "decode", "project", "recover", "lint", "pipeline",
    ] {
        if !cats.contains(need) {
            return fail(format!("span category {need:?} missing (got {cats:?})"));
        }
    }

    for counter in [
        "cfg.dfa.hits",
        "cfg.dfa.misses",
        "ipt.exported_bytes",
        "ipt.lost_bytes",
        "ipt.lost_packets",
        "ipt.decode.packets",
        "ipt.decode.resync_bytes",
        "core.entries",
        "core.recover.holes",
        "core.recover.fallback_walks",
        "core.recover.budget_truncations",
    ] {
        if telemetry.metrics.counter(counter).is_none() {
            return fail(format!("counter {counter:?} missing from snapshot"));
        }
    }
    for gauge in [
        "ipt.core0.lost_bytes",
        "ipt.core0.drain_bytes_per_kilocycle",
    ] {
        if telemetry.metrics.gauge(gauge).is_none() {
            return fail(format!("gauge {gauge:?} missing from snapshot"));
        }
    }
    if report.collection.total_lost_bytes() == 0 {
        return fail("lossy configuration produced no loss".into());
    }
    if telemetry.metrics.counter("ipt.lost_bytes") != Some(report.collection.total_lost_bytes()) {
        return fail("ipt.lost_bytes disagrees with report.collection".into());
    }

    // Determinism with observability on: the sequential path must
    // produce the identical report.
    let (sequential, _) = analyze(
        w,
        &r,
        JPortalConfig {
            parallelism: Some(1),
            ..JPortalConfig::default()
        },
    );
    if sequential != report {
        return fail("report differs between parallelism Some(1) and None".into());
    }

    // Disabled observability records nothing and changes nothing.
    let (dark, dark_telemetry) = analyze(
        w,
        &r,
        JPortalConfig {
            observability: false,
            ..JPortalConfig::default()
        },
    );
    if !dark_telemetry.spans.is_empty() || !dark_telemetry.metrics.counters.is_empty() {
        return fail("disabled observability still recorded telemetry".into());
    }
    if dark != report {
        return fail("report differs with observability disabled".into());
    }

    println!(
        "{:<10} ok: {} spans, {} counters, {} categories, loss {:.1}%",
        w.name,
        telemetry.spans.len(),
        telemetry.metrics.counters.len(),
        cats.len(),
        report.collection.loss_fraction() * 100.0
    );
    Ok(())
}

/// Overhead smoke: end-to-end analysis with observability off vs on,
/// compared as the median of paired, order-alternated runs. The budget
/// is 5%.
///
/// Measured over a *clean* collection (default buffers, the production
/// regime the "cheap enough to stay on" claim is about) — the lossy
/// configuration used elsewhere in this example manufactures 10–50×
/// more segments and holes per entry than real collection ever sees,
/// which inflates per-segment span cost out of proportion.
fn overhead(name: &str, scale: u32, reps: usize) -> Result<(), String> {
    let w = workload_by_name(name, scale);
    let r = Jvm::new(JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();
    let build = |observability: bool| {
        JPortal::with_config(
            &w.program,
            JPortalConfig {
                observability,
                ..JPortalConfig::default()
            },
        )
    };
    let jp_off = build(false);
    let jp_on = build(true);
    let measure = |jp: &JPortal| -> f64 {
        let t0 = Instant::now();
        std::hint::black_box(jp.analyze(traces, &r.archive));
        t0.elapsed().as_secs_f64()
    };
    // Paired, order-alternated samples: each rep measures both
    // configurations back-to-back (flipping which goes first), so clock
    // drift and frequency scaling hit both sides of a pair equally; the
    // median pair ratio then discards outlier reps in either direction —
    // a single-vCPU container is too noisy for min-of-N alone.
    measure(&jp_off); // warm-up
    measure(&jp_on);
    let mut ratios = Vec::with_capacity(reps);
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for i in 0..reps {
        let (a, b) = if i % 2 == 0 {
            let a = measure(&jp_off);
            (a, measure(&jp_on))
        } else {
            let b = measure(&jp_on);
            (measure(&jp_off), b)
        };
        off = off.min(a);
        on = on.min(b);
        ratios.push(b / a);
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];
    println!(
        "{name}: observability off {:.3} ms, on {:.3} ms (min-of-{reps}), median pair ratio {ratio:.3}",
        off * 1e3,
        on * 1e3
    );
    if ratio > 1.05 {
        return Err(format!(
            "observability overhead {:.1}% exceeds the 5% budget",
            (ratio - 1.0) * 100.0
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let overhead_mode = args.iter().any(|a| a == "--overhead");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if overhead_mode {
        let name = names.first().map(|s| s.as_str()).unwrap_or("luindex");
        return match overhead(name, 24, 15) {
            Ok(()) => {
                println!("overhead within budget");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let workloads: Vec<Workload> = if names.is_empty() {
        all_workloads(1)
    } else {
        names.iter().map(|n| workload_by_name(n, 1)).collect()
    };

    for w in &workloads {
        let result = if check_mode { check(w) } else { observe(w) };
        if let Err(e) = result {
            eprintln!("FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    if check_mode {
        println!("all telemetry checks passed");
    }
    ExitCode::SUCCESS
}
