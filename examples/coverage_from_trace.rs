//! Statement coverage "for free": with the control flow reconstructed
//! from hardware traces, coverage needs no instrumentation at all
//! (paper §1: "function and statement coverage … are all close at hand").
//!
//! Runs the `luindex` analog, reconstructs its control flow, derives the
//! statement-coverage profile and compares it with (a) ground truth and
//! (b) the classic instrumentation-based coverage — showing the overhead
//! gap between the two routes to the same answer.
//!
//! ```sh
//! cargo run --example coverage_from_trace
//! ```

use jportal::core::profiles::StatementProfile;
use jportal::core::JPortal;
use jportal::jvm::{Jvm, JvmConfig};
use jportal::profilers::instrument_statement_coverage;
use jportal::workloads::workload_by_name;

fn main() {
    let w = workload_by_name("luindex", 3);

    // Route 1: hardware tracing + JPortal.
    let traced = Jvm::new(JvmConfig::default()).run_threads(&w.program, &w.threads);
    let report = JPortal::new(&w.program).analyze(traced.traces.as_ref().unwrap(), &traced.archive);
    let profile = StatementProfile::from_report(&report);

    // Route 2: Ball–Larus-style instrumentation.
    let (instrumented, map) = instrument_statement_coverage(&w.program);
    let instr_run = Jvm::new(JvmConfig {
        tracing: false,
        ..JvmConfig::default()
    })
    .run_threads(&instrumented, &w.threads);
    let instr_counts = map.statement_counts(instr_run.probes.counters());

    // Ground truth from the simulator.
    let truth_counts = traced.truth.statement_counts();
    let truth_covered = truth_counts.len();

    let jportal_covered = profile.coverage_size();
    let instr_covered = instr_counts.values().filter(|&&c| c > 0).count();

    println!("statement coverage of luindex:");
    println!("  ground truth        : {truth_covered} statements");
    println!("  JPortal (PT traces) : {jportal_covered} statements");
    println!("  instrumentation     : {instr_covered} statements");

    let agree = truth_counts
        .keys()
        .filter(|&&(m, b)| profile.count(m, b) > 0)
        .count();
    println!(
        "  JPortal finds {agree}/{truth_covered} truly-covered statements ({:.1}%)",
        100.0 * agree as f64 / truth_covered.max(1) as f64
    );

    // The overhead story (Table 2's point): same answer, very different
    // runtime cost.
    let base = Jvm::new(JvmConfig {
        tracing: false,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    println!("\nruntime cost (cycles):");
    println!("  untraced baseline  : {}", base.wall_cycles);
    println!(
        "  JPortal (hardware) : {} ({:.3}x)",
        traced.wall_cycles,
        traced.wall_cycles as f64 / base.wall_cycles as f64
    );
    println!(
        "  instrumentation    : {} ({:.3}x)",
        instr_run.wall_cycles,
        instr_run.wall_cycles as f64 / base.wall_cycles as f64
    );
}
