//! Missing-data recovery under pressure (§5): shrink the PT buffer until
//! packets drop, then watch JPortal fill the holes from matching complete
//! segments — and measure how much of the lost control flow comes back.
//!
//! ```sh
//! cargo run --example data_loss_recovery
//! ```

use jportal::core::accuracy::breakdown;
use jportal::core::{JPortal, JPortalConfig};
use jportal::jvm::{Jvm, JvmConfig};
use jportal::workloads::workload_by_name;

fn main() {
    let w = workload_by_name("sunflow", 3);

    for (label, buffer, drain) in [
        ("large", 1 << 22, 1 << 20),
        ("small", 8000, 130),
        ("tiny", 2500, 110),
    ] {
        let result = Jvm::new(JvmConfig {
            pt_buffer_capacity: buffer,
            drain_bytes_per_kilocycle: drain,
            ..JvmConfig::default()
        })
        .run_threads(&w.program, &w.threads);
        let traces = result.traces.as_ref().unwrap();
        let lost: u64 = traces.per_core[0].losses.iter().map(|l| l.lost_bytes).sum();
        let kept = traces.per_core[0].bytes.len() as u64;

        // Analyze twice: with and without recovery (the ablation).
        let with = JPortal::new(&w.program).analyze(traces, &result.archive);
        let without = JPortal::with_config(
            &w.program,
            JPortalConfig {
                disable_recovery: true,
                ..JPortalConfig::default()
            },
        )
        .analyze(traces, &result.archive);

        let acc_with = breakdown(&w.program, &result.truth, &with);
        let acc_without = breakdown(&w.program, &result.truth, &without);
        let stats = &with.threads[0].recovery;

        println!("--- {label} buffer ({buffer} bytes) ---");
        println!(
            "  byte loss: {:.1}%  ({} holes)",
            100.0 * lost as f64 / (lost + kept).max(1) as f64,
            stats.holes
        );
        println!(
            "  recovery: {} holes filled from CSes, {} by ICFG walk, {} unfilled",
            stats.filled_from_cs, stats.filled_by_walk, stats.unfilled
        );
        println!(
            "  accuracy: {:.1}% with recovery vs {:.1}% without",
            acc_with.overall * 100.0,
            acc_without.overall * 100.0
        );
    }
}
