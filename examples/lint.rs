//! `jportal lint` — run the trace-feasibility linter over every seed
//! workload (or a named one) and print a diagnostic summary.
//!
//! The linter replays each reconstructed thread timeline against the
//! ICFG and a call-stack abstraction; any diagnostic means the pipeline
//! emitted a sequence no real execution could have produced. Exits
//! nonzero if anything is flagged, so it doubles as a CI gate.
//!
//! ```sh
//! cargo run --release --example lint            # all workloads
//! cargo run --release --example lint -- batik   # one workload
//! cargo run --release --example lint -- batik --lossy
//! ```

use jportal::core::JPortal;
use jportal::jvm::{Jvm, JvmConfig};
use jportal::workloads::{all_workloads, workload_by_name, Workload};
use std::process::ExitCode;

fn lint_workload(w: &Workload, lossy: bool) -> usize {
    let mut cfg = JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        ..JvmConfig::default()
    };
    if lossy {
        cfg.pt_buffer_capacity = 2500;
        cfg.drain_bytes_per_kilocycle = 90;
    }
    let r = Jvm::new(cfg).run_threads(&w.program, &w.threads);
    let report = JPortal::new(&w.program).analyze(r.traces.as_ref().unwrap(), &r.archive);
    let summary = report.lint_summary();
    let entries: usize = report.threads.iter().map(|t| t.entries.len()).sum();
    println!(
        "{:<10} {:>8} entries, {} thread(s): {}",
        w.name,
        entries,
        report.threads.len(),
        summary
    );
    for t in &report.threads {
        for d in t.lint.iter().take(5) {
            println!("    {} {}", t.thread, d);
        }
        if t.lint.len() > 5 {
            println!("    {} … and {} more", t.thread, t.lint.len() - 5);
        }
    }
    summary.total()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lossy = args.iter().any(|a| a == "--lossy");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let workloads: Vec<Workload> = if names.is_empty() {
        all_workloads(1)
    } else {
        names.iter().map(|n| workload_by_name(n, 1)).collect()
    };

    let mut total = 0;
    for w in &workloads {
        total += lint_workload(w, lossy);
    }
    if total == 0 {
        println!("clean: no feasibility diagnostics");
        ExitCode::SUCCESS
    } else {
        println!("FAILED: {total} feasibility diagnostic(s)");
        ExitCode::FAILURE
    }
}
