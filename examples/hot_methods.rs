//! Hot-method detection from hardware traces (the paper's Table 4
//! experiment in miniature): the timestamps PT embeds in the trace let
//! JPortal attribute time to methods far more precisely than a sampling
//! profiler, at lower overhead.
//!
//! ```sh
//! cargo run --example hot_methods
//! ```

use jportal::core::accuracy::hot_method_intersection;
use jportal::core::profiles::HotMethodProfile;
use jportal::core::JPortal;
use jportal::jvm::{Jvm, JvmConfig};
use jportal::profilers::SamplingProfiler;
use jportal::workloads::workload_by_name;

fn main() {
    let w = workload_by_name("jython", 3);
    let n = 8;

    // Ground truth: exact per-method self-cycles from the simulator.
    let traced = Jvm::new(JvmConfig::default()).run_threads(&w.program, &w.threads);
    let truth_top = traced.truth.hottest_methods(n);

    // JPortal: derive hot methods from the reconstructed trace.
    let report = JPortal::new(&w.program).analyze(traced.traces.as_ref().unwrap(), &traced.archive);
    let jportal_top = HotMethodProfile::from_report(&report).hottest(n);

    // xprof-style sampling.
    let sampled = SamplingProfiler::xprof().run(
        &w.program,
        &w.threads,
        JvmConfig {
            tracing: false,
            ..JvmConfig::default()
        },
    );
    let sampled_top = sampled.hottest_sampled(n);

    let name = |m: jportal::bytecode::MethodId| w.program.method(m).qualified_name(&w.program);

    println!("top-{n} hottest methods of jython (ground truth):");
    for (i, &m) in truth_top.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, name(m));
    }
    println!("\nJPortal's top-{n}:");
    for (i, &m) in jportal_top.iter().enumerate() {
        let hit = if truth_top.contains(&m) { "*" } else { " " };
        println!("  {:>2}. {hit} {}", i + 1, name(m));
    }
    println!("\nxprof's top-{n}:");
    for (i, &m) in sampled_top.iter().enumerate() {
        let hit = if truth_top.contains(&m) { "*" } else { " " };
        println!("  {:>2}. {hit} {}", i + 1, name(m));
    }

    println!(
        "\nintersection with truth: JPortal {}/{n}, xprof {}/{n}",
        hot_method_intersection(&truth_top, &jportal_top),
        hot_method_intersection(&truth_top, &sampled_top),
    );
}
