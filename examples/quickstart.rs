//! Quickstart: trace a small program with (simulated) Intel PT and
//! reconstruct its bytecode-level control flow with JPortal.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use jportal::bytecode::builder::ProgramBuilder;
use jportal::bytecode::{CmpKind, Instruction as I};
use jportal::core::JPortal;
use jportal::jvm::{Jvm, JvmConfig};

fn main() {
    // 1. Build a program: the paper's running example `fun(a, b)`
    //    (Figure 2a), called from main in a loop.
    let mut pb = ProgramBuilder::new();
    let class = pb.add_class("Test", None, 0);
    let mut m = pb.method(class, "fun", 2, true);
    let else_ = m.label();
    let join = m.label();
    let odd = m.label();
    m.emit(I::Iload(0));
    m.branch_if(CmpKind::Eq, else_);
    m.emit(I::Iload(1));
    m.emit(I::Iconst(1));
    m.emit(I::Iadd);
    m.emit(I::Istore(1));
    m.jump(join);
    m.bind(else_);
    m.emit(I::Iload(1));
    m.emit(I::Iconst(2));
    m.emit(I::Isub);
    m.emit(I::Istore(1));
    m.bind(join);
    m.emit(I::Iload(1));
    m.emit(I::Iconst(2));
    m.emit(I::Irem);
    m.branch_if(CmpKind::Ne, odd);
    m.emit(I::Iconst(1));
    m.emit(I::Ireturn);
    m.bind(odd);
    m.emit(I::Iconst(0));
    m.emit(I::Ireturn);
    let fun = m.finish();

    let mut main_m = pb.method(class, "main", 0, false);
    let head = main_m.label();
    let done = main_m.label();
    main_m.emit(I::Iconst(20));
    main_m.emit(I::Istore(0));
    main_m.bind(head);
    main_m.emit(I::Iload(0));
    main_m.branch_if(CmpKind::Le, done);
    main_m.emit(I::Iload(0));
    main_m.emit(I::Iconst(2));
    main_m.emit(I::Irem);
    main_m.emit(I::Iload(0));
    main_m.emit(I::InvokeStatic(fun));
    main_m.emit(I::Pop);
    main_m.emit(I::Iinc(0, -1));
    main_m.jump(head);
    main_m.bind(done);
    main_m.emit(I::Return);
    let entry = main_m.finish();
    let program = pb.finish_with_entry(entry).expect("verifies");

    // 2. Run it on the simulated JVM with PT tracing enabled.
    let result = Jvm::new(JvmConfig::default()).run(&program);
    let traces = result.traces.as_ref().expect("tracing was on");
    println!(
        "online: {} trace bytes on core 0, {} compiled methods, wall {} cycles",
        traces.per_core[0].bytes.len(),
        result.compilations,
        result.wall_cycles
    );

    // 3. Reconstruct the control flow offline.
    let jportal = JPortal::new(&program);
    let report = jportal.analyze(traces, &result.archive);
    let thread = &report.threads[0];
    println!(
        "offline: {} trace entries reconstructed in {} segments",
        thread.entries.len(),
        thread.segments
    );

    // 4. Show the first reconstructed instructions of `fun`.
    println!("\nfirst reconstructed visit to fun:");
    let mut shown = 0;
    for e in &thread.entries {
        if e.method == Some(fun) && shown < 12 {
            println!(
                "  {}@{}  {}",
                program.method(fun).name,
                e.bci.map(|b| b.0 as i64).unwrap_or(-1),
                e.op
            );
            shown += 1;
        }
    }

    // 5. Check against ground truth.
    let score = jportal::core::accuracy::overall_accuracy(&program, &result.truth, &report);
    println!(
        "\nend-to-end accuracy vs ground truth: {:.1}%",
        score * 100.0
    );
}
