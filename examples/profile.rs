//! `jportal profile` — run a seed workload in a loop with the span-stack
//! sampling profiler on and serve the live profile endpoints, so a real
//! client (curl, a browser, `jportal-inspect profile`) can watch where
//! the pipeline spends its time:
//!
//! ```sh
//! cargo run --release --example profile                  # luindex, forever
//! cargo run --release --example profile -- sunflow --iters 50
//! cargo run --release --example profile -- --check       # CI gate
//! curl http://127.0.0.1:<port>/profile/folded            # while it runs
//! ```
//!
//! `--check` replays every seed workload and asserts the profiling
//! contracts: deterministic-mode folded profiles parse, are
//! byte-identical across worker counts and root only in the known span
//! categories; the report is identical with the profiler on or off; and
//! the live `/profile/folded`, `/profile/flame.svg` and `/metrics.json`
//! profile section all serve valid documents. Exits nonzero on any
//! violation.

use jportal::core::{JPortal, JPortalConfig, JPortalReport};
use jportal::jvm::{Jvm, JvmConfig, RunResult};
use jportal::obs::json::{self, Value};
use jportal::obs::{http_get, TelemetryConfig, TelemetryServer};
use jportal::workloads::{all_workloads, workload_by_name, Workload};
use jportal::{ProfileConfig, ProfileSnapshot};
use std::process::ExitCode;
use std::sync::Arc;

/// Span categories the pipeline opens; every profiled stack must root
/// in one of these (a frame label is `category:name`).
const SPAN_CATEGORIES: [&str; 6] = [
    "pipeline", "collect", "decode", "project", "recover", "lint",
];

/// Lossy collection config (same regime as `telemetry_live`): small PT
/// buffers and a slow exporter force overflows, so recovery spans show
/// up in the profile too.
fn run_jvm(w: &Workload) -> RunResult {
    let cfg = JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: 1600,
        drain_bytes_per_kilocycle: 60,
        ..JvmConfig::default()
    };
    Jvm::new(cfg).run_threads(&w.program, &w.threads)
}

// --------------------------------------------------------------------- live

/// Replay loop: analyze the workload over and over with wall-clock
/// sampling on, serving the profile endpoints to whoever connects.
fn live(name: &str, iters: Option<u64>) -> Result<(), String> {
    let w = workload_by_name(name, 1);
    let r = run_jvm(&w);
    let jp = JPortal::with_config(
        &w.program,
        JPortalConfig {
            telemetry: Some(TelemetryConfig::default()),
            profiling: Some(ProfileConfig::default()),
            ..JPortalConfig::default()
        },
    );
    let plane = Arc::clone(jp.telemetry_plane().expect("telemetry configured on"));
    let server = TelemetryServer::bind(Arc::clone(&plane), "127.0.0.1:0")
        .map_err(|e| format!("bind failed: {e}"))?;
    let url = server.url();
    println!("live self-profile for {:?} at {url}", w.name);
    println!("  {url}/profile/folded     flamegraph.pl-compatible folded stacks");
    println!("  {url}/profile/flame.svg  flamegraph (open in a browser)");
    println!("  {url}/metrics.json       metrics + pprof-style profile section");
    let mut i = 0u64;
    loop {
        let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
        i += 1;
        if i.is_multiple_of(10) || iters.is_some() {
            let snap = jp.profiler().expect("profiling on").snapshot();
            println!(
                "iteration {i}: {} entries, {} samples over {} stacks",
                report.total_entries(),
                snap.samples,
                snap.stacks.len()
            );
        }
        if iters == Some(i) {
            break;
        }
    }
    server.shutdown();
    Ok(())
}

// -------------------------------------------------------------------- check

/// One deterministic profiling run; returns the folded profile and the
/// report.
fn deterministic_run(
    w: &Workload,
    r: &RunResult,
    parallelism: Option<usize>,
) -> (String, JPortalReport) {
    let jp = JPortal::with_config(
        &w.program,
        JPortalConfig {
            parallelism,
            profiling: Some(ProfileConfig {
                deterministic: true,
                ..ProfileConfig::default()
            }),
            ..JPortalConfig::default()
        },
    );
    let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
    (jp.profiler().unwrap().snapshot().folded_text(), report)
}

/// The profiling gate for one workload.
fn check(w: &Workload) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{}: {msg}", w.name));
    let r = run_jvm(w);

    // Deterministic profiles: parse, root in known categories, and are
    // byte-identical between the sequential path and full fan-out.
    let (folded_seq, report_seq) = deterministic_run(w, &r, Some(1));
    let (folded_par, _) = deterministic_run(w, &r, None);
    if folded_seq != folded_par {
        return fail(format!(
            "deterministic folded profile differs across worker counts:\n\
             --- Some(1)\n{folded_seq}--- None\n{folded_par}"
        ));
    }
    let stacks = ProfileSnapshot::parse_folded(&folded_seq)
        .map_err(|e| format!("{}: folded profile does not parse: {e}", w.name))?;
    if stacks.is_empty() {
        return fail("deterministic profile recorded no stacks".into());
    }
    for (stack, count) in &stacks {
        let root = &stack[0];
        let cat = root.split(':').next().unwrap_or(root);
        if !SPAN_CATEGORIES.contains(&cat) {
            return fail(format!("stack roots outside the span categories: {root:?}"));
        }
        if *count == 0 {
            return fail(format!("zero-weight folded stack: {stack:?}"));
        }
    }

    // The profiler must not perturb the reconstruction.
    let plain = JPortal::new(&w.program).analyze(r.traces.as_ref().unwrap(), &r.archive);
    if plain != report_seq {
        return fail("report differs with the profiler on".into());
    }

    // Live plane: wall-clock profiler attached, endpoints serve valid
    // documents even before any sample lands.
    let jp = JPortal::with_config(
        &w.program,
        JPortalConfig {
            telemetry: Some(TelemetryConfig::default()),
            profiling: Some(ProfileConfig::default()),
            ..JPortalConfig::default()
        },
    );
    let plane = Arc::clone(jp.telemetry_plane().unwrap());
    let server = TelemetryServer::bind(plane, "127.0.0.1:0")
        .map_err(|e| format!("{}: bind failed: {e}", w.name))?;
    let url = server.url();
    jp.analyze(r.traces.as_ref().unwrap(), &r.archive);

    let folded = http_get(&format!("{url}/profile/folded"))
        .map_err(|e| format!("{}: GET /profile/folded: {e}", w.name))?;
    if folded.status != 200 {
        return fail(format!("/profile/folded status {}", folded.status));
    }
    ProfileSnapshot::parse_folded(&folded.body)
        .map_err(|e| format!("{}: live folded output does not parse: {e}", w.name))?;

    let svg = http_get(&format!("{url}/profile/flame.svg"))
        .map_err(|e| format!("{}: GET /profile/flame.svg: {e}", w.name))?;
    if svg.status != 200 || !svg.body.starts_with("<svg ") || !svg.body.ends_with("</svg>") {
        return fail(format!(
            "/profile/flame.svg malformed (status {})",
            svg.status
        ));
    }

    let mj = http_get(&format!("{url}/metrics.json"))
        .map_err(|e| format!("{}: GET /metrics.json: {e}", w.name))?;
    json::validate(&mj.body).map_err(|e| format!("{}: /metrics.json: {e}", w.name))?;
    let doc = json::parse(&mj.body).expect("validated above");
    let Some(profile) = doc.get("profile") else {
        return fail("/metrics.json has no profile section".into());
    };
    if profile.get("hz").and_then(Value::as_num) != Some(997.0) {
        return fail("/metrics.json profile section lacks hz".into());
    }
    server.shutdown();

    println!(
        "{:<10} ok: {} deterministic stacks, live endpoints valid",
        w.name,
        stacks.len()
    );
    Ok(())
}

// --------------------------------------------------------------------- main

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let mut iters: Option<u64> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--iters" {
            iters = it.next().and_then(|v| v.parse().ok());
            if iters.is_none() {
                eprintln!("--iters needs a number");
                return ExitCode::FAILURE;
            }
        } else if !a.starts_with("--") {
            names.push(a.clone());
        }
    }

    if check_mode {
        let workloads: Vec<Workload> = if names.is_empty() {
            all_workloads(1)
        } else {
            names.iter().map(|n| workload_by_name(n, 1)).collect()
        };
        for w in &workloads {
            if let Err(e) = check(w) {
                eprintln!("FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("all self-profiling checks passed");
        return ExitCode::SUCCESS;
    }

    let name = names.first().map(String::as_str).unwrap_or("luindex");
    match live(name, iters) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
