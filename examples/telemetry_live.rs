//! `jportal telemetry_live` — run a seed workload in a loop with the
//! live telemetry plane enabled and serve it over the in-tree scrape
//! endpoint, so a real client (curl, Prometheus, `jportal-inspect
//! telemetry`) can watch the pipeline work:
//!
//! ```sh
//! cargo run --release --example telemetry_live                # luindex, forever
//! cargo run --release --example telemetry_live -- sunflow --iters 50
//! cargo run --release --example telemetry_live -- --check     # CI loopback gate
//! curl http://127.0.0.1:<port>/metrics                        # while it runs
//! ```
//!
//! `--check` replays every seed workload under a deterministic plane,
//! scrapes all four endpoints over loopback — `/metrics`,
//! `/metrics.json` (strict-JSON validated), `/series`, `/stream` — and
//! scrapes concurrently *while* analyses run, asserting that counters
//! only ever move up between scrapes and that sketch percentiles are
//! ordered within their documented bounds. Exits nonzero on any
//! violation.

use jportal::core::{JPortal, JPortalConfig};
use jportal::jvm::{Jvm, JvmConfig, RunResult};
use jportal::obs::json::{self, Value};
use jportal::obs::{http_get, TelemetryConfig, TelemetryPlane, TelemetryServer};
use jportal::workloads::{all_workloads, workload_by_name, Workload};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lossy collection config (same regime as `observe`): small PT buffers
/// and a slow exporter force per-core overflows, so the recovery-side
/// series have something to show. The plane rides along on every drain.
fn run_jvm(w: &Workload, plane: &Arc<TelemetryPlane>) -> RunResult {
    let cfg = JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: 1600,
        drain_bytes_per_kilocycle: 60,
        ..JvmConfig::default()
    };
    Jvm::new(cfg)
        .with_telemetry(Arc::clone(plane))
        .run_threads(&w.program, &w.threads)
}

fn build<'p>(w: &'p Workload, telemetry: TelemetryConfig) -> (JPortal<'p>, Arc<TelemetryPlane>) {
    let jp = JPortal::with_config(
        &w.program,
        JPortalConfig {
            telemetry: Some(telemetry),
            ..JPortalConfig::default()
        },
    );
    let plane = Arc::clone(jp.telemetry_plane().expect("telemetry configured on"));
    (jp, plane)
}

// --------------------------------------------------------------------- live

/// Replay loop: collect + analyze the workload over and over while the
/// endpoint serves whoever connects. `iters: None` runs until killed.
fn live(name: &str, iters: Option<u64>) -> Result<(), String> {
    let w = workload_by_name(name, 1);
    let (jp, plane) = build(&w, TelemetryConfig::default());
    let server = TelemetryServer::bind(Arc::clone(&plane), "127.0.0.1:0")
        .map_err(|e| format!("bind failed: {e}"))?;
    let url = server.url();
    println!("live telemetry for {:?} at {url}", w.name);
    println!("  {url}/metrics        Prometheus text exposition");
    println!("  {url}/metrics.json   flat metrics JSON");
    println!("  {url}/series         series names; ?name=<q> for one window");
    println!("  {url}/stream         SSE, one snapshot event per tick");
    let mut i = 0u64;
    loop {
        let r = run_jvm(&w, &plane);
        let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
        i += 1;
        if i.is_multiple_of(10) || iters.is_some() {
            println!(
                "iteration {i}: {} entries, {} plane ticks",
                report.total_entries(),
                plane.ticks()
            );
        }
        if iters == Some(i) {
            break;
        }
    }
    server.shutdown();
    Ok(())
}

// -------------------------------------------------------------------- check

/// GET `base`/`path`, expect 200, return the body.
fn get_ok(base: &str, path: &str) -> Result<String, String> {
    let r = http_get(&format!("{base}{path}")).map_err(|e| format!("GET {path}: {e}"))?;
    if r.status != 200 {
        return Err(format!("GET {path}: status {}", r.status));
    }
    Ok(r.body)
}

/// The `"counters"` object of a `/metrics.json` document as a map.
fn counters_of(doc: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(Value::Obj(pairs)) = doc.get("counters") {
        for (k, v) in pairs {
            if let Some(n) = v.as_num() {
                out.insert(k.clone(), n);
            }
        }
    }
    out
}

/// Reads the response head plus the first SSE frame from `/stream` over
/// a raw socket ([`http_get`] can't be used: the stream never closes).
fn first_sse_frame(addr: &str) -> Result<String, String> {
    let io = |e: std::io::Error| format!("/stream: {e}");
    let mut stream = TcpStream::connect(addr).map_err(io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(io)?;
    stream
        .write_all(
            format!("GET /stream HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(io)?;
    let mut text = String::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).map_err(io)?;
        if n == 0 {
            return Err("/stream: closed before the first frame".into());
        }
        text.push_str(&String::from_utf8_lossy(&buf[..n]));
        let Some(head_end) = text.find("\r\n\r\n") else {
            continue;
        };
        let frames = &text[head_end + 4..];
        if let Some(frame_end) = frames.find("\n\n") {
            if !text.starts_with("HTTP/1.1 200") {
                return Err(format!(
                    "/stream: bad status line {:?}",
                    text.lines().next().unwrap_or("")
                ));
            }
            return Ok(frames[..frame_end].to_string());
        }
    }
}

/// The loopback gate for one workload: schema, endpoint shapes, sketch
/// ordering, and counter monotonicity under concurrent scraping.
fn check(w: &Workload) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{}: {msg}", w.name));
    let (jp, plane) = build(
        w,
        TelemetryConfig {
            deterministic: true,
            ..TelemetryConfig::default()
        },
    );
    let server = TelemetryServer::bind(Arc::clone(&plane), "127.0.0.1:0")
        .map_err(|e| format!("{}: bind failed: {e}", w.name))?;
    let url = server.url();
    let r = run_jvm(w, &plane);
    let traces = r.traces.as_ref().unwrap();
    jp.analyze(traces, &r.archive);

    // Endpoint shapes, after one full collect + analyze.
    let prom = get_ok(&url, "/metrics").map_err(|e| format!("{}: {e}", w.name))?;
    for need in [
        "# TYPE jportal_ipt_decode_packets counter",
        "# TYPE jportal_core_analyze_wall_us summary",
        "quantile=\"0.99\"",
        "jportal_obs_serve_requests",
    ] {
        if !prom.contains(need) {
            return fail(format!("/metrics missing {need:?}"));
        }
    }

    let body = get_ok(&url, "/metrics.json").map_err(|e| format!("{}: {e}", w.name))?;
    if let Err(e) = json::validate(&body) {
        return fail(format!("/metrics.json is not strict JSON: {e}"));
    }
    let doc = json::parse(&body).expect("validated above");
    let c1 = counters_of(&doc);
    if !c1.contains_key("ipt.decode.packets") || !c1.contains_key("cfg.dfa.hits") {
        return fail("/metrics.json counters are missing pipeline keys".into());
    }

    // Sketch percentiles: ordered, inside [min, max], with a live count.
    let Some(Value::Obj(sketches)) = doc.get("sketches") else {
        return fail("/metrics.json has no sketches object".into());
    };
    let analyze = sketches
        .iter()
        .find(|(k, _)| k == "core.analyze.wall_us")
        .map(|(_, v)| v);
    let Some(s) = analyze else {
        return fail("sketch core.analyze.wall_us missing".into());
    };
    let num = |k: &str| s.get(k).and_then(Value::as_num).unwrap_or(f64::NAN);
    let (count, min, p50, p90, p99, max) = (
        num("count"),
        num("min"),
        num("p50"),
        num("p90"),
        num("p99"),
        num("max"),
    );
    if !(count >= 1.0 && min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max) {
        return fail(format!(
            "sketch percentiles out of order: count {count} min {min} \
             p50 {p50} p90 {p90} p99 {p99} max {max}"
        ));
    }

    // Series: the name list and one concrete window with ordered ticks.
    let names = get_ok(&url, "/series").map_err(|e| format!("{}: {e}", w.name))?;
    if !names.contains("\"counter.ipt.decode.packets\"") {
        return fail("/series names missing counter.ipt.decode.packets".into());
    }
    let win = get_ok(&url, "/series?name=counter.ipt.decode.packets")
        .map_err(|e| format!("{}: {e}", w.name))?;
    if let Err(e) = json::validate(&win) {
        return fail(format!("/series window is not strict JSON: {e}"));
    }
    let win = json::parse(&win).expect("validated above");
    let Some(Value::Arr(points)) = win.get("points") else {
        return fail("/series window has no points array".into());
    };
    if points.is_empty() {
        return fail("/series window is empty after an analysis".into());
    }
    let seqs: Vec<f64> = points
        .iter()
        .filter_map(|p| p.get("seq").and_then(Value::as_num))
        .collect();
    if seqs.windows(2).any(|w| w[0] >= w[1]) {
        return fail("/series seq stamps are not strictly increasing".into());
    }

    // SSE: the plane has published ticks, so /stream must replay the
    // latest snapshot immediately as a well-formed frame.
    let frame =
        first_sse_frame(&server.addr().to_string()).map_err(|e| format!("{}: {e}", w.name))?;
    let data = frame
        .lines()
        .find_map(|l| l.strip_prefix("data: "))
        .ok_or_else(|| format!("{}: SSE frame has no data line: {frame:?}", w.name))?;
    if !frame.starts_with("id: ") || !frame.contains("event: snapshot") {
        return fail(format!("SSE frame malformed: {frame:?}"));
    }
    if let Err(e) = json::validate(data) {
        return fail(format!("SSE payload is not strict JSON: {e}"));
    }

    // Monotone counters under concurrent scraping: a client hammers
    // /metrics.json while more analyses run; every sampled counter may
    // only ever increase.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        let url = url.clone();
        std::thread::spawn(move || -> Result<Vec<BTreeMap<String, f64>>, String> {
            let mut samples = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let body = get_ok(&url, "/metrics.json")?;
                json::validate(&body).map_err(|e| format!("mid-run scrape: {e}"))?;
                samples.push(counters_of(&json::parse(&body).expect("validated")));
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(samples)
        })
    };
    // Keep the pipeline busy long enough for several scrapes to land,
    // however fast this workload analyzes.
    let t0 = std::time::Instant::now();
    let mut runs = 0;
    while runs < 3 || t0.elapsed() < Duration::from_millis(50) {
        jp.analyze(traces, &r.archive);
        runs += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let samples = scraper
        .join()
        .map_err(|_| format!("{}: scraper thread panicked", w.name))?
        .map_err(|e| format!("{}: {e}", w.name))?;
    if samples.len() < 2 {
        return fail(format!("only {} mid-run scrapes landed", samples.len()));
    }
    for pair in samples.windows(2) {
        for (k, v) in &pair[0] {
            if let Some(later) = pair[1].get(k) {
                if later < v {
                    return fail(format!("counter {k} regressed mid-run: {v} -> {later}"));
                }
            }
        }
    }

    println!(
        "{:<10} ok: {} plane ticks, {} mid-run scrapes, all endpoints valid",
        w.name,
        plane.ticks(),
        samples.len()
    );
    server.shutdown();
    Ok(())
}

// --------------------------------------------------------------------- main

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let mut iters: Option<u64> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--iters" {
            iters = it.next().and_then(|v| v.parse().ok());
            if iters.is_none() {
                eprintln!("--iters needs a number");
                return ExitCode::FAILURE;
            }
        } else if !a.starts_with("--") {
            names.push(a.clone());
        }
    }

    if check_mode {
        let workloads: Vec<Workload> = if names.is_empty() {
            all_workloads(1)
        } else {
            names.iter().map(|n| workload_by_name(n, 1)).collect()
        };
        for w in &workloads {
            if let Err(e) = check(w) {
                eprintln!("FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("all live-telemetry checks passed");
        return ExitCode::SUCCESS;
    }

    let name = names.first().map(String::as_str).unwrap_or("luindex");
    match live(name, iters) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
