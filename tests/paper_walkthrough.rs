//! The paper's running example, end to end: Figures 2–5 as executable
//! assertions.

use jportal::bytecode::builder::ProgramBuilder;
use jportal::bytecode::{Bci, CmpKind, Instruction as I, MethodId, OpKind, Program};
use jportal::cfg::abs::AbstractNfa;
use jportal::cfg::{Icfg, Nfa, Sym};
use jportal::core::decode_segment;
use jportal::core::JPortal;
use jportal::ipt::{decode_packets, segment_stream, Packet, ThreadId};
use jportal::jvm::{Jvm, JvmConfig};

/// Figure 2(a)/(b): `static boolean fun(boolean a, int b)`.
fn figure2_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("Test", None, 0);
    let mut m = pb.method(c, "fun", 2, true);
    let else_ = m.label();
    let join = m.label();
    let odd = m.label();
    m.emit(I::Iload(0)); // 0
    m.branch_if(CmpKind::Eq, else_); // 1: ifeq 7
    m.emit(I::Iload(1)); // 2
    m.emit(I::Iconst(1)); // 3
    m.emit(I::Iadd); // 4
    m.emit(I::Istore(1)); // 5
    m.jump(join); // 6: goto 11
    m.bind(else_);
    m.emit(I::Iload(1)); // 7
    m.emit(I::Iconst(2)); // 8
    m.emit(I::Isub); // 9
    m.emit(I::Istore(1)); // 10
    m.bind(join);
    m.emit(I::Iload(1)); // 11
    m.emit(I::Iconst(2)); // 12
    m.emit(I::Irem); // 13
    m.branch_if(CmpKind::Ne, odd); // 14: ifne 17
    m.emit(I::Iconst(1)); // 15
    m.emit(I::Ireturn); // 16
    m.bind(odd);
    m.emit(I::Iconst(0)); // 17
    m.emit(I::Ireturn); // 18
    let fun = m.finish();
    let mut main = pb.method(c, "main", 0, false);
    main.emit(I::Iconst(0)); // a = false → else branch
    main.emit(I::Iconst(7)); // b = 7
    main.emit(I::InvokeStatic(fun));
    main.emit(I::Pop);
    main.emit(I::Return);
    let main = main.finish();
    (pb.finish_with_entry(main).unwrap(), fun)
}

#[test]
fn figure2_trace_has_the_papers_packet_shape() {
    // Interpreted execution produces TIPs into templates and TNT bits for
    // the conditionals — Figure 2(d).
    let (p, _) = figure2_program();
    let r = Jvm::new(JvmConfig {
        c1_threshold: u64::MAX,
        c2_threshold: u64::MAX,
        ..JvmConfig::default()
    })
    .run(&p);
    let traces = r.traces.as_ref().unwrap();
    let packets = decode_packets(&traces.per_core[0].bytes);
    let tips = packets
        .iter()
        .filter(|tp| matches!(tp.packet, Packet::Tip { .. }))
        .count();
    let tnt_bits: usize = packets
        .iter()
        .filter_map(|tp| match &tp.packet {
            Packet::Tnt { bits } => Some(bits.len()),
            _ => None,
        })
        .sum();
    // 5 main bytecodes + 12 executed fun bytecodes (the else path), minus
    // the initial PGE-covered entry: every interpreted bytecode shows up
    // as a dispatch TIP.
    assert!(tips >= 15, "expected dispatch TIPs, got {tips}");
    assert_eq!(tnt_bits, 2, "ifeq and ifne each contribute one TNT bit");
}

#[test]
fn figure2_decode_recovers_the_exact_bytecode_sequence() {
    // Figure 2(e): the decoded sequence of the else path.
    let (p, _fun) = figure2_program();
    let r = Jvm::new(JvmConfig {
        c1_threshold: u64::MAX,
        c2_threshold: u64::MAX,
        ..JvmConfig::default()
    })
    .run(&p);
    let traces = r.traces.as_ref().unwrap();
    let packets = decode_packets(&traces.per_core[0].bytes);
    let raw = segment_stream(packets, &traces.per_core[0].losses, 0);
    let seg = decode_segment(&p, &r.archive, &raw[0]);
    let ops: Vec<OpKind> = seg.events.iter().map(|e| e.sym.op).collect();
    let expected = [
        OpKind::Iconst, // main: 0
        OpKind::Iconst, // main: 7
        OpKind::InvokeStatic,
        OpKind::Iload, // fun@0
        OpKind::Ifeq,  // taken (a == 0)
        OpKind::Iload, // fun@7
        OpKind::Iconst,
        OpKind::Isub,
        OpKind::Istore,
        OpKind::Iload, // fun@11
        OpKind::Iconst,
        OpKind::Irem,
        OpKind::Ifne, // 7 - 2 = 5, 5 % 2 = 1 → taken
        OpKind::Iconst,
        OpKind::Ireturn,
        OpKind::Pop,
        OpKind::Return,
    ];
    assert_eq!(ops, expected, "Figure 2(e) sequence");
}

#[test]
fn figure4_nfa_projection_resolves_the_else_path() {
    // §4: projecting the decoded sequence onto the ICFG yields the
    // Figure 2(f) path.
    let (p, fun) = figure2_program();
    let icfg = Icfg::build(&p);
    let nfa = Nfa::new(&p, &icfg);
    let trace: Vec<Sym> = [
        (OpKind::Iload, None),
        (OpKind::Ifeq, Some(true)),
        (OpKind::Iload, None),
        (OpKind::Iconst, None),
        (OpKind::Isub, None),
        (OpKind::Istore, None),
        (OpKind::Iload, None),
        (OpKind::Iconst, None),
        (OpKind::Irem, None),
        (OpKind::Ifne, Some(true)),
        (OpKind::Iconst, None),
        (OpKind::Ireturn, None),
    ]
    .iter()
    .map(|&(op, d)| match d {
        Some(t) => Sym::branch(op, t),
        None => Sym::plain(op),
    })
    .collect();
    let out = nfa.match_from_entry(fun, &trace);
    let path = out.path().expect("accepted");
    let bcis: Vec<u32> = path.iter().map(|&n| icfg.bci_of(n).0).collect();
    assert_eq!(bcis, vec![0, 1, 7, 8, 9, 10, 11, 12, 13, 14, 17, 18]);
}

#[test]
fn figure5_abstraction_agrees_with_concrete_matching() {
    let (p, _) = figure2_program();
    let icfg = Icfg::build(&p);
    let anfa = AbstractNfa::new(&p, &icfg);
    let nfa = anfa.concrete();
    // Exhaustively compare Algorithm 1 and Algorithm 2 on short windows.
    let alphabet = [
        OpKind::Iload,
        OpKind::Iconst,
        OpKind::Isub,
        OpKind::Irem,
        OpKind::Ireturn,
        OpKind::Goto,
    ];
    let mut checked = 0;
    for &a in &alphabet {
        for &b in &alphabet {
            for &c in &alphabet {
                let w = vec![Sym::plain(a), Sym::plain(b), Sym::plain(c)];
                let r1 = nfa.enumerate_and_test(&w).is_accepted();
                let r2 = anfa.algorithm2(&w).is_accepted();
                assert_eq!(r1, r2, "{a} {b} {c}: algorithms disagree");
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 216);
}

#[test]
fn figure3_jitted_fun_decodes_through_debug_info() {
    // Force fun hot so it compiles; the decoded events must carry
    // (method, bci) pairs recovered from the debug metadata.
    let (p, fun) = {
        // A caller that invokes fun many times.
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Test", None, 0);
        let mut m = pb.method(c, "fun", 2, true);
        let else_ = m.label();
        let join = m.label();
        let odd = m.label();
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Eq, else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(1));
        m.emit(I::Iadd);
        m.emit(I::Istore(1));
        m.jump(join);
        m.bind(else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Isub);
        m.emit(I::Istore(1));
        m.bind(join);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Irem);
        m.branch_if(CmpKind::Ne, odd);
        m.emit(I::Iconst(1));
        m.emit(I::Ireturn);
        m.bind(odd);
        m.emit(I::Iconst(0));
        m.emit(I::Ireturn);
        let fun = m.finish();
        let mut main = pb.method(c, "main", 0, false);
        let head = main.label();
        let done = main.label();
        main.emit(I::Iconst(30));
        main.emit(I::Istore(0));
        main.bind(head);
        main.emit(I::Iload(0));
        main.branch_if(CmpKind::Le, done);
        main.emit(I::Iload(0));
        main.emit(I::Iconst(2));
        main.emit(I::Irem);
        main.emit(I::Iload(0));
        main.emit(I::InvokeStatic(fun));
        main.emit(I::Pop);
        main.emit(I::Iinc(0, -1));
        main.jump(head);
        main.bind(done);
        main.emit(I::Return);
        let entry = main.finish();
        (pb.finish_with_entry(entry).unwrap(), fun)
    };
    let r = Jvm::new(JvmConfig {
        c1_threshold: 3,
        c2_threshold: 10,
        ..JvmConfig::default()
    })
    .run(&p);
    assert!(r.compilations >= 1, "fun must compile");
    let report = JPortal::new(&p).analyze(r.traces.as_ref().unwrap(), &r.archive);
    let entries = &report.threads[0].entries;
    // Late entries of fun come from JIT decode and still carry locations.
    let fun_entries: Vec<_> = entries.iter().filter(|e| e.method == Some(fun)).collect();
    assert!(fun_entries.len() > 100);
    assert!(fun_entries.iter().all(|e| e.bci.is_some()));
    // And the reconstruction matches the ground truth exactly.
    let truth = r.truth.trace(ThreadId(0));
    assert_eq!(entries.len(), truth.len());
    for (e, t) in entries.iter().zip(truth) {
        assert_eq!(e.method, Some(t.method));
        assert_eq!(e.bci, Some(t.bci));
    }
    let _ = Bci(0);
}
