//! Integration tests for the static-analysis layer: RTA devirtualization
//! must not change what the pipeline reconstructs, and the feasibility
//! linter must stay silent on everything the pipeline itself produces.

use jportal::core::accuracy::overall_accuracy;
use jportal::core::{JPortal, JPortalConfig, JPortalReport};
use jportal::jvm::{Jvm, JvmConfig};
use jportal::workloads::{all_workloads, workload_by_name, Workload};

fn analyze(w: &Workload, jvm_cfg: JvmConfig, jp_cfg: JPortalConfig) -> (JPortalReport, f64) {
    let r = Jvm::new(jvm_cfg).run_threads(&w.program, &w.threads);
    assert!(r.thread_errors.is_empty(), "{} failed", w.name);
    let report =
        JPortal::with_config(&w.program, jp_cfg).analyze(r.traces.as_ref().unwrap(), &r.archive);
    let acc = overall_accuracy(&w.program, &r.truth, &report);
    (report, acc)
}

#[test]
fn linter_is_silent_on_all_lossless_seed_workloads() {
    for w in all_workloads(1) {
        let cfg = JvmConfig {
            cores: if w.multithreaded { 2 } else { 1 },
            ..JvmConfig::default()
        };
        let (report, _) = analyze(&w, cfg, JPortalConfig::default());
        let summary = report.lint_summary();
        assert!(
            summary.is_clean(),
            "{}: feasibility linter flagged a clean reconstruction: {summary}",
            w.name
        );
    }
}

#[test]
fn linter_is_silent_on_lossy_recovered_traces() {
    // Recovery splices candidate segments into the timeline; every splice
    // point is a seam, so even aggressive data loss must not trip the
    // linter on honest fills.
    for name in ["sunflow", "pmd"] {
        let w = workload_by_name(name, 2);
        let jvm_cfg = JvmConfig {
            pt_buffer_capacity: 2500,
            drain_bytes_per_kilocycle: 90,
            ..JvmConfig::default()
        };
        let r = Jvm::new(jvm_cfg).run_threads(&w.program, &w.threads);
        let traces = r.traces.as_ref().unwrap();
        assert!(
            traces.per_core.iter().any(|c| !c.losses.is_empty()),
            "{name}: configuration must lose data"
        );
        let report = JPortal::new(&w.program).analyze(traces, &r.archive);
        assert!(
            report
                .threads
                .iter()
                .any(|t| t.recovery.recovered_events > 0),
            "{name}: recovery must have filled something"
        );
        let summary = report.lint_summary();
        assert!(
            summary.is_clean(),
            "{name}: linter flagged recovered trace: {summary}"
        );
    }
}

#[test]
fn rta_devirtualization_never_degrades_accuracy() {
    // The refined ICFG prunes call edges whose receivers are never
    // instantiated; every pruned edge is one the execution cannot take,
    // so reconstruction accuracy must never drop (it may rise when the
    // pruned edges were feeding op-identical dispatch ambiguity).
    for name in ["batik", "pmd", "luindex"] {
        let w = workload_by_name(name, 1);
        let cfg = JvmConfig {
            cores: if w.multithreaded { 2 } else { 1 },
            ..JvmConfig::default()
        };
        let (refined, acc_rta) = analyze(&w, cfg.clone(), JPortalConfig::default());
        let (cha, acc_cha) = analyze(
            &w,
            cfg,
            JPortalConfig {
                devirtualize: false,
                ..JPortalConfig::default()
            },
        );
        assert!(
            acc_rta >= acc_cha,
            "{name}: devirtualization degraded accuracy ({acc_rta:.4} < {acc_cha:.4})"
        );
        assert_eq!(
            refined.total_entries(),
            cha.total_entries(),
            "{name}: devirtualization changed the number of reconstructed events"
        );
    }
}

#[test]
fn rta_devirtualization_keeps_exact_reconstruction_exact() {
    // Single-threaded lossless subjects reconstruct 1:1; the refined
    // ICFG must preserve that bit-for-bit.
    for name in ["avrora", "fop", "sunflow"] {
        let w = workload_by_name(name, 1);
        let (_, acc_rta) = analyze(&w, JvmConfig::default(), JPortalConfig::default());
        let (_, acc_cha) = analyze(
            &w,
            JvmConfig::default(),
            JPortalConfig {
                devirtualize: false,
                ..JPortalConfig::default()
            },
        );
        assert_eq!(acc_rta, acc_cha, "{name}: accuracy changed");
        assert!(acc_rta > 0.999, "{name}: expected exact, got {acc_rta:.4}");
    }
}

#[test]
fn disabling_lint_produces_no_diagnostics_structurally() {
    let w = workload_by_name("avrora", 1);
    let (report, _) = analyze(
        &w,
        JvmConfig::default(),
        JPortalConfig {
            lint: false,
            ..JPortalConfig::default()
        },
    );
    assert!(report.threads.iter().all(|t| t.lint.is_empty()));
    assert_eq!(report.lint_summary().total(), 0);
}
