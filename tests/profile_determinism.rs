//! Self-profiling contracts: deterministic-mode profiles are
//! byte-identical at any worker count (samples are taken at logical
//! stage-tick boundaries on the main thread, never from wall time), and
//! turning the profiler on never perturbs the reconstruction report.

use jportal::core::{JPortal, JPortalConfig};
use jportal::jvm::{Jvm, JvmConfig};
use jportal::workloads::workload_by_name;
use jportal::ProfileConfig;

fn folded_profile(w_name: &str, parallelism: Option<usize>) -> String {
    let w = workload_by_name(w_name, 1);
    let r = Jvm::new(JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: 1600,
        drain_bytes_per_kilocycle: 60,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let jp = JPortal::with_config(
        &w.program,
        JPortalConfig {
            parallelism,
            profiling: Some(ProfileConfig {
                deterministic: true,
                ..ProfileConfig::default()
            }),
            ..JPortalConfig::default()
        },
    );
    jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
    let snap = jp.profiler().unwrap().snapshot();
    assert!(snap.deterministic);
    assert!(
        snap.samples >= 3,
        "{w_name}: every stage tick must sample (got {})",
        snap.samples
    );
    snap.folded_text()
}

#[test]
fn deterministic_profiles_are_parallelism_independent() {
    for name in ["fop", "sunflow"] {
        let sequential = folded_profile(name, Some(1));
        let parallel = folded_profile(name, None);
        assert_eq!(
            sequential, parallel,
            "{name}: deterministic folded profile differs between Some(1) and None"
        );
        // The stage-tick samples on the main thread land inside the
        // top-level analyze span.
        assert!(
            sequential.contains("pipeline:analyze"),
            "{name}: expected the analyze root frame, got:\n{sequential}"
        );
    }
}

#[test]
fn profiler_never_perturbs_the_report() {
    let w = workload_by_name("fop", 1);
    let r = Jvm::new(JvmConfig {
        pt_buffer_capacity: 1600,
        drain_bytes_per_kilocycle: 60,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();

    let plain = JPortal::new(&w.program).analyze(traces, &r.archive);
    // Wall-clock sampling at the default 997 Hz, the production shape.
    let jp = JPortal::with_config(
        &w.program,
        JPortalConfig {
            profiling: Some(ProfileConfig::default()),
            ..JPortalConfig::default()
        },
    );
    let profiled = jp.analyze(traces, &r.archive);
    assert_eq!(plain, profiled, "profiling must not change the report");
    // The profiler observed the run (wall sampling is timing-dependent,
    // so only liveness is asserted, not contents).
    let snap = jp.profiler().unwrap().snapshot();
    assert!(snap.hz == 997 && !snap.deterministic);
}
