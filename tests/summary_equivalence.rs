//! Ablation equivalence for interprocedural summaries
//! ([`JPortalConfig::summaries`]): the summary-pruned matcher and
//! recovery prefilter must reproduce the unpruned pipeline's reports
//! byte-for-byte on every seed workload — clean, lossy, and with the
//! trace bytes corrupted or truncated — while actually pruning work
//! (journal-cross-checked candidate reduction).
//!
//! The matcher filter is *provably* subsumed by the abstract-DFA filter
//! (it only rejects candidates the DFA would reject), so projections are
//! identical by construction; the recovery prefilter is validated here
//! empirically. Only the prune-statistics bookkeeping may differ between
//! modes, so reports are compared after folding those counters to the
//! mode-independent totals.

use jportal::core::{JPortal, JPortalConfig, JPortalReport};
use jportal::ipt::CollectedTraces;
use jportal::jvm::{Jvm, JvmConfig};
use jportal::obs::JournalEvent;
use jportal::workloads::{all_workloads, Workload};

/// Deterministic pseudo-random stream (SplitMix64) for corruption.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn jvm_config(w: &Workload, lossy: bool) -> JvmConfig {
    JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: if lossy {
            2500
        } else {
            JvmConfig::default().pt_buffer_capacity
        },
        drain_bytes_per_kilocycle: if lossy {
            90
        } else {
            JvmConfig::default().drain_bytes_per_kilocycle
        },
        ..JvmConfig::default()
    }
}

fn config(summaries: bool) -> JPortalConfig {
    JPortalConfig {
        summaries,
        ..JPortalConfig::default()
    }
}

/// Folds the mode-dependent prune counters into their mode-independent
/// totals so reports from the two modes become directly comparable:
///
/// * the matcher's summary filter prunes a subset of what the abstract
///   filter prunes, so `candidates_pruned + summary_pruned` is invariant
///   across modes while the split between the two counters is not;
/// * the recovery prefilter rejects candidates *before* they are counted,
///   so the candidate/tier-prune tallies shrink with summaries on — only
///   the chosen fills (entries, origins, holes) are mode-independent.
fn normalize(report: &mut JPortalReport) {
    for t in &mut report.threads {
        t.projection.candidates_pruned += t.projection.summary_pruned;
        t.projection.summary_pruned = 0;
        t.recovery.candidates = 0;
        t.recovery.pruned_tier1 = 0;
        t.recovery.pruned_tier2 = 0;
        t.recovery.summary_pruned = 0;
        t.recovery.budget_truncations = 0;
    }
}

fn assert_equivalent(name: &str, mode: &str, mut on: JPortalReport, mut off: JPortalReport) {
    // Lint runs in a different mode on each side (interprocedural vs
    // per-seam reset); it is compared separately where the input is
    // honest. Everything else must agree exactly.
    for t in &mut on.threads {
        t.lint.clear();
    }
    for t in &mut off.threads {
        t.lint.clear();
    }
    normalize(&mut on);
    normalize(&mut off);
    assert_eq!(
        on, off,
        "{name} ({mode}): summary pruning changed the report"
    );
    let ser_on = format!("{:?}", on.threads);
    let ser_off = format!("{:?}", off.threads);
    assert_eq!(
        ser_on, ser_off,
        "{name} ({mode}): serialized thread reports differ"
    );
}

#[test]
fn reports_identical_on_all_clean_seed_workloads() {
    for w in all_workloads(1) {
        let r = Jvm::new(jvm_config(&w, false)).run_threads(&w.program, &w.threads);
        assert!(r.thread_errors.is_empty(), "{} failed", w.name);
        let traces = r.traces.as_ref().unwrap();
        let on = JPortal::with_config(&w.program, config(true)).analyze(traces, &r.archive);
        let off = JPortal::with_config(&w.program, config(false)).analyze(traces, &r.archive);
        // On clean seed reconstructions the linter must be silent in
        // BOTH modes — the new diagnostics never fire on honest input.
        assert!(
            on.lint_summary().is_clean(),
            "{}: summaries-mode lint flagged a clean run: {}",
            w.name,
            on.lint_summary()
        );
        assert!(
            off.lint_summary().is_clean(),
            "{}: legacy lint flagged a clean run: {}",
            w.name,
            off.lint_summary()
        );
        assert_equivalent(w.name, "clean", on, off);
    }
}

#[test]
fn reports_identical_on_all_lossy_seed_workloads() {
    for w in all_workloads(1) {
        let r = Jvm::new(jvm_config(&w, true)).run_threads(&w.program, &w.threads);
        assert!(r.thread_errors.is_empty(), "{} failed", w.name);
        let traces = r.traces.as_ref().unwrap();
        let on = JPortal::with_config(&w.program, config(true)).analyze(traces, &r.archive);
        let off = JPortal::with_config(&w.program, config(false)).analyze(traces, &r.archive);
        assert!(
            on.lint_summary().is_clean(),
            "{}: summaries-mode lint flagged an honest lossy run: {}",
            w.name,
            on.lint_summary()
        );
        assert_equivalent(w.name, "lossy", on, off);
    }
}

/// Overwrites stretches of the exported packet bytes with pseudo-random
/// garbage and truncates one core's tail: the decoder resyncs, the
/// matcher sees nonsense windows, and the two modes must still agree.
fn corrupt(traces: &mut CollectedTraces, seed: u64) {
    let mut rng = Rng(seed);
    for (ci, core) in traces.per_core.iter_mut().enumerate() {
        if core.bytes.is_empty() {
            continue;
        }
        let stretches = 1 + core.bytes.len() / 400;
        for _ in 0..stretches {
            let start = (rng.next() as usize) % core.bytes.len();
            for off in 0..8 {
                if let Some(b) = core.bytes.get_mut(start + off) {
                    *b = (rng.next() & 0xff) as u8;
                }
            }
        }
        if ci == 0 {
            let keep = core.bytes.len() * 4 / 5;
            core.bytes.truncate(keep);
        }
    }
}

#[test]
fn reports_identical_on_garbage_and_truncated_inputs() {
    for w in all_workloads(1) {
        for (mode, lossy) in [("clean+garbage", false), ("lossy+garbage", true)] {
            let mut r = Jvm::new(jvm_config(&w, lossy)).run_threads(&w.program, &w.threads);
            corrupt(r.traces.as_mut().unwrap(), 0xBAD5EED ^ w.name.len() as u64);
            let traces = r.traces.as_ref().unwrap();
            let on = JPortal::with_config(&w.program, config(true)).analyze(traces, &r.archive);
            let off = JPortal::with_config(&w.program, config(false)).analyze(traces, &r.archive);
            // Diagnostics may legitimately differ on corrupted input
            // (the modes have different lint precision); the
            // reconstruction itself must not.
            assert_equivalent(w.name, mode, on, off);
        }
    }
}

/// The ISSUE acceptance bar: with summaries on, recovery's candidate
/// set shrinks by ≥ 20% on at least two seed workloads, and the
/// journal's `summary_prefilter` decisions corroborate the statistics
/// (sum of per-hole `pruned`/`considered` equals the report's totals).
#[test]
fn recovery_candidate_reduction_meets_bar_and_matches_journal() {
    let mut hits = Vec::new();
    for w in all_workloads(1) {
        let r = Jvm::new(jvm_config(&w, true)).run_threads(&w.program, &w.threads);
        assert!(r.thread_errors.is_empty(), "{} failed", w.name);
        let traces = r.traces.as_ref().unwrap();
        let jp = JPortal::with_config(&w.program, config(true));
        let report = jp.analyze(traces, &r.archive);

        let candidates: usize = report.threads.iter().map(|t| t.recovery.candidates).sum();
        let pruned: usize = report
            .threads
            .iter()
            .map(|t| t.recovery.summary_pruned)
            .sum();
        let considered = candidates + pruned;

        // Journal cross-check: every prefilter decision is recorded, so
        // the journal's sums must reproduce the report's counters.
        let snap = jp.obs().journal_snapshot();
        assert_eq!(snap.dropped, 0, "{}: journal ring must not drop", w.name);
        let (mut j_considered, mut j_pruned) = (0u64, 0u64);
        for rec in &snap.records {
            if let JournalEvent::SummaryPrefilter {
                considered, pruned, ..
            } = rec.event
            {
                j_considered += u64::from(considered);
                j_pruned += u64::from(pruned);
            }
        }
        assert_eq!(
            j_pruned, pruned as u64,
            "{}: journal prune total must match RecoveryStats",
            w.name
        );
        assert_eq!(
            j_considered, considered as u64,
            "{}: journal considered total must match RecoveryStats",
            w.name
        );

        if considered > 0 && pruned * 5 >= considered {
            hits.push((w.name, pruned, considered));
        }
    }
    assert!(
        hits.len() >= 2,
        "summary prefilter must cut recovery candidates by >= 20% on at \
         least two seed workloads; got {hits:?}"
    );
}
