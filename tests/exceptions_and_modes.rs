//! Edge-case integration tests: exceptional control flow through both
//! execution modes, code-cache eviction under pressure, and recovery
//! parameter sweeps.

use jportal::bytecode::builder::ProgramBuilder;
use jportal::bytecode::{CmpKind, Instruction as I, Program};
use jportal::core::accuracy::overall_accuracy;
use jportal::core::{JPortal, JPortalConfig, RecoveryConfig};
use jportal::ipt::ThreadId;
use jportal::jvm::{Jvm, JvmConfig};
use jportal::workloads::workload_by_name;

/// main loops calling `risky(i)` which divides by (i % 3) — throwing
/// every third call; main catches and continues.
fn throwing_program(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("C", None, 0);
    let mut r = pb.method(c, "risky", 1, true);
    r.emit(I::Iconst(100));
    r.emit(I::Iload(0));
    r.emit(I::Iconst(3));
    r.emit(I::Irem);
    r.emit(I::Idiv); // throws when i % 3 == 0
    r.emit(I::Ireturn);
    let risky = r.finish();

    let mut m = pb.method(c, "main", 0, false);
    let head = m.label();
    let done = m.label();
    let handler = m.label();
    let resume = m.label();
    m.emit(I::Iconst(iters));
    m.emit(I::Istore(0));
    m.bind(head);
    m.emit(I::Iload(0));
    m.branch_if(CmpKind::Le, done);
    let try_start = m.here();
    m.emit(I::Iload(0));
    m.emit(I::InvokeStatic(risky));
    m.emit(I::Pop);
    let try_end = m.here();
    m.jump(resume);
    m.add_handler(try_start, try_end, handler, None);
    m.bind(handler);
    m.emit(I::Pop); // discard the exception ref
    m.bind(resume);
    m.emit(I::Iinc(0, -1));
    m.jump(head);
    m.bind(done);
    m.emit(I::Return);
    let main = m.finish();
    pb.finish_with_entry(main).unwrap()
}

#[test]
fn exceptions_unwinding_across_frames_decode_interpreted() {
    let p = throwing_program(12);
    let r = Jvm::new(JvmConfig {
        c1_threshold: u64::MAX,
        c2_threshold: u64::MAX,
        ..JvmConfig::default()
    })
    .run(&p);
    assert!(r.thread_errors.is_empty(), "all exceptions caught");
    let report = JPortal::new(&p).analyze(r.traces.as_ref().unwrap(), &r.archive);
    let acc = overall_accuracy(&p, &r.truth, &report);
    assert!(
        acc > 0.999,
        "interpreted exceptional flow must decode exactly, got {acc:.4}"
    );
}

#[test]
fn exceptions_unwinding_across_frames_decode_jitted() {
    let p = throwing_program(40);
    let r = Jvm::new(JvmConfig {
        c1_threshold: 3,
        c2_threshold: 8,
        ..JvmConfig::default()
    })
    .run(&p);
    assert!(r.thread_errors.is_empty());
    assert!(r.compilations >= 1, "risky must compile");
    let report = JPortal::new(&p).analyze(r.traces.as_ref().unwrap(), &r.archive);
    // Exceptional transfers out of compiled code (FUP + TIP re-anchor)
    // cost a little decode context but must stay near-exact.
    let acc = overall_accuracy(&p, &r.truth, &report);
    assert!(acc > 0.95, "JIT exceptional flow decode: {acc:.4}");
    // Every third risky call throws: the handler's pop must appear in the
    // reconstruction roughly iters/3 times.
    let truth_pops = r
        .truth
        .trace(ThreadId(0))
        .iter()
        .filter(|e| e.method == p.entry() && matches!(p.method(e.method).insn(e.bci), I::Pop))
        .count();
    assert!(truth_pops >= 13, "sanity: handler actually ran");
}

#[test]
fn code_cache_eviction_under_pressure_still_decodes() {
    // A tiny code cache forces evictions and address reuse; the archive's
    // timestamped lookup must keep decode working.
    let w = workload_by_name("jython", 2);
    let r = Jvm::new(JvmConfig {
        code_cache_capacity: 600, // a handful of blobs at a time
        c1_threshold: 2,
        c2_threshold: 6,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    assert!(r.thread_errors.is_empty());
    let evicted = r
        .archive
        .blobs
        .iter()
        .filter(|b| b.active_to.is_some())
        .count();
    assert!(evicted > 0, "pressure must evict blobs");
    let report = JPortal::new(&w.program).analyze(r.traces.as_ref().unwrap(), &r.archive);
    let acc = overall_accuracy(&w.program, &r.truth, &report);
    assert!(acc > 0.9, "eviction+reuse decode accuracy: {acc:.4}");
}

#[test]
fn recovery_parameter_sweep_is_sane() {
    // DESIGN.md §5 ablation: anchor length x and confirmation length y.
    let w = workload_by_name("sunflow", 2);
    let r = Jvm::new(JvmConfig {
        pt_buffer_capacity: 2000,
        drain_bytes_per_kilocycle: 80,
        c1_threshold: u64::MAX,
        c2_threshold: u64::MAX,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();
    assert!(!traces.per_core[0].losses.is_empty());

    let mut results = Vec::new();
    for (x, y) in [(2, 2), (3, 4), (5, 6), (8, 8)] {
        let jp = JPortal::with_config(
            &w.program,
            JPortalConfig {
                recovery: RecoveryConfig {
                    anchor_len: x,
                    confirm_len: y,
                    ..RecoveryConfig::default()
                },
                ..JPortalConfig::default()
            },
        );
        let report = jp.analyze(traces, &r.archive);
        let acc = overall_accuracy(&w.program, &r.truth, &report);
        let stats: usize = report
            .threads
            .iter()
            .map(|t| t.recovery.filled_from_cs)
            .sum();
        results.push((x, y, acc, stats));
    }
    // Every setting must produce a working pipeline; mid-range anchors
    // should fill at least as many holes as the extremes combined fail.
    for &(x, y, acc, _) in &results {
        assert!(acc > 0.3, "x={x} y={y}: accuracy collapsed to {acc:.3}");
    }
    let default_fills = results[1].3;
    assert!(default_fills > 0, "default parameters must fill holes");
}
