//! Live-telemetry determinism: with a deterministic plane (ticks
//! stamped by logical index), the stored time-series of an analysis are
//! identical between `parallelism: Some(1)` and `None` — the stage
//! ticks happen on the main thread at fixed points, and every metric
//! they sample is deterministically merged before the tick.
//!
//! Scheduling-dependent metrics are excluded by contract: `cfg.dfa.*`
//! (cache hit/miss splits depend on worker interleaving),
//! `obs.serve.*` (only a bound server feeds them), the `lock.*`
//! contention families (whether an acquisition contends is pure
//! scheduling) and `par.queue.*` (queue depth at scrape time depends
//! on claim interleaving).

use jportal::core::{JPortal, JPortalConfig};
use jportal::jvm::{Jvm, JvmConfig};
use jportal::obs::TelemetryConfig;
use jportal::workloads::workload_by_name;
use std::collections::BTreeMap;

/// Every stored series of the plane's newest snapshot, minus the
/// scheduling-dependent families, as plain data.
type SeriesMap = BTreeMap<String, Vec<(u64, u64, u64, i64)>>;

fn analyze_series(w_name: &str, parallelism: Option<usize>) -> (u64, SeriesMap) {
    let w = workload_by_name(w_name, 1);
    let r = Jvm::new(JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: 1600,
        drain_bytes_per_kilocycle: 60,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let jp = JPortal::with_config(
        &w.program,
        JPortalConfig {
            parallelism,
            telemetry: Some(TelemetryConfig {
                deterministic: true,
                ..TelemetryConfig::default()
            }),
            ..JPortalConfig::default()
        },
    );
    jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
    let plane = jp.telemetry_plane().unwrap();
    let snap = plane.latest();
    let series = snap
        .series
        .iter()
        .filter(|s| {
            !s.name.contains("cfg.dfa.")
                && !s.name.contains("obs.serve.")
                && !s.name.starts_with("lock.")
                && !s.name.starts_with("par.queue.")
        })
        .map(|s| {
            let points = s
                .points
                .iter()
                .map(|p| (p.seq, p.ts, p.value, p.delta))
                .collect();
            (s.name.clone(), points)
        })
        .collect();
    (snap.seq, series)
}

#[test]
fn deterministic_series_are_parallelism_independent() {
    for name in ["fop", "sunflow"] {
        let (seq_seq, sequential) = analyze_series(name, Some(1));
        let (par_seq, parallel) = analyze_series(name, None);
        assert_eq!(seq_seq, par_seq, "{name}: tick counts differ");
        assert!(seq_seq >= 3, "{name}: expected at least the stage ticks");
        let seq_names: Vec<&String> = sequential.keys().collect();
        let par_names: Vec<&String> = parallel.keys().collect();
        assert_eq!(seq_names, par_names, "{name}: series sets differ");
        for (series, points) in &sequential {
            assert_eq!(
                points, &parallel[series],
                "{name}: series {series} differs between Some(1) and None"
            );
        }
    }
}

#[test]
fn telemetry_off_is_the_default_and_adds_nothing() {
    let w = workload_by_name("fop", 1);
    let r = Jvm::new(JvmConfig::default()).run_threads(&w.program, &w.threads);
    let jp = JPortal::new(&w.program);
    assert!(jp.telemetry_plane().is_none(), "no plane without opt-in");
    // Reports are identical with and without a plane: the plane only
    // snapshots metrics that already exist.
    let plain = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
    let jp_live = JPortal::with_config(
        &w.program,
        JPortalConfig {
            telemetry: Some(TelemetryConfig::default()),
            ..JPortalConfig::default()
        },
    );
    let live = jp_live.analyze(r.traces.as_ref().unwrap(), &r.archive);
    assert_eq!(plain, live);
    assert!(jp_live.telemetry_plane().unwrap().ticks() >= 3);
}
