//! Cross-run corpus learning (`jportal-corpus` + [`JPortalConfig::corpus`]):
//! a corpus harvested from a clean run must improve a lossy run's fill
//! rate on the seed workloads — and must never disturb the in-run
//! recovery path (corpus off, or attached-but-disabled, reproduces the
//! seed pipeline byte-for-byte).

use std::sync::Arc;

use jportal::core::{JPortal, JPortalConfig, JPortalReport};
use jportal::corpus::{Corpus, CorpusBuilder};
use jportal::jvm::{Jvm, JvmConfig, RunResult};
use jportal::workloads::{workload_by_name, Workload};

const SUBJECTS: [&str; 2] = ["fop", "h2"];

fn clean_config(w: &Workload) -> JvmConfig {
    JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        ..JvmConfig::default()
    }
}

/// Deep loss on a small buffer: plenty of holes for recovery to work on
/// (the same shape the summary-pruning bench uses).
fn lossy_config(w: &Workload) -> JvmConfig {
    JvmConfig {
        cores: if w.multithreaded { 2 } else { 1 },
        pt_buffer_capacity: 1000,
        drain_bytes_per_kilocycle: 50,
        ..JvmConfig::default()
    }
}

fn run(w: &Workload, cfg: JvmConfig) -> RunResult {
    let r = Jvm::new(cfg).run(&w.program);
    assert!(r.traces.is_some(), "tracing must be on");
    r
}

fn analyze(w: &Workload, r: &RunResult, config: JPortalConfig) -> JPortalReport {
    JPortal::with_config(&w.program, config).analyze(r.traces.as_ref().unwrap(), &r.archive)
}

/// Fraction of holes that got any fill, and the mean fill confidence.
fn fill_metrics(report: &JPortalReport) -> (f64, f64) {
    let mut holes = 0usize;
    let mut filled = 0usize;
    for t in &report.threads {
        holes += t.recovery.holes;
        filled += t.recovery.filled_from_cs + t.recovery.filled_by_walk;
    }
    let fills: Vec<f64> = report
        .quality
        .threads
        .iter()
        .flat_map(|t| t.fills.iter().map(|f| f.confidence))
        .collect();
    let mean_conf = if fills.is_empty() {
        0.0
    } else {
        fills.iter().sum::<f64>() / fills.len() as f64
    };
    let rate = if holes == 0 {
        1.0
    } else {
        filled as f64 / holes as f64
    };
    (rate, mean_conf)
}

/// Harvests a clean (lossless) run of `w` into a corpus.
fn clean_corpus(w: &Workload) -> Corpus {
    let r = run(w, clean_config(w));
    let mut builder = CorpusBuilder::new(JPortalConfig::default().recovery.anchor_len);
    let report = JPortal::with_config(&w.program, JPortalConfig::default()).analyze_harvest(
        r.traces.as_ref().unwrap(),
        &r.archive,
        &mut builder,
    );
    assert!(builder.inserted() > 0, "clean run must harvest segments");
    assert!(report.total_entries() > 0);
    builder.finish()
}

#[test]
fn corpus_off_is_byte_identical_to_the_seed_path() {
    for name in SUBJECTS {
        let w = workload_by_name(name, 2);
        let corpus = Arc::new(clean_corpus(&w));
        let r = run(&w, lossy_config(&w));
        let baseline = analyze(&w, &r, JPortalConfig::default());

        // A store attached with the flag off must change nothing at all.
        let attached_off = JPortal::with_config(&w.program, JPortalConfig::default())
            .with_corpus_store(Arc::clone(&corpus))
            .analyze(r.traces.as_ref().unwrap(), &r.archive);
        assert_eq!(baseline, attached_off, "{name}: store attached, flag off");

        // The flag on with an *empty* corpus must reproduce the seed
        // entries: the consult point fires only after in-run candidates
        // fail, and an empty corpus can never fill, so the timeline is
        // untouched (only the lookup counters move).
        let empty = Arc::new(Corpus::empty(JPortalConfig::default().recovery.anchor_len));
        let flag_on_empty = JPortal::with_config(
            &w.program,
            JPortalConfig {
                corpus: true,
                ..JPortalConfig::default()
            },
        )
        .with_corpus_store(empty)
        .analyze(r.traces.as_ref().unwrap(), &r.archive);
        for (a, b) in baseline.threads.iter().zip(&flag_on_empty.threads) {
            assert_eq!(a.entries, b.entries, "{name}: entries with empty corpus");
            assert_eq!(a.holes, b.holes);
            assert_eq!(a.lint, b.lint);
        }
    }
}

#[test]
fn clean_run_corpus_improves_lossy_fill_rate() {
    for name in SUBJECTS {
        let w = workload_by_name(name, 2);
        let corpus = Arc::new(clean_corpus(&w));
        let r = run(&w, lossy_config(&w));

        let baseline = analyze(&w, &r, JPortalConfig::default());
        let with_corpus = JPortal::with_config(
            &w.program,
            JPortalConfig {
                corpus: true,
                ..JPortalConfig::default()
            },
        )
        .with_corpus_store(Arc::clone(&corpus))
        .analyze(r.traces.as_ref().unwrap(), &r.archive);

        let holes: usize = baseline.threads.iter().map(|t| t.recovery.holes).sum();
        assert!(holes > 0, "{name}: lossy config must produce holes");
        let hits: usize = with_corpus
            .threads
            .iter()
            .map(|t| t.recovery.corpus_hits)
            .sum();
        assert!(hits > 0, "{name}: the clean-run corpus must fill holes");

        // The corpus only ever upgrades walk/unfilled holes, so the
        // fill rate cannot drop and walks cannot increase.
        let (rate_base, _) = fill_metrics(&baseline);
        let (rate_corpus, _) = fill_metrics(&with_corpus);
        assert!(
            rate_corpus >= rate_base,
            "{name}: fill rate {rate_corpus} < baseline {rate_base}"
        );
        let walks = |r: &JPortalReport| -> usize {
            r.threads.iter().map(|t| t.recovery.filled_by_walk).sum()
        };
        assert!(
            walks(&with_corpus) <= walks(&baseline),
            "{name}: walks grew"
        );
    }
}

#[test]
fn learning_loop_round_trips_through_disk() {
    let w = workload_by_name("fop", 2);
    let corpus = clean_corpus(&w);
    let dir = std::env::temp_dir().join(format!("jportal-corpus-learn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fop.jpcorpus");
    corpus.save(&path).expect("save");

    // Next "run": load yesterday's corpus, absorb, add today's segments.
    let loaded = Corpus::load(&path).expect("load");
    assert_eq!(loaded.to_bytes(), corpus.to_bytes());
    let mut builder = CorpusBuilder::new(loaded.anchor_len());
    builder.absorb(&loaded);
    let dedup_before = builder.deduped();
    builder.absorb(&loaded);
    assert!(
        builder.deduped() > dedup_before,
        "re-absorbing the same corpus must dedup, not duplicate"
    );
    let merged = builder.finish();
    assert_eq!(merged.segment_count(), corpus.segment_count());

    // The loaded corpus drives recovery exactly like the in-memory one.
    let r = run(&w, lossy_config(&w));
    let cfg = JPortalConfig {
        corpus: true,
        ..JPortalConfig::default()
    };
    let mem = JPortal::with_config(&w.program, cfg)
        .with_corpus_store(Arc::new(corpus))
        .analyze(r.traces.as_ref().unwrap(), &r.archive);
    let disk = JPortal::with_config(&w.program, cfg)
        .with_corpus_store(Arc::new(loaded))
        .analyze(r.traces.as_ref().unwrap(), &r.archive);
    assert_eq!(mem, disk, "in-memory and loaded corpora must fill alike");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn harvest_is_deterministic_across_worker_counts() {
    let w = workload_by_name("h2", 2);
    let r = run(&w, lossy_config(&w));
    let mut corpora = Vec::new();
    for workers in [1usize, 4] {
        let mut builder = CorpusBuilder::new(JPortalConfig::default().recovery.anchor_len);
        let cfg = JPortalConfig {
            parallelism: Some(workers),
            ..JPortalConfig::default()
        };
        JPortal::with_config(&w.program, cfg).analyze_harvest(
            r.traces.as_ref().unwrap(),
            &r.archive,
            &mut builder,
        );
        corpora.push(builder.finish().to_bytes());
    }
    assert_eq!(
        corpora[0], corpora[1],
        "harvested corpus must be byte-identical at any parallelism"
    );
}
