//! Cross-crate integration tests: the whole pipeline, end to end.

use jportal::core::accuracy::{breakdown, overall_accuracy};
use jportal::core::profiles::{HotMethodProfile, StatementProfile};
use jportal::core::{JPortal, JPortalConfig};
use jportal::jvm::{Jvm, JvmConfig};
use jportal::workloads::{all_workloads, workload_by_name};

fn jvm(tracing: bool) -> Jvm {
    Jvm::new(JvmConfig {
        tracing,
        ..JvmConfig::default()
    })
}

#[test]
fn lossless_runs_reconstruct_all_workloads_above_90_percent() {
    for w in all_workloads(1) {
        let cfg = JvmConfig {
            cores: if w.multithreaded { 2 } else { 1 },
            ..JvmConfig::default()
        };
        let r = Jvm::new(cfg).run_threads(&w.program, &w.threads);
        assert!(r.thread_errors.is_empty(), "{} failed", w.name);
        let report = JPortal::new(&w.program).analyze(r.traces.as_ref().unwrap(), &r.archive);
        let acc = overall_accuracy(&w.program, &r.truth, &report);
        // Multi-threaded subjects pay the trace-segregation tax (§6);
        // batik's virtual-dispatch targets include op-identical method
        // bodies that interpreter traces genuinely cannot tell apart
        // (the paper's batik scores 78% for related reasons).
        let floor = if w.multithreaded {
            0.55
        } else if w.name == "batik" {
            0.80
        } else {
            0.90
        };
        assert!(
            acc >= floor,
            "{}: lossless accuracy {acc:.3} below {floor}",
            w.name
        );
    }
}

#[test]
fn single_threaded_lossless_reconstruction_is_exact() {
    // With pristine debug info, a single-threaded lossless run must
    // reconstruct the control flow 1:1.
    for name in ["avrora", "fop", "sunflow"] {
        let w = workload_by_name(name, 1);
        let r = jvm(true).run_threads(&w.program, &w.threads);
        let report = JPortal::new(&w.program).analyze(r.traces.as_ref().unwrap(), &r.archive);
        let acc = overall_accuracy(&w.program, &r.truth, &report);
        assert!(acc > 0.999, "{name}: expected exact, got {acc:.4}");
    }
}

#[test]
fn recovery_strictly_improves_lossy_reconstruction_coverage() {
    let w = workload_by_name("sunflow", 2);
    let r = Jvm::new(JvmConfig {
        pt_buffer_capacity: 2500,
        drain_bytes_per_kilocycle: 90,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().unwrap();
    assert!(
        !traces.per_core[0].losses.is_empty(),
        "configuration must lose data"
    );
    let with = JPortal::new(&w.program).analyze(traces, &r.archive);
    let without = JPortal::with_config(
        &w.program,
        JPortalConfig {
            disable_recovery: true,
            ..JPortalConfig::default()
        },
    )
    .analyze(traces, &r.archive);
    assert!(with.total_entries() > without.total_entries());
    let b = breakdown(&w.program, &r.truth, &with);
    assert!(b.pmd > 0.0, "holes must cover truth events");
    assert!(b.pr > 0.0, "recovery must contribute entries");
}

#[test]
fn trace_derived_profiles_match_ground_truth_on_clean_runs() {
    let w = workload_by_name("jython", 1);
    let r = jvm(true).run_threads(&w.program, &w.threads);
    let report = JPortal::new(&w.program).analyze(r.traces.as_ref().unwrap(), &r.archive);

    // Statement counts agree exactly.
    let profile = StatementProfile::from_report(&report);
    for (&(m, b), &count) in &r.truth.statement_counts() {
        assert_eq!(profile.count(m, b), count, "count mismatch at {m}@{b}");
    }

    // The hottest method matches.
    let truth_top = r.truth.hottest_methods(3);
    let jp_top = HotMethodProfile::from_report(&report).hottest(3);
    assert_eq!(truth_top[0], jp_top[0], "hottest method must agree");
}

#[test]
fn multithreaded_traces_segregate_by_thread() {
    let w = workload_by_name("pmd", 1);
    let cfg = JvmConfig {
        cores: 2,
        quantum: 1024, // force frequent switches
        ..JvmConfig::default()
    };
    let r = Jvm::new(cfg).run_threads(&w.program, &w.threads);
    let report = JPortal::new(&w.program).analyze(r.traces.as_ref().unwrap(), &r.archive);
    assert_eq!(report.threads.len(), w.threads.len());
    for t in &report.threads {
        assert!(
            !t.entries.is_empty(),
            "{}: thread produced no entries",
            t.thread
        );
        // Timestamps are monotone within a thread's decoded entries.
        let mut last = 0;
        for e in &t.entries {
            assert!(e.ts >= last || e.ts == 0, "time went backwards");
            last = e.ts.max(last);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let w = workload_by_name("h2", 1);
    let run = || {
        let cfg = JvmConfig {
            cores: 2,
            ..JvmConfig::default()
        };
        let r = Jvm::new(cfg).run_threads(&w.program, &w.threads);
        r.traces.unwrap().per_core[0].bytes.clone()
    };
    assert_eq!(run(), run(), "same program, same bytes");
}

#[test]
fn jit_heavy_run_still_reconstructs() {
    let w = workload_by_name("sunflow", 2);
    let r = Jvm::new(JvmConfig {
        c1_threshold: 2,
        c2_threshold: 6,
        ..JvmConfig::default()
    })
    .run_threads(&w.program, &w.threads);
    assert!(r.compilations >= 2);
    let report = JPortal::new(&w.program).analyze(r.traces.as_ref().unwrap(), &r.archive);
    let acc = overall_accuracy(&w.program, &r.truth, &report);
    assert!(acc > 0.99, "aggressive tiering broke decode: {acc:.3}");
}

#[test]
fn degraded_debug_info_lowers_but_does_not_destroy_accuracy() {
    let w = workload_by_name("sunflow", 2);
    let run = |degrade: f64| {
        let r = Jvm::new(JvmConfig {
            jit: jportal::jvm::JitConfig {
                debug_degrade: degrade,
                ..jportal::jvm::JitConfig::default()
            },
            ..JvmConfig::default()
        })
        .run_threads(&w.program, &w.threads);
        let report = JPortal::new(&w.program).analyze(r.traces.as_ref().unwrap(), &r.archive);
        overall_accuracy(&w.program, &r.truth, &report)
    };
    let clean = run(0.0);
    let degraded = run(0.3);
    assert!(clean > degraded, "degradation must cost accuracy");
    // 30% of JIT debug records gone on a JIT-dominated subject drops
    // roughly that share of events plus alignment spillover.
    assert!(degraded > 0.40, "but not catastrophically: {degraded:.3}");
}
