//! JVM-style bytecode for the JPortal reproduction.
//!
//! This crate defines the bytecode instruction set executed by the simulated
//! JVM (`jportal-jvm`), together with the program/class/method model, a
//! label-based assembler ([`builder`]), a structural verifier ([`verify`])
//! and a disassembler ([`disasm`]).
//!
//! The ISA is a faithful subset of real JVM bytecode semantics — integer
//! arithmetic, locals, an operand stack, conditional and unconditional
//! branches, `tableswitch`/`lookupswitch`, static and virtual calls,
//! objects with fields and vtable dispatch, arrays, and `athrow` with
//! exception tables — because JPortal's reconstruction algorithms operate on
//! interprocedural control-flow graphs built from exactly these constructs.
//!
//! # Examples
//!
//! ```
//! use jportal_bytecode::builder::ProgramBuilder;
//! use jportal_bytecode::{CmpKind, Instruction};
//!
//! let mut pb = ProgramBuilder::new();
//! let class = pb.add_class("Main", None, 0);
//! let mut m = pb.method(class, "fun", 2, true);
//! // static boolean fun(boolean a, int b) { if (a) b += 1; else b -= 2; return b % 2 == 0; }
//! let else_ = m.label();
//! let join = m.label();
//! let odd = m.label();
//! m.emit(Instruction::Iload(0));
//! m.branch_if(CmpKind::Eq, else_);
//! m.emit(Instruction::Iload(1));
//! m.emit(Instruction::Iconst(1));
//! m.emit(Instruction::Iadd);
//! m.emit(Instruction::Istore(1));
//! m.jump(join);
//! m.bind(else_);
//! m.emit(Instruction::Iload(1));
//! m.emit(Instruction::Iconst(2));
//! m.emit(Instruction::Isub);
//! m.emit(Instruction::Istore(1));
//! m.bind(join);
//! m.emit(Instruction::Iload(1));
//! m.emit(Instruction::Iconst(2));
//! m.emit(Instruction::Irem);
//! m.branch_if(CmpKind::Ne, odd);
//! m.emit(Instruction::Iconst(1));
//! m.emit(Instruction::Ireturn);
//! m.bind(odd);
//! m.emit(Instruction::Iconst(0));
//! m.emit(Instruction::Ireturn);
//! let fun = m.finish();
//! let mut main = pb.method(class, "main", 0, false);
//! main.emit(Instruction::Iconst(1));
//! main.emit(Instruction::Iconst(41));
//! main.emit(Instruction::InvokeStatic(fun));
//! main.emit(Instruction::Pop);
//! main.emit(Instruction::Return);
//! let main = main.finish();
//! let program = pb.finish_with_entry(main).expect("verifies");
//! assert_eq!(program.method(fun).code.len(), 19);
//! ```

pub mod builder;
pub mod disasm;
pub mod insn;
pub mod program;
pub mod verify;

pub use insn::{CmpKind, Instruction, OpKind, ProbeKind};
pub use program::{Bci, Class, ClassId, ExceptionHandler, Method, MethodId, Program};
pub use verify::{verify_method, verify_program, VerifyError};
