//! Disassembler: human-readable listings in the style of `javap -c`.

use std::fmt::Write as _;

use crate::insn::Instruction;
use crate::program::{MethodId, Program};

/// Renders one instruction, without its bci prefix.
///
/// # Examples
///
/// ```
/// use jportal_bytecode::disasm::render_insn;
/// use jportal_bytecode::{Bci, CmpKind, Instruction};
///
/// assert_eq!(render_insn(&Instruction::Iload(1)), "iload 1");
/// assert_eq!(render_insn(&Instruction::If(CmpKind::Eq, Bci(11))), "ifeq 11");
/// ```
pub fn render_insn(insn: &Instruction) -> String {
    match insn {
        Instruction::Iconst(v) => format!("iconst {v}"),
        Instruction::Iload(s) => format!("iload {s}"),
        Instruction::Istore(s) => format!("istore {s}"),
        Instruction::Aload(s) => format!("aload {s}"),
        Instruction::Astore(s) => format!("astore {s}"),
        Instruction::Iinc(s, d) => format!("iinc {s} {d:+}"),
        Instruction::Goto(t) => format!("goto {t}"),
        Instruction::If(k, t) => format!("if{k} {t}"),
        Instruction::IfICmp(k, t) => format!("if_icmp{k} {t}"),
        Instruction::IfNull(t) => format!("ifnull {t}"),
        Instruction::TableSwitch {
            low,
            targets,
            default,
        } => {
            let mut s = format!("tableswitch low={low} [");
            for (i, t) in targets.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{t}");
            }
            let _ = write!(s, "] default={default}");
            s
        }
        Instruction::LookupSwitch { pairs, default } => {
            let mut s = String::from("lookupswitch {");
            for (i, (k, t)) in pairs.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{k}: {t}");
            }
            let _ = write!(s, "}} default={default}");
            s
        }
        Instruction::InvokeStatic(m) => format!("invokestatic {m}"),
        Instruction::InvokeVirtual { declared_in, slot } => {
            format!("invokevirtual {declared_in}#{slot}")
        }
        Instruction::New(c) => format!("new {c}"),
        Instruction::Probe(k) => format!("probe {k:?}"),
        Instruction::GetField(i) => format!("getfield {i}"),
        Instruction::PutField(i) => format!("putfield {i}"),
        other => other.op_kind().mnemonic().to_string(),
    }
}

/// Renders a whole method as a `javap`-style listing.
pub fn render_method(program: &Program, id: MethodId) -> String {
    let method = program.method(id);
    let mut out = format!(
        "{} {}({} args) {{\n",
        if method.returns_value { "int" } else { "void" },
        method.qualified_name(program),
        method.n_args
    );
    for (i, insn) in method.code.iter().enumerate() {
        let _ = writeln!(out, "  {i:>4}: {}", render_insn(insn));
    }
    if !method.handlers.is_empty() {
        out.push_str("  Exception table:\n");
        for h in &method.handlers {
            let catch = match h.catch_class {
                Some(c) => format!("{c}"),
                None => "any".to_string(),
            };
            let _ = writeln!(
                out,
                "    from {} to {} handler {} catch {}",
                h.start, h.end, h.handler, catch
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders every method of the program.
pub fn render_program(program: &Program) -> String {
    let mut out = String::new();
    for (id, _) in program.methods() {
        out.push_str(&render_method(program, id));
        out.push('\n');
    }
    out
}

/// Summary line used by the workload characteristics table:
/// instruction count, method count, class count.
pub fn summary(program: &Program) -> String {
    format!(
        "{} instructions, {} methods, {} classes",
        program.code_size(),
        program.method_count(),
        program.class_count()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::insn::{CmpKind, Instruction as I};
    use crate::program::Bci;

    #[test]
    fn renders_branches_like_javap() {
        assert_eq!(render_insn(&I::If(CmpKind::Ne, Bci(23))), "ifne 23");
        assert_eq!(render_insn(&I::Goto(Bci(15))), "goto 15");
        assert_eq!(render_insn(&I::Iinc(2, -1)), "iinc 2 -1");
        assert_eq!(render_insn(&I::Iadd), "iadd");
    }

    #[test]
    fn renders_switches() {
        let s = render_insn(&I::TableSwitch {
            low: 3,
            targets: vec![Bci(4), Bci(8)],
            default: Bci(12),
        });
        assert_eq!(s, "tableswitch low=3 [4, 8] default=12");
        let s = render_insn(&I::LookupSwitch {
            pairs: vec![(1, Bci(4)), (10, Bci(8))],
            default: Bci(12),
        });
        assert_eq!(s, "lookupswitch {1: 4, 10: 8} default=12");
    }

    #[test]
    fn renders_method_with_handlers() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Main", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let h = m.label();
        let start = m.here();
        m.emit(I::Iconst(1));
        m.emit(I::Iconst(0));
        m.emit(I::Idiv);
        m.emit(I::Pop);
        let end = m.here();
        m.emit(I::Return);
        m.add_handler(start, end, h, None);
        m.bind(h);
        m.emit(I::Pop);
        m.emit(I::Return);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let listing = render_method(&p, id);
        assert!(listing.contains("void Main.main(0 args)"));
        assert!(listing.contains("0: iconst 1"));
        assert!(listing.contains("Exception table:"));
        assert!(listing.contains("catch any"));
        let whole = render_program(&p);
        assert!(whole.contains("Main.main"));
        assert!(summary(&p).contains("1 methods"));
    }
}
