//! Structural bytecode verifier.
//!
//! Checks the well-formedness invariants the simulated JVM and the CFG
//! builder rely on: in-range branch targets, no falling off the end of the
//! code, call targets that exist, consistent operand-stack depths along all
//! paths (the classic JVM "stack map" discipline, computed here by abstract
//! interpretation over depths), local-slot bounds, vtable-slot and
//! vtable-entry bounds, class references that exist and well-formed
//! exception tables (every handler target must name a real instruction).
//!
//! On branch targets: real JVM bytecode is byte-addressed, so its verifier
//! must additionally reject targets landing *inside* a multi-byte
//! instruction. This model addresses code by instruction index ([`Bci`] is
//! an index, not an offset), which makes mid-instruction targets
//! unrepresentable by construction — the in-range check here is the
//! complete analogue of that rule.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::insn::Instruction;
use crate::program::{Bci, ClassId, Method, MethodId, Program};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A method was started in the builder but never finished.
    UnfinishedMethod(MethodId),
    /// A method body is empty.
    EmptyCode(MethodId),
    /// A branch target lies outside the method.
    BranchOutOfRange {
        /// Offending method.
        method: MethodId,
        /// Instruction containing the branch.
        at: Bci,
        /// The out-of-range target.
        target: Bci,
    },
    /// Execution can fall through past the last instruction.
    FallsOffEnd(MethodId),
    /// `invokestatic`/vtable entry names a method id outside the program.
    BadCallTarget {
        /// Offending method.
        method: MethodId,
        /// Call site.
        at: Bci,
    },
    /// A virtual call's declared class has no such vtable slot.
    BadVirtualSlot {
        /// Offending method.
        method: MethodId,
        /// Call site.
        at: Bci,
        /// The missing slot.
        slot: u16,
    },
    /// A local-variable index is outside `max_locals`.
    LocalOutOfRange {
        /// Offending method.
        method: MethodId,
        /// Instruction using the slot.
        at: Bci,
        /// The out-of-range slot.
        slot: u16,
    },
    /// Operand stack would underflow.
    StackUnderflow {
        /// Offending method.
        method: MethodId,
        /// Instruction popping too much.
        at: Bci,
    },
    /// Two paths reach the same instruction with different stack depths.
    InconsistentStackDepth {
        /// Offending method.
        method: MethodId,
        /// Join point with the conflict.
        at: Bci,
        /// Depth recorded first.
        first: u16,
        /// Conflicting depth.
        second: u16,
    },
    /// A method declared to return a value reaches `return`, or vice versa.
    WrongReturn {
        /// Offending method.
        method: MethodId,
        /// The offending return instruction.
        at: Bci,
    },
    /// An exception-table entry is malformed (empty range or bad indices).
    BadHandler {
        /// Offending method.
        method: MethodId,
        /// Index in the handler table.
        index: usize,
    },
    /// The entry method must take no arguments.
    EntryHasArgs(MethodId),
    /// `lookupswitch` keys are not strictly ascending.
    UnsortedSwitchKeys {
        /// Offending method.
        method: MethodId,
        /// The switch instruction.
        at: Bci,
    },
    /// `new` names a class outside the program.
    BadClassRef {
        /// Offending method.
        method: MethodId,
        /// The allocation site.
        at: Bci,
        /// The nonexistent class.
        class: ClassId,
    },
    /// A vtable slot names a method outside the program.
    BadVtableEntry {
        /// Class owning the vtable.
        class: ClassId,
        /// Offending slot index.
        slot: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnfinishedMethod(m) => write!(f, "method {m} was never finished"),
            VerifyError::EmptyCode(m) => write!(f, "method {m} has empty code"),
            VerifyError::BranchOutOfRange { method, at, target } => {
                write!(
                    f,
                    "branch at {method}@{at} targets out-of-range bci {target}"
                )
            }
            VerifyError::FallsOffEnd(m) => write!(f, "method {m} can fall off the end of its code"),
            VerifyError::BadCallTarget { method, at } => {
                write!(
                    f,
                    "call at {method}@{at} names a method outside the program"
                )
            }
            VerifyError::BadVirtualSlot { method, at, slot } => {
                write!(
                    f,
                    "virtual call at {method}@{at} uses missing vtable slot {slot}"
                )
            }
            VerifyError::LocalOutOfRange { method, at, slot } => {
                write!(f, "local slot {slot} at {method}@{at} exceeds max_locals")
            }
            VerifyError::StackUnderflow { method, at } => {
                write!(f, "operand stack underflow at {method}@{at}")
            }
            VerifyError::InconsistentStackDepth {
                method,
                at,
                first,
                second,
            } => write!(
                f,
                "inconsistent stack depth at {method}@{at}: {first} vs {second}"
            ),
            VerifyError::WrongReturn { method, at } => {
                write!(
                    f,
                    "return kind at {method}@{at} disagrees with method signature"
                )
            }
            VerifyError::BadHandler { method, index } => {
                write!(f, "malformed exception handler {index} in {method}")
            }
            VerifyError::EntryHasArgs(m) => write!(f, "entry method {m} must take no arguments"),
            VerifyError::UnsortedSwitchKeys { method, at } => {
                write!(
                    f,
                    "lookupswitch keys at {method}@{at} are not strictly ascending"
                )
            }
            VerifyError::BadClassRef { method, at, class } => {
                write!(
                    f,
                    "new at {method}@{at} names class {class} outside the program"
                )
            }
            VerifyError::BadVtableEntry { class, slot } => {
                write!(
                    f,
                    "vtable slot {slot} of class {class} names a method outside the program"
                )
            }
        }
    }
}

impl Error for VerifyError {}

/// Verifies every method of `program`.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    let entry = program.method(program.entry());
    if entry.n_args != 0 {
        return Err(VerifyError::EntryHasArgs(program.entry()));
    }
    // Dispatch tables must resolve before any per-method check walks
    // through them.
    for (cid, class) in program.classes() {
        for (slot, target) in class.vtable.iter().enumerate() {
            if target.index() >= program.method_count() {
                return Err(VerifyError::BadVtableEntry { class: cid, slot });
            }
        }
    }
    for (id, method) in program.methods() {
        verify_method(program, id, method)?;
    }
    Ok(())
}

/// Verifies a single method.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered in this method.
pub fn verify_method(program: &Program, id: MethodId, method: &Method) -> Result<(), VerifyError> {
    if method.code.is_empty() {
        return Err(VerifyError::EmptyCode(id));
    }
    let len = method.code.len() as u32;
    let in_range = |b: Bci| b.0 < len;

    for (i, insn) in method.code.iter().enumerate() {
        let at = Bci(i as u32);
        for t in insn.branch_targets() {
            if !in_range(t) {
                return Err(VerifyError::BranchOutOfRange {
                    method: id,
                    at,
                    target: t,
                });
            }
        }
        match insn {
            Instruction::Iload(s)
            | Instruction::Istore(s)
            | Instruction::Aload(s)
            | Instruction::Astore(s)
            | Instruction::Iinc(s, _)
                if *s >= method.max_locals =>
            {
                return Err(VerifyError::LocalOutOfRange {
                    method: id,
                    at,
                    slot: *s,
                });
            }
            Instruction::InvokeStatic(m) if m.index() >= program.method_count() => {
                return Err(VerifyError::BadCallTarget { method: id, at });
            }
            Instruction::InvokeVirtual { declared_in, slot }
                if (declared_in.index() >= program.class_count()
                    || *slot as usize >= program.class(*declared_in).vtable.len()) =>
            {
                return Err(VerifyError::BadVirtualSlot {
                    method: id,
                    at,
                    slot: *slot,
                });
            }
            Instruction::LookupSwitch { pairs, .. }
                if pairs.windows(2).any(|w| w[0].0 >= w[1].0) =>
            {
                return Err(VerifyError::UnsortedSwitchKeys { method: id, at });
            }
            Instruction::New(c) if c.index() >= program.class_count() => {
                return Err(VerifyError::BadClassRef {
                    method: id,
                    at,
                    class: *c,
                });
            }
            Instruction::Ireturn | Instruction::Areturn if !method.returns_value => {
                return Err(VerifyError::WrongReturn { method: id, at });
            }
            Instruction::Return if method.returns_value => {
                return Err(VerifyError::WrongReturn { method: id, at });
            }
            _ => {}
        }
        // Last instruction must not fall through.
        if i + 1 == method.code.len() && !insn.is_terminator() {
            return Err(VerifyError::FallsOffEnd(id));
        }
    }

    for (i, h) in method.handlers.iter().enumerate() {
        let ok = h.start < h.end
            && h.end.0 <= len
            && in_range(h.handler)
            && h.catch_class
                .is_none_or(|c| c.index() < program.class_count());
        if !ok {
            return Err(VerifyError::BadHandler {
                method: id,
                index: i,
            });
        }
    }

    verify_stack_depths(program, id, method)
}

/// Abstract interpretation over operand-stack depths.
fn verify_stack_depths(
    program: &Program,
    id: MethodId,
    method: &Method,
) -> Result<(), VerifyError> {
    const UNVISITED: i32 = -1;
    let mut depth_at: Vec<i32> = vec![UNVISITED; method.code.len()];
    let mut queue: VecDeque<(Bci, u16)> = VecDeque::new();
    queue.push_back((Bci(0), 0));
    // Handler entries start with exactly the thrown reference on the stack.
    for h in &method.handlers {
        queue.push_back((h.handler, 1));
    }

    while let Some((bci, depth)) = queue.pop_front() {
        let slot = &mut depth_at[bci.index()];
        if *slot != UNVISITED {
            if *slot != i32::from(depth) {
                return Err(VerifyError::InconsistentStackDepth {
                    method: id,
                    at: bci,
                    first: *slot as u16,
                    second: depth,
                });
            }
            continue;
        }
        *slot = i32::from(depth);

        let insn = method.insn(bci);
        let (pops, pushes) = match insn {
            Instruction::InvokeStatic(m) => {
                let callee = program.method(*m);
                insn.stack_effect(callee.n_args, callee.returns_value)
            }
            Instruction::InvokeVirtual { declared_in, slot } => {
                let target = program.class(*declared_in).vtable[*slot as usize];
                let callee = program.method(target);
                // Receiver is included in the callee's n_args for virtual
                // methods in this model; pops = n_args.
                (callee.n_args, u16::from(callee.returns_value))
            }
            other => other.stack_effect(0, false),
        };
        if depth < pops {
            return Err(VerifyError::StackUnderflow {
                method: id,
                at: bci,
            });
        }
        let next_depth = depth - pops + pushes;

        if !insn.is_terminator() {
            queue.push_back((bci.next(), next_depth));
        }
        for t in insn.branch_targets() {
            queue.push_back((t, next_depth));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::insn::{CmpKind, Instruction as I};
    use crate::program::ExceptionHandler;

    fn single_method(
        code: Vec<I>,
        n_args: u16,
        returns_value: bool,
    ) -> Result<Program, VerifyError> {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "f", n_args, returns_value);
        for i in code {
            m.emit(i);
        }
        m.finish();
        let mut entry = pb.method(c, "main", 0, false);
        entry.emit(I::Return);
        let entry = entry.finish();
        pb.finish_with_entry(entry)
    }

    #[test]
    fn accepts_trivial_method() {
        assert!(single_method(vec![I::Return], 0, false).is_ok());
    }

    #[test]
    fn rejects_empty_code() {
        let err = single_method(vec![], 0, false).unwrap_err();
        assert!(matches!(err, VerifyError::EmptyCode(_)));
    }

    #[test]
    fn rejects_fall_off_end() {
        let err = single_method(vec![I::Iconst(1), I::Pop, I::Nop], 0, false).unwrap_err();
        assert!(matches!(err, VerifyError::FallsOffEnd(_)));
    }

    #[test]
    fn rejects_branch_out_of_range() {
        let err = single_method(vec![I::Goto(Bci(99))], 0, false).unwrap_err();
        assert!(matches!(err, VerifyError::BranchOutOfRange { .. }));
    }

    #[test]
    fn rejects_stack_underflow() {
        let err = single_method(vec![I::Iadd, I::Return], 0, false).unwrap_err();
        assert!(matches!(err, VerifyError::StackUnderflow { .. }));
    }

    #[test]
    fn rejects_wrong_return_kind() {
        let err = single_method(vec![I::Return], 0, true).unwrap_err();
        assert!(matches!(err, VerifyError::WrongReturn { .. }));
        let err = single_method(vec![I::Iconst(0), I::Ireturn], 0, false).unwrap_err();
        assert!(matches!(err, VerifyError::WrongReturn { .. }));
    }

    #[test]
    fn rejects_inconsistent_join_depth() {
        // if (a) push 1; join with the empty-stack path, then return.
        let err = single_method(
            vec![
                I::Iload(0),
                I::If(CmpKind::Eq, Bci(3)),
                I::Iconst(1),
                // join point: depth 0 on the branch path, 1 on fall-through
                I::Return,
            ],
            1,
            false,
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::InconsistentStackDepth { .. }));
    }

    #[test]
    fn rejects_entry_with_args() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 2, false);
        m.emit(I::Return);
        let id = m.finish();
        let err = pb.finish_with_entry(id).unwrap_err();
        assert!(matches!(err, VerifyError::EntryHasArgs(_)));
    }

    #[test]
    fn rejects_unsorted_lookupswitch() {
        let err = single_method(
            vec![
                I::Iconst(0),
                I::LookupSwitch {
                    pairs: vec![(5, Bci(2)), (1, Bci(2))],
                    default: Bci(2),
                },
                I::Return,
            ],
            0,
            false,
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::UnsortedSwitchKeys { .. }));
    }

    #[test]
    fn rejects_bad_handler_range() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::Return);
        let id = m.finish();
        // Inject a malformed handler directly.
        let mut program = pb.finish_with_entry(id).unwrap();
        // Rebuild with a broken handler via from_parts.
        let mut method = program.method(id).clone();
        method.handlers.push(ExceptionHandler {
            start: Bci(1),
            end: Bci(1),
            handler: Bci(0),
            catch_class: None,
        });
        program = Program::from_parts(
            program.classes().map(|(_, c)| c.clone()).collect(),
            vec![method],
            id,
        );
        let err = verify_program(&program).unwrap_err();
        assert!(matches!(err, VerifyError::BadHandler { .. }));
    }

    #[test]
    fn handler_entry_depth_is_one() {
        // try { 1/0 } catch { pop; } return — handler starts with depth 1.
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let h = m.label();
        let start = m.here();
        m.emit(I::Iconst(1));
        m.emit(I::Iconst(0));
        m.emit(I::Idiv);
        m.emit(I::Pop);
        let end = m.here();
        m.emit(I::Return);
        m.add_handler(start, end, h, None);
        m.bind(h);
        m.emit(I::Pop);
        m.emit(I::Return);
        let id = m.finish();
        assert!(pb.finish_with_entry(id).is_ok());
    }

    #[test]
    fn rejects_new_of_unknown_class() {
        use crate::program::ClassId;
        let err =
            single_method(vec![I::New(ClassId(42)), I::Pop, I::Return], 0, false).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::BadClassRef {
                class: ClassId(42),
                ..
            }
        ));
    }

    #[test]
    fn rejects_dangling_vtable_entry() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::Return);
        let id = m.finish();
        let program = pb.finish_with_entry(id).unwrap();
        // Rebuild with a vtable slot pointing past the method table.
        let mut classes: Vec<_> = program.classes().map(|(_, c)| c.clone()).collect();
        classes[0].vtable.push(MethodId(99));
        let broken = Program::from_parts(
            classes,
            program.methods().map(|(_, m)| m.clone()).collect(),
            id,
        );
        let err = verify_program(&broken).unwrap_err();
        assert!(matches!(err, VerifyError::BadVtableEntry { slot: 0, .. }));
    }

    #[test]
    fn error_display_nonempty() {
        let errors = [
            VerifyError::EmptyCode(MethodId(3)),
            VerifyError::FallsOffEnd(MethodId(1)),
            VerifyError::EntryHasArgs(MethodId(0)),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
