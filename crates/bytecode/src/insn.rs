//! The bytecode instruction set.

use std::fmt;

use crate::program::{Bci, ClassId, MethodId};

/// Comparison kinds shared by the `if<cond>` and `if_icmp<cond>` families.
///
/// `If(CmpKind::Eq, t)` corresponds to JVM `ifeq t` (branch when the popped
/// value compares equal to zero); `IfICmp(CmpKind::Lt, t)` corresponds to
/// `if_icmplt t` (branch when `a < b` for popped operands `a`, `b`).
///
/// # Examples
///
/// ```
/// use jportal_bytecode::CmpKind;
/// assert!(CmpKind::Lt.eval(1, 2));
/// assert!(!CmpKind::Ge.eval(1, 2));
/// assert_eq!(CmpKind::Eq.negate(), CmpKind::Ne);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpKind {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<=`
    Le,
}

impl CmpKind {
    /// Evaluates the comparison on two integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Ge => a >= b,
            CmpKind::Gt => a > b,
            CmpKind::Le => a <= b,
        }
    }

    /// Returns the logically negated comparison.
    pub fn negate(self) -> CmpKind {
        match self {
            CmpKind::Eq => CmpKind::Ne,
            CmpKind::Ne => CmpKind::Eq,
            CmpKind::Lt => CmpKind::Ge,
            CmpKind::Ge => CmpKind::Lt,
            CmpKind::Gt => CmpKind::Le,
            CmpKind::Le => CmpKind::Gt,
        }
    }

    /// Lower-case mnemonic suffix (`eq`, `ne`, ...), as printed by `javap`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Ge => "ge",
            CmpKind::Gt => "gt",
            CmpKind::Le => "le",
        }
    }
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single bytecode instruction.
///
/// Branch targets are [`Bci`] values — indices into the owning method's code
/// array (the reproduction addresses instructions by index rather than by
/// byte offset; the mapping is bijective and the disassembler prints the
/// index as the "offset").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Push an integer constant (covers `iconst_*`, `bipush`, `sipush`, `ldc`).
    Iconst(i64),
    /// Push the `null` reference (`aconst_null`).
    AconstNull,
    /// Load integer from local slot.
    Iload(u16),
    /// Store integer to local slot.
    Istore(u16),
    /// Load reference from local slot.
    Aload(u16),
    /// Store reference to local slot.
    Astore(u16),
    /// Increment local slot by a constant (`iinc`).
    Iinc(u16, i32),
    /// Integer addition.
    Iadd,
    /// Integer subtraction.
    Isub,
    /// Integer multiplication.
    Imul,
    /// Integer division.
    ///
    /// Throws `ArithmeticException` (class 0 of the program's throwable set)
    /// on division by zero, like the JVM.
    Idiv,
    /// Integer remainder; throws on zero divisor.
    Irem,
    /// Integer negation.
    Ineg,
    /// Bitwise and.
    Iand,
    /// Bitwise or.
    Ior,
    /// Bitwise xor.
    Ixor,
    /// Shift left (mod 64).
    Ishl,
    /// Arithmetic shift right (mod 64).
    Ishr,
    /// Duplicate top of stack.
    Dup,
    /// Pop top of stack.
    Pop,
    /// Swap the two top stack slots.
    Swap,
    /// Unconditional branch.
    Goto(Bci),
    /// Conditional branch comparing the popped integer with zero
    /// (`ifeq` .. `ifle`).
    If(CmpKind, Bci),
    /// Conditional branch comparing two popped integers
    /// (`if_icmpeq` .. `if_icmple`).
    IfICmp(CmpKind, Bci),
    /// Branch if the popped reference is `null` (`ifnull`).
    IfNull(Bci),
    /// Dense switch over `[low, low + targets.len())` (`tableswitch`).
    TableSwitch {
        /// Lowest matched key.
        low: i64,
        /// Target per consecutive key.
        targets: Vec<Bci>,
        /// Target when no key matches.
        default: Bci,
    },
    /// Sparse switch (`lookupswitch`); pairs must be sorted by key.
    LookupSwitch {
        /// `(key, target)` pairs sorted by key.
        pairs: Vec<(i64, Bci)>,
        /// Target when no key matches.
        default: Bci,
    },
    /// Direct call to a static method.
    InvokeStatic(MethodId),
    /// Virtual call dispatched through the receiver's vtable slot.
    ///
    /// The receiver is the deepest popped operand (pushed before the
    /// arguments); `declared_in` names the statically known receiver class,
    /// used by the ICFG builder to enumerate potential targets.
    InvokeVirtual {
        /// Class whose vtable layout declares the slot.
        declared_in: ClassId,
        /// Vtable slot index.
        slot: u16,
    },
    /// Return an integer from the current method.
    Ireturn,
    /// Return a reference from the current method.
    Areturn,
    /// Return void.
    Return,
    /// Allocate an object of the class.
    New(ClassId),
    /// Push field `index` of the popped object reference.
    GetField(u16),
    /// Store the popped value into field `index` of the popped reference.
    PutField(u16),
    /// Allocate an integer array of the popped length (`newarray`).
    NewArray,
    /// Push `array[index]` for popped `array`, `index` (`iaload`);
    /// throws on out-of-bounds.
    ArrayLoad,
    /// Store popped value into `array[index]` (`iastore`); throws on
    /// out-of-bounds.
    ArrayStore,
    /// Push the length of the popped array reference.
    ArrayLength,
    /// Throw the popped reference as an exception (`athrow`).
    Athrow,
    /// Instrumentation probe inserted by a profiling pass (statement
    /// counters, Ball–Larus path registers, control-flow event emission).
    ///
    /// Stack-neutral and never throws; the simulated JVM executes it by
    /// updating the run's [`probe runtime`](ProbeKind) and charging the
    /// probe's cost to the simulated clock — which is how the baselines'
    /// overheads (paper Table 2) arise.
    Probe(ProbeKind),
}

/// What an instrumentation probe does when executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// Increment global counter `id` (statement/block coverage).
    Count(u32),
    /// Set the frame's Ball–Larus path register to the value.
    PathSet(u32),
    /// Add to the frame's Ball–Larus path register.
    PathAdd(u32),
    /// Record the frame's path register under region `id` and reset it.
    PathCommit(u32),
    /// Append a control-flow event of the given encoded size in bytes
    /// (full control-flow tracing à la Ball–Larus 1994).
    Event(u32),
    /// Record a method-entry timestamp sample (hot-method profiling).
    MethodTimer(u32),
}

impl Instruction {
    /// The operation kind (fieldless discriminant) of this instruction.
    ///
    /// The template interpreter keys its machine-code templates on this.
    pub fn op_kind(&self) -> OpKind {
        match self {
            Instruction::Nop => OpKind::Nop,
            Instruction::Iconst(_) => OpKind::Iconst,
            Instruction::AconstNull => OpKind::AconstNull,
            Instruction::Iload(_) => OpKind::Iload,
            Instruction::Istore(_) => OpKind::Istore,
            Instruction::Aload(_) => OpKind::Aload,
            Instruction::Astore(_) => OpKind::Astore,
            Instruction::Iinc(..) => OpKind::Iinc,
            Instruction::Iadd => OpKind::Iadd,
            Instruction::Isub => OpKind::Isub,
            Instruction::Imul => OpKind::Imul,
            Instruction::Idiv => OpKind::Idiv,
            Instruction::Irem => OpKind::Irem,
            Instruction::Ineg => OpKind::Ineg,
            Instruction::Iand => OpKind::Iand,
            Instruction::Ior => OpKind::Ior,
            Instruction::Ixor => OpKind::Ixor,
            Instruction::Ishl => OpKind::Ishl,
            Instruction::Ishr => OpKind::Ishr,
            Instruction::Dup => OpKind::Dup,
            Instruction::Pop => OpKind::Pop,
            Instruction::Swap => OpKind::Swap,
            Instruction::Goto(_) => OpKind::Goto,
            Instruction::If(k, _) => match k {
                CmpKind::Eq => OpKind::Ifeq,
                CmpKind::Ne => OpKind::Ifne,
                CmpKind::Lt => OpKind::Iflt,
                CmpKind::Ge => OpKind::Ifge,
                CmpKind::Gt => OpKind::Ifgt,
                CmpKind::Le => OpKind::Ifle,
            },
            Instruction::IfICmp(k, _) => match k {
                CmpKind::Eq => OpKind::IfIcmpeq,
                CmpKind::Ne => OpKind::IfIcmpne,
                CmpKind::Lt => OpKind::IfIcmplt,
                CmpKind::Ge => OpKind::IfIcmpge,
                CmpKind::Gt => OpKind::IfIcmpgt,
                CmpKind::Le => OpKind::IfIcmple,
            },
            Instruction::IfNull(_) => OpKind::Ifnull,
            Instruction::TableSwitch { .. } => OpKind::TableSwitch,
            Instruction::LookupSwitch { .. } => OpKind::LookupSwitch,
            Instruction::InvokeStatic(_) => OpKind::InvokeStatic,
            Instruction::InvokeVirtual { .. } => OpKind::InvokeVirtual,
            Instruction::Ireturn => OpKind::Ireturn,
            Instruction::Areturn => OpKind::Areturn,
            Instruction::Return => OpKind::Return,
            Instruction::New(_) => OpKind::New,
            Instruction::GetField(_) => OpKind::GetField,
            Instruction::PutField(_) => OpKind::PutField,
            Instruction::NewArray => OpKind::NewArray,
            Instruction::ArrayLoad => OpKind::ArrayLoad,
            Instruction::ArrayStore => OpKind::ArrayStore,
            Instruction::ArrayLength => OpKind::ArrayLength,
            Instruction::Athrow => OpKind::Athrow,
            Instruction::Probe(_) => OpKind::Probe,
        }
    }

    /// `true` for conditional branches (`if*`, `if_icmp*`, `ifnull`).
    pub fn is_conditional_branch(&self) -> bool {
        matches!(
            self,
            Instruction::If(..) | Instruction::IfICmp(..) | Instruction::IfNull(_)
        )
    }

    /// `true` for instructions that never fall through to `bci + 1`.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instruction::Goto(_)
                | Instruction::TableSwitch { .. }
                | Instruction::LookupSwitch { .. }
                | Instruction::Ireturn
                | Instruction::Areturn
                | Instruction::Return
                | Instruction::Athrow
        )
    }

    /// `true` for any control-transfer instruction (tier-2 instructions of
    /// Definition 5.2: branch, jump, switch, call, return, throw).
    pub fn is_control(&self) -> bool {
        self.is_conditional_branch()
            || self.is_terminator()
            || self.is_call()
            || matches!(self, Instruction::Goto(_))
    }

    /// `true` for call instructions (tier-1 together with returns).
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            Instruction::InvokeStatic(_) | Instruction::InvokeVirtual { .. }
        )
    }

    /// `true` for return instructions.
    pub fn is_return(&self) -> bool {
        matches!(
            self,
            Instruction::Ireturn | Instruction::Areturn | Instruction::Return
        )
    }

    /// Explicit intra-method branch targets (excludes fall-through).
    pub fn branch_targets(&self) -> Vec<Bci> {
        match self {
            Instruction::Goto(t)
            | Instruction::If(_, t)
            | Instruction::IfICmp(_, t)
            | Instruction::IfNull(t) => vec![*t],
            Instruction::TableSwitch {
                targets, default, ..
            } => {
                let mut v = targets.clone();
                v.push(*default);
                v
            }
            Instruction::LookupSwitch { pairs, default } => {
                let mut v: Vec<Bci> = pairs.iter().map(|(_, t)| *t).collect();
                v.push(*default);
                v
            }
            _ => Vec::new(),
        }
    }

    /// Net operand-stack effect `(pops, pushes)` of executing this
    /// instruction, given the owning program's method table to size call
    /// pops/pushes.
    ///
    /// `n_args`/`returns_value` describe the callee for call instructions
    /// and are ignored otherwise.
    pub fn stack_effect(&self, callee_args: u16, callee_returns: bool) -> (u16, u16) {
        match self {
            Instruction::Nop | Instruction::Iinc(..) => (0, 0),
            Instruction::Iconst(_) | Instruction::AconstNull => (0, 1),
            Instruction::Iload(_) | Instruction::Aload(_) => (0, 1),
            Instruction::Istore(_) | Instruction::Astore(_) => (1, 0),
            Instruction::Iadd
            | Instruction::Isub
            | Instruction::Imul
            | Instruction::Idiv
            | Instruction::Irem
            | Instruction::Iand
            | Instruction::Ior
            | Instruction::Ixor
            | Instruction::Ishl
            | Instruction::Ishr => (2, 1),
            Instruction::Ineg => (1, 1),
            Instruction::Dup => (1, 2),
            Instruction::Pop => (1, 0),
            Instruction::Swap => (2, 2),
            Instruction::Goto(_) => (0, 0),
            Instruction::If(..) | Instruction::IfNull(_) => (1, 0),
            Instruction::IfICmp(..) => (2, 0),
            Instruction::TableSwitch { .. } | Instruction::LookupSwitch { .. } => (1, 0),
            Instruction::InvokeStatic(_) => (callee_args, u16::from(callee_returns)),
            // +1 pop for the receiver.
            Instruction::InvokeVirtual { .. } => (callee_args + 1, u16::from(callee_returns)),
            Instruction::Ireturn | Instruction::Areturn => (1, 0),
            Instruction::Return => (0, 0),
            Instruction::New(_) => (0, 1),
            Instruction::GetField(_) => (1, 1),
            Instruction::PutField(_) => (2, 0),
            Instruction::NewArray => (1, 1),
            Instruction::ArrayLoad => (2, 1),
            Instruction::ArrayStore => (3, 0),
            Instruction::ArrayLength => (1, 1),
            Instruction::Athrow => (1, 0),
            Instruction::Probe(_) => (0, 0),
        }
    }

    /// `true` if this instruction can raise a runtime exception
    /// (division by zero, null dereference, out-of-bounds, explicit throw).
    pub fn can_throw(&self) -> bool {
        matches!(
            self,
            Instruction::Idiv
                | Instruction::Irem
                | Instruction::GetField(_)
                | Instruction::PutField(_)
                | Instruction::ArrayLoad
                | Instruction::ArrayStore
                | Instruction::ArrayLength
                | Instruction::Athrow
                | Instruction::InvokeVirtual { .. }
        )
    }
}

macro_rules! op_kinds {
    ($($(#[$doc:meta])* $name:ident => $mnem:literal,)+) => {
        /// Fieldless operation kind: one value per interpreter template.
        ///
        /// The template interpreter of the simulated JVM installs one
        /// machine-code template per `OpKind`; JPortal's interpreted-mode
        /// decoder maps machine addresses back to the `OpKind` whose
        /// template range contains them (paper §3.1, Figure 2c).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        pub enum OpKind {
            $($(#[$doc])* $name,)+
        }

        impl OpKind {
            /// All operation kinds, in template-table order.
            pub const ALL: &'static [OpKind] = &[$(OpKind::$name,)+];

            /// The assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(OpKind::$name => $mnem,)+
                }
            }
        }
    };
}

op_kinds! {
    /// `nop`
    Nop => "nop",
    /// `iconst` family / `bipush` / `sipush` / `ldc`
    Iconst => "iconst",
    /// `aconst_null`
    AconstNull => "aconst_null",
    /// `iload`
    Iload => "iload",
    /// `istore`
    Istore => "istore",
    /// `aload`
    Aload => "aload",
    /// `astore`
    Astore => "astore",
    /// `iinc`
    Iinc => "iinc",
    /// `iadd`
    Iadd => "iadd",
    /// `isub`
    Isub => "isub",
    /// `imul`
    Imul => "imul",
    /// `idiv`
    Idiv => "idiv",
    /// `irem`
    Irem => "irem",
    /// `ineg`
    Ineg => "ineg",
    /// `iand`
    Iand => "iand",
    /// `ior`
    Ior => "ior",
    /// `ixor`
    Ixor => "ixor",
    /// `ishl`
    Ishl => "ishl",
    /// `ishr`
    Ishr => "ishr",
    /// `dup`
    Dup => "dup",
    /// `pop`
    Pop => "pop",
    /// `swap`
    Swap => "swap",
    /// `goto`
    Goto => "goto",
    /// `ifeq`
    Ifeq => "ifeq",
    /// `ifne`
    Ifne => "ifne",
    /// `iflt`
    Iflt => "iflt",
    /// `ifge`
    Ifge => "ifge",
    /// `ifgt`
    Ifgt => "ifgt",
    /// `ifle`
    Ifle => "ifle",
    /// `if_icmpeq`
    IfIcmpeq => "if_icmpeq",
    /// `if_icmpne`
    IfIcmpne => "if_icmpne",
    /// `if_icmplt`
    IfIcmplt => "if_icmplt",
    /// `if_icmpge`
    IfIcmpge => "if_icmpge",
    /// `if_icmpgt`
    IfIcmpgt => "if_icmpgt",
    /// `if_icmple`
    IfIcmple => "if_icmple",
    /// `ifnull`
    Ifnull => "ifnull",
    /// `tableswitch`
    TableSwitch => "tableswitch",
    /// `lookupswitch`
    LookupSwitch => "lookupswitch",
    /// `invokestatic`
    InvokeStatic => "invokestatic",
    /// `invokevirtual`
    InvokeVirtual => "invokevirtual",
    /// `ireturn`
    Ireturn => "ireturn",
    /// `areturn`
    Areturn => "areturn",
    /// `return`
    Return => "return",
    /// `new`
    New => "new",
    /// `getfield`
    GetField => "getfield",
    /// `putfield`
    PutField => "putfield",
    /// `newarray`
    NewArray => "newarray",
    /// `iaload`
    ArrayLoad => "iaload",
    /// `iastore`
    ArrayStore => "iastore",
    /// `arraylength`
    ArrayLength => "arraylength",
    /// `athrow`
    Athrow => "athrow",
    /// instrumentation probe
    Probe => "probe",
}

impl OpKind {
    /// Index of this kind in the template table.
    ///
    /// `OpKind` is `#[repr(u8)]` with variants declared in template-table
    /// order, so the discriminant *is* the table index; dense per-op
    /// tables (e.g. the ICFG op index) rely on this being O(1).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_matrix() {
        assert!(CmpKind::Eq.eval(3, 3));
        assert!(!CmpKind::Eq.eval(3, 4));
        assert!(CmpKind::Ne.eval(3, 4));
        assert!(CmpKind::Lt.eval(-1, 0));
        assert!(CmpKind::Ge.eval(0, 0));
        assert!(CmpKind::Gt.eval(5, 4));
        assert!(CmpKind::Le.eval(4, 4));
    }

    #[test]
    fn cmp_negate_is_involution() {
        for k in [
            CmpKind::Eq,
            CmpKind::Ne,
            CmpKind::Lt,
            CmpKind::Ge,
            CmpKind::Gt,
            CmpKind::Le,
        ] {
            assert_eq!(k.negate().negate(), k);
            // negation flips the outcome on every input pair
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-3, 3)] {
                assert_ne!(k.eval(a, b), k.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn op_kind_round_trip() {
        let insn = Instruction::If(CmpKind::Ge, Bci(7));
        assert_eq!(insn.op_kind(), OpKind::Ifge);
        assert_eq!(OpKind::Ifge.mnemonic(), "ifge");
        assert_eq!(OpKind::ALL[OpKind::Ifge.index()], OpKind::Ifge);
    }

    #[test]
    fn all_kinds_unique() {
        let mut seen = std::collections::HashSet::new();
        for &k in OpKind::ALL {
            assert!(seen.insert(k), "duplicate kind {k:?}");
        }
    }

    #[test]
    fn classification() {
        assert!(Instruction::Goto(Bci(0)).is_terminator());
        assert!(Instruction::Goto(Bci(0)).is_control());
        assert!(!Instruction::Goto(Bci(0)).is_conditional_branch());
        assert!(Instruction::If(CmpKind::Eq, Bci(0)).is_conditional_branch());
        assert!(Instruction::InvokeStatic(MethodId(0)).is_call());
        assert!(Instruction::Ireturn.is_return());
        assert!(Instruction::Ireturn.is_terminator());
        assert!(!Instruction::Iadd.is_control());
        assert!(Instruction::Athrow.is_terminator());
        assert!(Instruction::TableSwitch {
            low: 0,
            targets: vec![],
            default: Bci(0)
        }
        .is_terminator());
    }

    #[test]
    fn branch_targets_enumeration() {
        let sw = Instruction::TableSwitch {
            low: 1,
            targets: vec![Bci(10), Bci(20)],
            default: Bci(30),
        };
        assert_eq!(sw.branch_targets(), vec![Bci(10), Bci(20), Bci(30)]);
        let ls = Instruction::LookupSwitch {
            pairs: vec![(1, Bci(5)), (9, Bci(6))],
            default: Bci(7),
        };
        assert_eq!(ls.branch_targets(), vec![Bci(5), Bci(6), Bci(7)]);
        assert!(Instruction::Iadd.branch_targets().is_empty());
    }

    #[test]
    fn stack_effects() {
        assert_eq!(Instruction::Iadd.stack_effect(0, false), (2, 1));
        assert_eq!(
            Instruction::InvokeStatic(MethodId(0)).stack_effect(3, true),
            (3, 1)
        );
        assert_eq!(
            Instruction::InvokeVirtual {
                declared_in: ClassId(0),
                slot: 0
            }
            .stack_effect(2, false),
            (3, 0)
        );
    }
}
