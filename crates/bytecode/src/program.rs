//! Program, class and method model.

use std::fmt;

use crate::insn::Instruction;

/// Bytecode index: position of an instruction within a method's code array.
///
/// The reproduction addresses instructions by index; real JVM byte offsets
/// are a bijective renaming of these and carry no additional information
/// for control-flow reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bci(pub u32);

impl Bci {
    /// The next instruction index (fall-through successor).
    pub fn next(self) -> Bci {
        Bci(self.0 + 1)
    }

    /// The index as a `usize` for slicing into code arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Bci {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a method within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MethodId(pub u32);

impl MethodId {
    /// The identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of a class within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One `try { … } catch` region of a method's exception table.
///
/// A handler covers bytecode indices `start..end` (half-open) and catches
/// exceptions whose class is `catch_class` or a subclass of it; `None`
/// catches everything (like `catch (Throwable t)` / `finally`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExceptionHandler {
    /// First covered instruction index.
    pub start: Bci,
    /// One past the last covered instruction index.
    pub end: Bci,
    /// Where execution resumes with the thrown reference on the stack.
    pub handler: Bci,
    /// Class filter; `None` is catch-all.
    pub catch_class: Option<ClassId>,
}

impl ExceptionHandler {
    /// `true` if the handler covers instruction `bci`.
    pub fn covers(&self, bci: Bci) -> bool {
        self.start <= bci && bci < self.end
    }
}

/// A method: code, exception table and frame layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    /// Simple name (unique within its class in well-formed programs).
    pub name: String,
    /// Owning class.
    pub class: ClassId,
    /// Number of arguments, which arrive in locals `0..n_args`
    /// (for virtual methods the receiver is local 0 and counts).
    pub n_args: u16,
    /// Total local slots (≥ `n_args`).
    pub max_locals: u16,
    /// `true` if the method returns a value (`ireturn`/`areturn`).
    pub returns_value: bool,
    /// The code array.
    pub code: Vec<Instruction>,
    /// Exception table, searched in order (first covering match wins).
    pub handlers: Vec<ExceptionHandler>,
}

impl Method {
    /// The instruction at `bci`.
    ///
    /// # Panics
    ///
    /// Panics if `bci` is out of range.
    pub fn insn(&self, bci: Bci) -> &Instruction {
        &self.code[bci.index()]
    }

    /// The first handler covering `bci` that accepts `thrown`, given the
    /// program for subclass tests.
    pub fn find_handler(
        &self,
        program: &Program,
        bci: Bci,
        thrown: ClassId,
    ) -> Option<&ExceptionHandler> {
        self.handlers.iter().find(|h| {
            h.covers(bci)
                && match h.catch_class {
                    None => true,
                    Some(c) => program.is_subclass_of(thrown, c),
                }
        })
    }

    /// Fully qualified `Class.name` string for diagnostics.
    pub fn qualified_name(&self, program: &Program) -> String {
        format!("{}.{}", program.class(self.class).name, self.name)
    }
}

/// A class: name, superclass and vtable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Class {
    /// Simple name.
    pub name: String,
    /// Superclass, if any.
    pub super_class: Option<ClassId>,
    /// Virtual dispatch table: slot → implementation.
    ///
    /// A subclass's vtable starts as a copy of its superclass's and may
    /// override slots or append new ones.
    pub vtable: Vec<MethodId>,
    /// Number of instance field slots (including inherited).
    pub n_fields: u16,
}

/// A complete program: classes, methods and the entry point.
///
/// Constructed through [`crate::builder::ProgramBuilder`]; the collection
/// accessors are stable indices handed out at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    classes: Vec<Class>,
    methods: Vec<Method>,
    entry: MethodId,
}

impl Program {
    /// Assembles a program from parts. Prefer
    /// [`crate::builder::ProgramBuilder`], which verifies the result.
    pub fn from_parts(classes: Vec<Class>, methods: Vec<Method>, entry: MethodId) -> Program {
        Program {
            classes,
            methods,
            entry,
        }
    }

    /// The entry-point method (`main`).
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// The method with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// The class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// All methods with their ids.
    pub fn methods(&self) -> impl Iterator<Item = (MethodId, &Method)> {
        self.methods
            .iter()
            .enumerate()
            .map(|(i, m)| (MethodId(i as u32), m))
    }

    /// All classes with their ids.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &Class)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total bytecode instructions over all methods (the "LoC" analog the
    /// workload characteristics table reports).
    pub fn code_size(&self) -> usize {
        self.methods.iter().map(|m| m.code.len()).sum()
    }

    /// `true` if `sub` equals `sup` or transitively extends it.
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).super_class;
        }
        false
    }

    /// Resolves a virtual call on a receiver of dynamic class
    /// `receiver_class` through vtable `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range for the receiver's vtable, which
    /// the verifier rules out for well-formed programs.
    pub fn resolve_virtual(&self, receiver_class: ClassId, slot: u16) -> MethodId {
        self.class(receiver_class).vtable[slot as usize]
    }

    /// All methods that could be the target of a virtual call through
    /// `slot` declared in `declared_in`: the slot's implementation in that
    /// class and in every transitive subclass.
    ///
    /// This is the class-hierarchy-analysis answer the ICFG builder uses;
    /// like the paper's statically-built ICFG it can include targets never
    /// taken at run time.
    pub fn virtual_targets(&self, declared_in: ClassId, slot: u16) -> Vec<MethodId> {
        let mut out = Vec::new();
        for (cid, class) in self.classes() {
            if self.is_subclass_of(cid, declared_in) {
                if let Some(&m) = class.vtable.get(slot as usize) {
                    if !out.contains(&m) {
                        out.push(m);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::insn::Instruction;

    fn tiny_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("Base", None, 1);
        let mut m = pb.method(base, "run", 1, true);
        m.emit(Instruction::Iconst(1));
        m.emit(Instruction::Ireturn);
        let run_base = m.finish();
        let slot = pb.add_virtual(base, run_base);
        // Created after the slot so it inherits Base's vtable entry.
        let derived = pb.add_class("Derived", Some(base), 1);
        let mut m = pb.method(derived, "run", 1, true);
        m.emit(Instruction::Iconst(2));
        m.emit(Instruction::Ireturn);
        let run_derived = m.finish();
        pb.override_virtual(derived, slot, run_derived);
        let mut main = pb.method(base, "main", 0, false);
        main.emit(Instruction::New(derived));
        main.emit(Instruction::InvokeVirtual {
            declared_in: base,
            slot,
        });
        main.emit(Instruction::Pop);
        main.emit(Instruction::Return);
        let main = main.finish();
        pb.finish_with_entry(main).expect("verifies")
    }

    #[test]
    fn subclass_relation() {
        let p = tiny_program();
        let base = ClassId(0);
        let derived = ClassId(1);
        assert!(p.is_subclass_of(derived, base));
        assert!(p.is_subclass_of(base, base));
        assert!(!p.is_subclass_of(base, derived));
    }

    #[test]
    fn virtual_resolution_uses_dynamic_class() {
        let p = tiny_program();
        let base = ClassId(0);
        let derived = ClassId(1);
        let base_impl = p.resolve_virtual(base, 0);
        let derived_impl = p.resolve_virtual(derived, 0);
        assert_ne!(base_impl, derived_impl);
        assert_eq!(p.method(base_impl).name, "run");
        assert_eq!(p.method(derived_impl).name, "run");
        assert_eq!(p.method(derived_impl).class, derived);
    }

    #[test]
    fn virtual_targets_is_cha() {
        let p = tiny_program();
        let targets = p.virtual_targets(ClassId(0), 0);
        assert_eq!(targets.len(), 2, "base and derived implementations");
    }

    #[test]
    fn handler_covers_half_open() {
        let h = ExceptionHandler {
            start: Bci(2),
            end: Bci(5),
            handler: Bci(9),
            catch_class: None,
        };
        assert!(!h.covers(Bci(1)));
        assert!(h.covers(Bci(2)));
        assert!(h.covers(Bci(4)));
        assert!(!h.covers(Bci(5)));
    }

    #[test]
    fn code_size_sums_methods() {
        let p = tiny_program();
        assert_eq!(p.code_size(), 2 + 2 + 4);
        assert_eq!(p.method_count(), 3);
        assert_eq!(p.class_count(), 2);
    }

    #[test]
    fn qualified_names() {
        let p = tiny_program();
        let entry = p.entry();
        assert_eq!(p.method(entry).qualified_name(&p), "Base.main");
    }
}
