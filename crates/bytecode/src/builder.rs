//! Label-based assembler for building [`Program`]s.
//!
//! [`ProgramBuilder`] owns the growing class and method tables;
//! [`MethodBuilder`] assembles one method with forward-referencing
//! [`Label`]s that are patched when the method is finished.

use crate::insn::{CmpKind, Instruction};
use crate::program::{Bci, Class, ClassId, ExceptionHandler, Method, MethodId, Program};
use crate::verify::{verify_program, VerifyError};

/// A forward-referencing branch target inside a [`MethodBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incrementally constructs a [`Program`].
///
/// Method ids are handed out eagerly by [`ProgramBuilder::method`] so that
/// mutually recursive methods can reference each other before either is
/// finished.
///
/// # Examples
///
/// ```
/// use jportal_bytecode::builder::ProgramBuilder;
/// use jportal_bytecode::Instruction;
///
/// let mut pb = ProgramBuilder::new();
/// let c = pb.add_class("Main", None, 0);
/// let mut m = pb.method(c, "main", 0, false);
/// m.emit(Instruction::Return);
/// let main = m.finish();
/// let program = pb.finish_with_entry(main)?;
/// assert_eq!(program.entry(), main);
/// # Ok::<(), jportal_bytecode::VerifyError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    methods: Vec<Option<Method>>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Adds a class. A subclass inherits its superclass's vtable and field
    /// count; `extra_fields` is added on top of the inherited fields.
    pub fn add_class(
        &mut self,
        name: impl Into<String>,
        super_class: Option<ClassId>,
        extra_fields: u16,
    ) -> ClassId {
        let (vtable, inherited_fields) = match super_class {
            Some(s) => {
                let sup = &self.classes[s.index()];
                (sup.vtable.clone(), sup.n_fields)
            }
            None => (Vec::new(), 0),
        };
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            name: name.into(),
            super_class,
            vtable,
            n_fields: inherited_fields + extra_fields,
        });
        id
    }

    /// Starts a method and reserves its [`MethodId`].
    pub fn method(
        &mut self,
        class: ClassId,
        name: impl Into<String>,
        n_args: u16,
        returns_value: bool,
    ) -> MethodBuilder<'_> {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(None);
        MethodBuilder {
            program: self,
            id,
            method: Method {
                name: name.into(),
                class,
                n_args,
                max_locals: n_args,
                returns_value,
                code: Vec::new(),
                handlers: Vec::new(),
            },
            labels: Vec::new(),
            pending: Vec::new(),
            switch_arms: Vec::new(),
            pending_handlers: Vec::new(),
        }
    }

    /// Appends a new vtable slot to `class` implemented by `method` and
    /// returns the slot index. Subclasses created *after* this call inherit
    /// the slot.
    pub fn add_virtual(&mut self, class: ClassId, method: MethodId) -> u16 {
        let vt = &mut self.classes[class.index()].vtable;
        vt.push(method);
        (vt.len() - 1) as u16
    }

    /// Overrides vtable `slot` of `class` (typically a subclass) with
    /// `method`.
    ///
    /// # Panics
    ///
    /// Panics if the slot does not exist in the class's vtable.
    pub fn override_virtual(&mut self, class: ClassId, slot: u16, method: MethodId) {
        self.classes[class.index()].vtable[slot as usize] = method;
    }

    /// Finishes the program with `entry` as the entry point, verifying it.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found, including unfinished
    /// methods (a method begun with [`ProgramBuilder::method`] whose
    /// builder was dropped without [`MethodBuilder::finish`]).
    pub fn finish_with_entry(self, entry: MethodId) -> Result<Program, VerifyError> {
        let mut methods = Vec::with_capacity(self.methods.len());
        for (i, m) in self.methods.into_iter().enumerate() {
            match m {
                Some(m) => methods.push(m),
                None => return Err(VerifyError::UnfinishedMethod(MethodId(i as u32))),
            }
        }
        let program = Program::from_parts(self.classes, methods, entry);
        verify_program(&program)?;
        Ok(program)
    }
}

/// Assembles the body of one method. Created by [`ProgramBuilder::method`].
#[derive(Debug)]
pub struct MethodBuilder<'p> {
    program: &'p mut ProgramBuilder,
    id: MethodId,
    method: Method,
    /// Resolved positions, indexed by label id; `u32::MAX` = unbound.
    labels: Vec<u32>,
    /// `(code index, label)` pairs to patch at finish.
    pending: Vec<(usize, Label)>,
    /// Switch patches: `(code index, arm index or usize::MAX for default, label)`.
    switch_arms: Vec<(usize, usize, Label)>,
    /// Handlers awaiting label resolution.
    pending_handlers: Vec<(Bci, Bci, Label, Option<ClassId>)>,
}

impl<'p> MethodBuilder<'p> {
    /// The id this method will have in the finished program.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// Current code position (the bci of the next emitted instruction).
    pub fn here(&self) -> Bci {
        Bci(self.method.code.len() as u32)
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(u32::MAX);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert_eq!(self.labels[label.0], u32::MAX, "label bound twice");
        self.labels[label.0] = self.method.code.len() as u32;
    }

    /// Appends an instruction verbatim. Branch targets inside `insn` must
    /// already be resolved [`Bci`]s; use the label-taking helpers for
    /// forward references.
    pub fn emit(&mut self, insn: Instruction) -> Bci {
        let at = self.here();
        self.track_locals(&insn);
        self.method.code.push(insn);
        at
    }

    fn track_locals(&mut self, insn: &Instruction) {
        let slot = match insn {
            Instruction::Iload(s)
            | Instruction::Istore(s)
            | Instruction::Aload(s)
            | Instruction::Astore(s)
            | Instruction::Iinc(s, _) => Some(*s),
            _ => None,
        };
        if let Some(s) = slot {
            self.method.max_locals = self.method.max_locals.max(s + 1);
        }
    }

    /// Emits `goto label`.
    pub fn jump(&mut self, label: Label) -> Bci {
        let at = self.emit(Instruction::Goto(Bci(u32::MAX)));
        self.pending.push((at.index(), label));
        at
    }

    /// Emits `if<cmp> label` (compare popped value against zero).
    pub fn branch_if(&mut self, cmp: CmpKind, label: Label) -> Bci {
        let at = self.emit(Instruction::If(cmp, Bci(u32::MAX)));
        self.pending.push((at.index(), label));
        at
    }

    /// Emits `if_icmp<cmp> label` (compare two popped values).
    pub fn branch_if_icmp(&mut self, cmp: CmpKind, label: Label) -> Bci {
        let at = self.emit(Instruction::IfICmp(cmp, Bci(u32::MAX)));
        self.pending.push((at.index(), label));
        at
    }

    /// Emits `ifnull label`.
    pub fn branch_if_null(&mut self, label: Label) -> Bci {
        let at = self.emit(Instruction::IfNull(Bci(u32::MAX)));
        self.pending.push((at.index(), label));
        at
    }

    /// Emits a `tableswitch` over labels.
    pub fn table_switch(&mut self, low: i64, targets: &[Label], default: Label) -> Bci {
        let at = self.emit(Instruction::TableSwitch {
            low,
            targets: vec![Bci(u32::MAX); targets.len()],
            default: Bci(u32::MAX),
        });
        for (i, &l) in targets.iter().enumerate() {
            // switch arm i is patched via a synthetic pending entry encoding
            // (index, arm) — we store arms as extra pendings with offset
            // encoding below.
            self.pending_switch(at.index(), i, l);
        }
        self.pending_switch(at.index(), usize::MAX, default);
        at
    }

    /// Emits a `lookupswitch` over `(key, label)` pairs (sorted by key).
    pub fn lookup_switch(&mut self, pairs: &[(i64, Label)], default: Label) -> Bci {
        let at = self.emit(Instruction::LookupSwitch {
            pairs: pairs.iter().map(|&(k, _)| (k, Bci(u32::MAX))).collect(),
            default: Bci(u32::MAX),
        });
        for (i, &(_, l)) in pairs.iter().enumerate() {
            self.pending_switch(at.index(), i, l);
        }
        self.pending_switch(at.index(), usize::MAX, default);
        at
    }

    fn pending_switch(&mut self, at: usize, arm: usize, label: Label) {
        // Encode switch arms in the pending list as (at, label) plus a side
        // table keyed by occurrence order.
        self.switch_arms.push((at, arm, label));
    }

    /// Adds an exception handler covering `start..end` (half-open bcis)
    /// that jumps to `handler` for exceptions of `catch_class`
    /// (`None` = catch-all).
    pub fn add_handler(
        &mut self,
        start: Bci,
        end: Bci,
        handler: Label,
        catch_class: Option<ClassId>,
    ) {
        self.pending_handlers
            .push((start, end, handler, catch_class));
    }

    /// Raises the method's local-slot count to at least `n`.
    pub fn reserve_locals(&mut self, n: u16) {
        self.method.max_locals = self.method.max_locals.max(n);
    }

    /// Patches all labels and installs the method into the program builder.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    pub fn finish(mut self) -> MethodId {
        let resolve = |labels: &[u32], l: Label| -> Bci {
            let pos = labels[l.0];
            assert_ne!(pos, u32::MAX, "label referenced but never bound");
            Bci(pos)
        };
        for (at, label) in std::mem::take(&mut self.pending) {
            let target = resolve(&self.labels, label);
            match &mut self.method.code[at] {
                Instruction::Goto(t)
                | Instruction::If(_, t)
                | Instruction::IfICmp(_, t)
                | Instruction::IfNull(t) => *t = target,
                other => unreachable!("pending patch on non-branch {other:?}"),
            }
        }
        for (at, arm, label) in std::mem::take(&mut self.switch_arms) {
            let target = resolve(&self.labels, label);
            match &mut self.method.code[at] {
                Instruction::TableSwitch {
                    targets, default, ..
                } => {
                    if arm == usize::MAX {
                        *default = target;
                    } else {
                        targets[arm] = target;
                    }
                }
                Instruction::LookupSwitch { pairs, default } => {
                    if arm == usize::MAX {
                        *default = target;
                    } else {
                        pairs[arm].1 = target;
                    }
                }
                other => unreachable!("switch patch on non-switch {other:?}"),
            }
        }
        for (start, end, handler, catch_class) in std::mem::take(&mut self.pending_handlers) {
            let handler = resolve(&self.labels, handler);
            self.method.handlers.push(ExceptionHandler {
                start,
                end,
                handler,
                catch_class,
            });
        }
        self.program.methods[self.id.index()] = Some(std::mem::replace(
            &mut self.method,
            Method {
                name: String::new(),
                class: ClassId(0),
                n_args: 0,
                max_locals: 0,
                returns_value: false,
                code: Vec::new(),
                handlers: Vec::new(),
            },
        ));
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Instruction as I;

    /// Adds a no-arg `main` entry so programs whose method under test takes
    /// arguments still verify.
    fn finish_with_main(mut pb: ProgramBuilder, _under_test: MethodId) -> Program {
        let c = pb.add_class("EntryHolder", None, 0);
        let mut main = pb.method(c, "main", 0, false);
        main.emit(I::Return);
        let main = main.finish();
        pb.finish_with_entry(main).unwrap()
    }

    #[test]
    fn forward_and_backward_labels() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "loop", 1, true);
        let head = m.label();
        let exit = m.label();
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, exit);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(exit);
        m.emit(I::Iload(0));
        m.emit(I::Ireturn);
        let id = m.finish();
        let p = finish_with_main(pb, id);
        let code = &p.method(id).code;
        assert_eq!(code[1], I::If(CmpKind::Le, Bci(4)));
        assert_eq!(code[3], I::Goto(Bci(0)));
    }

    #[test]
    fn switch_labels_patch() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "sw", 1, true);
        let a = m.label();
        let b = m.label();
        let d = m.label();
        m.emit(I::Iload(0));
        m.table_switch(0, &[a, b], d);
        m.bind(a);
        m.emit(I::Iconst(10));
        m.emit(I::Ireturn);
        m.bind(b);
        m.emit(I::Iconst(20));
        m.emit(I::Ireturn);
        m.bind(d);
        m.emit(I::Iconst(-1));
        m.emit(I::Ireturn);
        let id = m.finish();
        let p = finish_with_main(pb, id);
        match &p.method(id).code[1] {
            I::TableSwitch {
                targets, default, ..
            } => {
                assert_eq!(targets, &vec![Bci(2), Bci(4)]);
                assert_eq!(*default, Bci(6));
            }
            other => panic!("expected tableswitch, got {other:?}"),
        }
    }

    #[test]
    fn max_locals_tracks_usage() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "f", 1, false);
        m.emit(I::Iconst(0));
        m.emit(I::Istore(7));
        m.emit(I::Return);
        let id = m.finish();
        let p = finish_with_main(pb, id);
        assert_eq!(p.method(id).max_locals, 8);
    }

    #[test]
    fn unfinished_method_is_reported() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::Return);
        let main = m.finish();
        let _abandoned = pb.method(c, "ghost", 0, false);
        drop(_abandoned);
        let err = pb.finish_with_entry(main).unwrap_err();
        assert!(matches!(err, VerifyError::UnfinishedMethod(_)));
    }

    #[test]
    fn exception_handler_labels() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let ex = pb.add_class("Ex", None, 0);
        let mut m = pb.method(c, "t", 0, true);
        let handler = m.label();
        let start = m.here();
        m.emit(I::Iconst(1));
        m.emit(I::Iconst(0));
        m.emit(I::Idiv);
        let end = m.here();
        m.emit(I::Ireturn);
        m.add_handler(start, end, handler, Some(ex));
        m.bind(handler);
        m.emit(I::Pop);
        m.emit(I::Iconst(-1));
        m.emit(I::Ireturn);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let h = &p.method(id).handlers[0];
        assert_eq!(h.handler, Bci(4));
        assert_eq!(h.catch_class, Some(ex));
    }
}
