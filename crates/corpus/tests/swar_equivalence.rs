//! Pins the SWAR suffix kernel byte-identical to the scalar oracle.
//!
//! `suffix_scalar` is the seed `tier_suffix` Concrete-tier scan kept
//! verbatim; recovery ranks every candidate — in-run and corpus — with
//! `suffix_swar`, so any divergence would silently change which CS wins
//! a hole. The properties sweep stream contents (ops, branch dirs
//! including `Unknown`), both end cursors across word boundaries, and
//! the cap, because the kernel's edge cases live exactly there:
//! misaligned eight-lane loads, dir lanes straddling words, scalar
//! tails shorter than one lane.

use proptest::prelude::*;

use jportal_bytecode::OpKind;
use jportal_cfg::Sym;
use jportal_corpus::pack::{dir_from_code, suffix_scalar, suffix_swar, PackedSyms};

/// Symbol streams with a deliberately tiny op alphabet (long accidental
/// suffixes) and all three dir codes.
fn arb_stream() -> impl Strategy<Value = Vec<Sym>> {
    let ops = prop::sample::select(vec![
        OpKind::Iadd,
        OpKind::Ifeq,
        OpKind::Goto,
        OpKind::InvokeVirtual,
    ]);
    prop::collection::vec(
        (ops, 0u8..3).prop_map(|(op, d)| Sym {
            op,
            dir: dir_from_code(d),
        }),
        1..140,
    )
}

/// Streams sharing a long common tail — forces the SWAR main loop to
/// run many full-lane iterations before the first mismatch.
fn arb_shared_tail() -> impl Strategy<Value = (Vec<Sym>, Vec<Sym>)> {
    (arb_stream(), arb_stream(), arb_stream()).prop_map(|(a, b, tail)| {
        let mut x = a;
        let mut y = b;
        x.extend(tail.iter().copied());
        y.extend(tail);
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary streams, arbitrary cursors, arbitrary cap: SWAR equals
    /// scalar exactly.
    #[test]
    fn swar_equals_scalar(
        a in arb_stream(),
        b in arb_stream(),
        ae_frac in 0usize..1000,
        be_frac in 0usize..1000,
        cap in prop::sample::select(vec![0usize, 1, 3, 7, 8, 9, 16, 64, usize::MAX]),
    ) {
        let ae = 1 + ae_frac * (a.len() - 1) / 999;
        let be = 1 + be_frac * (b.len() - 1) / 999;
        let pa = PackedSyms::from_syms(&a);
        let pb = PackedSyms::from_syms(&b);
        let swar = suffix_swar(&pa.ops, &pa.dirs, ae, &pb.ops, &pb.dirs, be, cap);
        let scalar = suffix_scalar(&pa.ops, &pa.dirs, ae, &pb.ops, &pb.dirs, be, cap);
        prop_assert_eq!(swar, scalar, "ae={} be={} cap={}", ae, be, cap);
    }

    /// Long shared tails (the case the kernel is for): still exact, and
    /// at least as long as the planted tail when uncapped.
    #[test]
    fn swar_equals_scalar_on_shared_tails(ab in arb_shared_tail()) {
        let (a, b) = ab;
        let pa = PackedSyms::from_syms(&a);
        let pb = PackedSyms::from_syms(&b);
        let swar = suffix_swar(&pa.ops, &pa.dirs, a.len(), &pb.ops, &pb.dirs, b.len(), usize::MAX);
        let scalar =
            suffix_scalar(&pa.ops, &pa.dirs, a.len(), &pb.ops, &pb.dirs, b.len(), usize::MAX);
        prop_assert_eq!(swar, scalar);
    }

    /// The packed form round-trips every symbol, so scoring the packed
    /// arenas is scoring the original streams.
    #[test]
    fn pack_round_trips(a in arb_stream()) {
        let p = PackedSyms::from_syms(&a);
        for (i, s) in a.iter().enumerate() {
            let (op, d) = p.get(i);
            prop_assert_eq!(op, s.op as u8);
            prop_assert_eq!(dir_from_code(d), s.dir);
        }
    }
}
