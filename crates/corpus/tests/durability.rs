//! Corpus durability: the on-disk format round-trips byte-identically,
//! and every malformed-input class is rejected with the right typed
//! [`CorpusError`] — never a panic. Corpus files outlive the build that
//! wrote them, so stale versions, torn writes and bit rot are expected
//! inputs, not exceptional ones.

use jportal_bytecode::OpKind;
use jportal_cfg::Sym;
use jportal_corpus::{pack_loc, Corpus, CorpusBuilder, CorpusError};

/// A small but representative corpus: several segments, branch dirs,
/// missing locations, seams, and one dedup collision.
fn sample_corpus() -> Corpus {
    let mut b = CorpusBuilder::new(3);
    let all = OpKind::ALL;
    for s in 0..20u32 {
        let syms: Vec<Sym> = (0..(6 + s % 9) as usize)
            .map(|i| {
                let op = all[(s as usize * 13 + i * 7) % all.len()];
                match i % 3 {
                    0 => Sym::plain(op),
                    1 => Sym::branch(op, (i + s as usize).is_multiple_of(2)),
                    _ => Sym {
                        op,
                        dir: jportal_cfg::BranchDir::Unknown,
                    },
                }
            })
            .collect();
        let locs: Vec<u64> = (0..syms.len() as u32)
            .map(|i| {
                if i % 5 == 4 {
                    pack_loc(None, None)
                } else {
                    pack_loc(Some(s), Some(i))
                }
            })
            .collect();
        let breaks: Vec<u32> = if s % 4 == 0 { vec![2, 5] } else { vec![] };
        b.insert(&syms, &locs, &breaks);
    }
    b.finish()
}

#[test]
fn round_trip_is_byte_identical() {
    let c = sample_corpus();
    let bytes = c.to_bytes();
    let loaded = Corpus::from_bytes(&bytes).expect("valid corpus loads");
    assert_eq!(
        loaded.to_bytes(),
        bytes,
        "serialize ∘ load ∘ serialize is identity"
    );
    // And the loaded corpus answers queries identically.
    assert_eq!(loaded.segment_count(), c.segment_count());
    assert_eq!(loaded.stats(), c.stats());
    assert_eq!(loaded.busiest_anchors(10), c.busiest_anchors(10));
    for seg in 0..c.segment_count() as u32 {
        let (a, b) = (c.segment(seg), loaded.segment(seg));
        assert_eq!(a.len, b.len);
        for i in 0..a.len {
            assert_eq!(a.sym(i), b.sym(i));
            assert_eq!(a.loc(i), b.loc(i));
        }
        assert_eq!(a.breaks, b.breaks);
    }
}

#[test]
fn save_load_round_trips_via_disk() {
    let c = sample_corpus();
    let dir = std::env::temp_dir().join(format!("jportal-corpus-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.jpcorpus");
    c.save(&path).expect("save");
    let loaded = Corpus::load(&path).expect("load");
    assert_eq!(loaded.to_bytes(), c.to_bytes());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_every_boundary_is_rejected_without_panic() {
    let bytes = sample_corpus().to_bytes();
    // Whole-word truncations: checksum now covers different bytes, so
    // most fail the checksum; the very short ones fail Truncated. All
    // must return an error, none may panic.
    for cut in (0..bytes.len()).step_by(8) {
        let err = Corpus::from_bytes(&bytes[..cut]).expect_err("truncated input must not load");
        assert!(
            matches!(
                err,
                CorpusError::Truncated
                    | CorpusError::ChecksumMismatch { .. }
                    | CorpusError::BadMagic
            ),
            "cut={cut}: unexpected error {err}"
        );
    }
    // Non-word-aligned truncation.
    assert!(matches!(
        Corpus::from_bytes(&bytes[..bytes.len() - 3]),
        Err(CorpusError::Truncated)
    ));
}

#[test]
fn corrupted_byte_anywhere_fails_the_checksum() {
    let bytes = sample_corpus().to_bytes();
    // Flip one bit at a spread of offsets past the magic (corrupting
    // the magic itself reports BadMagic, tested separately).
    for at in (8..bytes.len() - 8).step_by(97) {
        let mut bad = bytes.clone();
        bad[at] ^= 0x40;
        let err = Corpus::from_bytes(&bad).expect_err("corrupted input must not load");
        assert!(
            matches!(
                err,
                CorpusError::ChecksumMismatch { .. } | CorpusError::VersionMismatch { .. }
            ),
            "at={at}: unexpected error {err}"
        );
    }
    // Corrupting the trailer itself also lands on ChecksumMismatch.
    let mut bad = bytes.clone();
    let at = bytes.len() - 1;
    bad[at] ^= 1;
    assert!(matches!(
        Corpus::from_bytes(&bad),
        Err(CorpusError::ChecksumMismatch { .. })
    ));
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_corpus().to_bytes();
    bytes[0] ^= 0xff;
    assert!(matches!(
        Corpus::from_bytes(&bytes),
        Err(CorpusError::BadMagic)
    ));
    assert!(matches!(
        Corpus::from_bytes(b"not a corpus md\n"),
        Err(CorpusError::BadMagic)
    ));
}

#[test]
fn version_mismatch_is_refused_with_both_versions() {
    let mut bytes = sample_corpus().to_bytes();
    // Bump the version field (low half of word 1) and re-seal the
    // checksum so only the version check can object.
    bytes[8] = bytes[8].wrapping_add(1);
    let sum = jportal_corpus::format::fnv1a(&bytes[..bytes.len() - 8]);
    let n = bytes.len();
    bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    match Corpus::from_bytes(&bytes) {
        Err(CorpusError::VersionMismatch { found, expected }) => {
            assert_eq!(found, jportal_corpus::FORMAT_VERSION + 1);
            assert_eq!(expected, jportal_corpus::FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn io_error_is_typed_not_panicked() {
    let missing = std::path::Path::new("/nonexistent/jportal/corpus.jpcorpus");
    assert!(matches!(Corpus::load(missing), Err(CorpusError::Io(_))));
}

#[test]
fn absorb_then_save_accumulates_across_runs() {
    // Run 1 saves; run 2 loads, absorbs, adds its own segments, saves.
    let run1 = sample_corpus();
    let mut b = CorpusBuilder::new(3);
    b.absorb(&run1);
    assert_eq!(b.deduped(), 0);
    let syms: Vec<Sym> = [OpKind::Ixor, OpKind::Ishr, OpKind::Ishl, OpKind::Irem]
        .iter()
        .map(|&o| Sym::plain(o))
        .collect();
    let locs: Vec<u64> = (0..4).map(|i| pack_loc(Some(900), Some(i))).collect();
    assert!(b.insert(&syms, &locs, &[]));
    let run2 = b.finish();
    assert_eq!(run2.segment_count(), run1.segment_count() + 1);
    // Absorbing again is a no-op thanks to dedup.
    let mut b2 = CorpusBuilder::new(3);
    b2.absorb(&run2);
    b2.absorb(&run1);
    assert_eq!(b2.segment_count(), run2.segment_count());
    assert_eq!(b2.deduped() as usize, run1.segment_count());
}
