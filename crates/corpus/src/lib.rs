//! Persistent complete-segment corpus (ROADMAP item 3).
//!
//! §5 recovery ranks candidate complete segments (CSes) against the
//! incomplete segment ending at a hole. In-run, the candidate pool is
//! whatever this analysis decoded; this crate persists complete
//! segments **across runs and tenants** so later analyses start with a
//! corpus of known-good continuations — fill rate improves as the
//! corpus grows while per-hole lookup cost stays flat:
//!
//! * **Storage** — symbol streams live in flat `u64`-chunked arenas
//!   ([`pack::PackedSyms`] layout: op bytes eight per word, dir codes
//!   thirty-two per word), with per-symbol locations and per-segment
//!   projection seams in parallel arenas and a fixed-size header per
//!   segment. The on-disk form is the in-memory form plus a versioned
//!   magic and a checksum; loading is a plain `Read` into `Arc` buffers
//!   (no mmap, keeping the workspace's no-external-deps posture).
//! * **Indexing** — a 16-way sharded anchor index (same shape as the
//!   matcher's DFA transition cache) keyed by the u64-packed anchor
//!   opcode window, built incrementally on insert and serialized next
//!   to the arenas, so candidate lookup is O(candidates-for-anchor)
//!   regardless of corpus size.
//! * **Scoring** — recovery ranks corpus candidates with the SWAR
//!   common-suffix kernel ([`pack::suffix_swar`]), eight symbols per
//!   step.
//!
//! Writers go through [`CorpusBuilder`] (dedup-aware inserts, checked
//! by content hash plus full compare); readers hold an immutable
//! [`Corpus`] behind an `Arc` and share it freely across worker threads
//! — the locking story is "none": a corpus is frozen at build time, and
//! cross-run accumulation is load → absorb into a builder → save.

pub mod format;
pub mod pack;

pub use format::CorpusError;

use jportal_cfg::{FxHashMap, FxHasher, Sym};
use pack::{dir_from_code, op_at, PackedSyms};
use std::hash::Hasher;
use std::sync::Arc;

/// Shard count of the anchor index (mirrors the DFA cache's striping).
pub const ANCHOR_SHARDS: usize = 16;

/// On-disk format version this build writes and accepts.
pub const FORMAT_VERSION: u32 = 1;

/// A location payload: `method << 32 | bci`, with `u32::MAX` in either
/// half meaning "unknown" (interpreted-mode events carry no location).
pub const LOC_NONE: u32 = u32::MAX;

/// Packs an optional `(method, bci)` pair into a location word.
#[inline]
pub fn pack_loc(method: Option<u32>, bci: Option<u32>) -> u64 {
    let m = method.unwrap_or(LOC_NONE) as u64;
    let b = bci.unwrap_or(LOC_NONE) as u64;
    (m << 32) | b
}

/// Inverse of [`pack_loc`].
#[inline]
pub fn unpack_loc(loc: u64) -> (Option<u32>, Option<u32>) {
    let m = (loc >> 32) as u32;
    let b = loc as u32;
    ((m != LOC_NONE).then_some(m), (b != LOC_NONE).then_some(b))
}

/// Fixed-size per-segment header: where the segment's data lives in
/// each arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Word offset of the op bytes in the ops arena.
    pub ops_off: u32,
    /// Word offset of the dir codes in the dirs arena.
    pub dirs_off: u32,
    /// Entry offset of the locations in the locs arena.
    pub locs_off: u32,
    /// Entry offset of the projection seams in the breaks arena.
    pub breaks_off: u32,
    /// Symbol count.
    pub len: u32,
    /// Seam count.
    pub breaks_len: u32,
    /// Content hash (dedup identity; see [`CorpusBuilder::insert`]).
    pub content_hash: u64,
}

/// One anchor-index candidate: the anchor window's last symbol sits at
/// `end` (inclusive) in segment `seg`, with at least one symbol after
/// it.
pub type CorpusCandidate = (u32, u32);

/// The sharded anchor index: `shard = fx(key) % 16`, each shard an
/// ordinary map from packed anchor key to its candidate positions.
#[derive(Debug, Clone, Default)]
struct AnchorIndex {
    shards: Vec<FxHashMap<u64, Vec<CorpusCandidate>>>,
}

/// Fx hash of a bare u64 key (shard selector; deterministic across
/// runs, same property the DFA cache relies on).
#[inline]
fn key_shard(key: u64) -> usize {
    let mut h = FxHasher::default();
    h.write_u64(key);
    (h.finish() as usize) % ANCHOR_SHARDS
}

/// Packs an anchor window's op bytes into the index key: `(op + 1)`
/// bytes folded big-endian-ish for windows of up to eight ops (so a
/// leading opcode 0 is distinguishable from absence), an Fx hash of the
/// op bytes for longer windows. Hash keys can collide — lookups always
/// verify the candidate's window against the query ops, so a collision
/// costs a wasted compare, never a wrong candidate.
pub fn anchor_key_ops(ops: impl ExactSizeIterator<Item = u8>) -> u64 {
    if ops.len() <= 8 {
        let mut packed = 0u64;
        for op in ops {
            packed = (packed << 8) | (op as u64 + 1);
        }
        packed
    } else {
        let mut h = FxHasher::default();
        for op in ops {
            h.write_u8(op);
        }
        h.finish()
    }
}

/// [`anchor_key_ops`] over a [`Sym`] slice.
pub fn anchor_key(anchor: &[Sym]) -> u64 {
    anchor_key_ops(anchor.iter().map(|s| s.op as u8))
}

impl AnchorIndex {
    fn new() -> AnchorIndex {
        AnchorIndex {
            shards: (0..ANCHOR_SHARDS).map(|_| FxHashMap::default()).collect(),
        }
    }

    fn insert(&mut self, key: u64, cand: CorpusCandidate) {
        self.shards[key_shard(key)]
            .entry(key)
            .or_default()
            .push(cand);
    }

    fn get(&self, key: u64) -> Option<&[CorpusCandidate]> {
        self.shards[key_shard(key)].get(&key).map(Vec::as_slice)
    }
}

/// Immutable view of one corpus segment, borrowing the arenas.
#[derive(Debug, Clone, Copy)]
pub struct SegView<'a> {
    /// Packed op words (position 0 of the segment = position 0 here).
    pub ops: &'a [u64],
    /// Packed dir words.
    pub dirs: &'a [u64],
    /// Location words, one per symbol.
    pub locs: &'a [u64],
    /// Sorted projection-seam positions.
    pub breaks: &'a [u32],
    /// Symbol count.
    pub len: usize,
}

impl SegView<'_> {
    /// The symbol at position `i`.
    pub fn sym(&self, i: usize) -> Sym {
        Sym {
            op: jportal_bytecode::OpKind::ALL[op_at(self.ops, i) as usize],
            dir: dir_from_code(pack::dir_at(self.dirs, i)),
        }
    }

    /// The `(method, bci)` location at position `i`.
    pub fn loc(&self, i: usize) -> (Option<u32>, Option<u32>) {
        unpack_loc(self.locs[i])
    }
}

/// Aggregate corpus statistics (for `jportal-inspect corpus`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Segments stored.
    pub segments: usize,
    /// Total symbols stored.
    pub syms: usize,
    /// Bytes across all arenas (ops + dirs + locs + breaks), excluding
    /// headers and index.
    pub arena_bytes: usize,
    /// Anchor-index entries per shard (bucket candidate totals).
    pub shard_fill: Vec<usize>,
    /// Distinct anchor keys indexed.
    pub anchor_keys: usize,
}

/// The frozen, queryable corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    anchor_len: u32,
    segments: Vec<SegmentMeta>,
    ops: Arc<[u64]>,
    dirs: Arc<[u64]>,
    locs: Arc<[u64]>,
    breaks: Arc<[u32]>,
    index: AnchorIndex,
}

impl Corpus {
    /// An empty corpus indexed for anchors of length `anchor_len`.
    pub fn empty(anchor_len: usize) -> Corpus {
        CorpusBuilder::new(anchor_len).build()
    }

    /// The anchor length `x` the index was built for. Queries with a
    /// different `x` cannot use this corpus.
    pub fn anchor_len(&self) -> usize {
        self.anchor_len as usize
    }

    /// Number of segments stored.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Borrowed view of segment `seg`.
    pub fn segment(&self, seg: u32) -> SegView<'_> {
        let m = &self.segments[seg as usize];
        let ow = (m.len as usize).div_ceil(8);
        let dw = (m.len as usize).div_ceil(32);
        SegView {
            ops: &self.ops[m.ops_off as usize..m.ops_off as usize + ow],
            dirs: &self.dirs[m.dirs_off as usize..m.dirs_off as usize + dw],
            locs: &self.locs[m.locs_off as usize..m.locs_off as usize + m.len as usize],
            breaks: &self.breaks
                [m.breaks_off as usize..m.breaks_off as usize + m.breaks_len as usize],
            len: m.len as usize,
        }
    }

    /// Appends the verified candidates for `anchor` to `out` (cleared
    /// first). Candidates come straight from the sharded index —
    /// O(candidates-for-anchor), independent of corpus size — and each
    /// is verified against the query's op window, so hash-key
    /// collisions never surface. Returns nothing when `anchor`'s length
    /// differs from [`Corpus::anchor_len`].
    pub fn candidates_into(&self, anchor: &[Sym], out: &mut Vec<CorpusCandidate>) {
        out.clear();
        if anchor.len() != self.anchor_len as usize {
            return;
        }
        let Some(cands) = self.index.get(anchor_key(anchor)) else {
            return;
        };
        let x = anchor.len();
        'cand: for &(seg, end) in cands {
            let m = &self.segments[seg as usize];
            let ops = &self.ops[m.ops_off as usize..];
            for (k, a) in anchor.iter().enumerate() {
                if op_at(ops, end as usize + 1 - x + k) != a.op as u8 {
                    continue 'cand;
                }
            }
            out.push((seg, end));
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CorpusStats {
        CorpusStats {
            segments: self.segments.len(),
            syms: self.segments.iter().map(|m| m.len as usize).sum(),
            arena_bytes: self.ops.len() * 8
                + self.dirs.len() * 8
                + self.locs.len() * 8
                + self.breaks.len() * 4,
            shard_fill: self
                .index
                .shards
                .iter()
                .map(|s| s.values().map(Vec::len).sum())
                .collect(),
            anchor_keys: self.index.shards.iter().map(FxHashMap::len).sum(),
        }
    }

    /// The `k` busiest anchors: `(key, candidate count)`, most-loaded
    /// first, deterministic tie-break on the key.
    pub fn busiest_anchors(&self, k: usize) -> Vec<(u64, usize)> {
        let mut all: Vec<(u64, usize)> = self
            .index
            .shards
            .iter()
            .flat_map(|s| s.iter().map(|(&key, v)| (key, v.len())))
            .collect();
        all.sort_by_key(|&(key, n)| (std::cmp::Reverse(n), key));
        all.truncate(k);
        all
    }

    /// Human spelling of a packed anchor key (mnemonics joined with
    /// `·`; hash keys render as `#<hex>`).
    pub fn spell_key(&self, key: u64) -> String {
        use jportal_bytecode::OpKind;
        if self.anchor_len > 8 {
            return format!("#{key:016x}");
        }
        let mut ops = Vec::new();
        let mut k = key;
        while k != 0 {
            let b = (k & 0xff) as u8;
            if b == 0 || (b - 1) as usize >= OpKind::ALL.len() {
                return format!("#{key:016x}");
            }
            ops.push(OpKind::ALL[(b - 1) as usize]);
            k >>= 8;
        }
        ops.reverse();
        ops.iter()
            .map(|o| o.mnemonic())
            .collect::<Vec<_>>()
            .join("·")
    }
}

/// Content hash of one segment (dedup identity): Fx over length, op
/// words, dir words, locations and seams.
fn content_hash(packed: &PackedSyms, locs: &[u64], breaks: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(packed.len);
    for &w in &packed.ops {
        h.write_u64(w);
    }
    for &w in &packed.dirs {
        h.write_u64(w);
    }
    for &l in locs {
        h.write_u64(l);
    }
    for &b in breaks {
        h.write_u32(b);
    }
    h.finish()
}

/// Mutable corpus under construction: arenas grow append-only, the
/// anchor index is maintained incrementally on insert, and duplicate
/// segments (same symbols, locations and seams) are dropped.
#[derive(Debug)]
pub struct CorpusBuilder {
    anchor_len: u32,
    segments: Vec<SegmentMeta>,
    ops: Vec<u64>,
    dirs: Vec<u64>,
    locs: Vec<u64>,
    breaks: Vec<u32>,
    index: AnchorIndex,
    /// Content hash → segments with that hash (collision candidates).
    dedup: FxHashMap<u64, Vec<u32>>,
    inserted: u64,
    deduped: u64,
}

impl CorpusBuilder {
    /// An empty builder indexing anchors of length `anchor_len`.
    pub fn new(anchor_len: usize) -> CorpusBuilder {
        CorpusBuilder {
            anchor_len: anchor_len as u32,
            segments: Vec::new(),
            ops: Vec::new(),
            dirs: Vec::new(),
            locs: Vec::new(),
            breaks: Vec::new(),
            index: AnchorIndex::new(),
            dedup: FxHashMap::default(),
            inserted: 0,
            deduped: 0,
        }
    }

    /// Segments inserted (accepted) so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Segments dropped as exact duplicates.
    pub fn deduped(&self) -> u64 {
        self.deduped
    }

    /// Current segment count.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Inserts one complete segment: its symbols, one packed location
    /// word per symbol (see [`pack_loc`]) and its sorted projection
    /// seams. Returns `false` when an identical segment is already
    /// stored (dedup hit — hash match plus full content compare).
    /// Segments too short to ever produce a candidate (`len <
    /// anchor_len + 1`) are rejected the same way.
    pub fn insert(&mut self, syms: &[Sym], locs: &[u64], breaks: &[u32]) -> bool {
        assert_eq!(syms.len(), locs.len(), "one location word per symbol");
        let x = self.anchor_len as usize;
        if syms.len() < x + 1 {
            return false;
        }
        let packed = PackedSyms::from_syms(syms);
        let hash = content_hash(&packed, locs, breaks);
        if let Some(prior) = self.dedup.get(&hash) {
            for &seg in prior {
                if self.segment_equals(seg, &packed, locs, breaks) {
                    self.deduped += 1;
                    return false;
                }
            }
        }
        let seg = self.segments.len() as u32;
        let meta = SegmentMeta {
            ops_off: self.ops.len() as u32,
            dirs_off: self.dirs.len() as u32,
            locs_off: self.locs.len() as u32,
            breaks_off: self.breaks.len() as u32,
            len: syms.len() as u32,
            breaks_len: breaks.len() as u32,
            content_hash: hash,
        };
        self.ops.extend_from_slice(&packed.ops);
        self.dirs.extend_from_slice(&packed.dirs);
        self.locs.extend_from_slice(locs);
        self.breaks.extend_from_slice(breaks);
        self.segments.push(meta);
        self.dedup.entry(hash).or_default().push(seg);
        // Incremental index maintenance: every anchor window with at
        // least one following symbol becomes a candidate.
        for end in (x - 1)..syms.len() - 1 {
            let key = anchor_key(&syms[end + 1 - x..=end]);
            self.index.insert(key, (seg, end as u32));
        }
        self.inserted += 1;
        true
    }

    /// Full content compare of stored segment `seg` against a packed
    /// insert candidate (hash-collision fallback, keeps dedup exact).
    fn segment_equals(&self, seg: u32, packed: &PackedSyms, locs: &[u64], breaks: &[u32]) -> bool {
        let m = &self.segments[seg as usize];
        if m.len as usize != packed.len || m.breaks_len as usize != breaks.len() {
            return false;
        }
        let ow = packed.len.div_ceil(8);
        let dw = packed.len.div_ceil(32);
        self.ops[m.ops_off as usize..m.ops_off as usize + ow] == packed.ops[..]
            && self.dirs[m.dirs_off as usize..m.dirs_off as usize + dw] == packed.dirs[..]
            && self.locs[m.locs_off as usize..m.locs_off as usize + packed.len] == *locs
            && self.breaks[m.breaks_off as usize..m.breaks_off as usize + breaks.len()] == *breaks
    }

    /// Absorbs every segment of `other` (dedup-aware): the cross-run
    /// merge primitive — load yesterday's corpus, absorb it into a
    /// fresh builder, insert today's segments, save.
    pub fn absorb(&mut self, other: &Corpus) {
        let mut syms = Vec::new();
        for seg in 0..other.segment_count() as u32 {
            let v = other.segment(seg);
            syms.clear();
            syms.extend((0..v.len).map(|i| v.sym(i)));
            self.insert(&syms, v.locs, v.breaks);
        }
    }

    /// Freezes the current contents into an immutable [`Corpus`]
    /// without consuming the builder (arenas are copied into `Arc`
    /// buffers; the builder keeps growing).
    pub fn build(&self) -> Corpus {
        Corpus {
            anchor_len: self.anchor_len,
            segments: self.segments.clone(),
            ops: Arc::from(self.ops.as_slice()),
            dirs: Arc::from(self.dirs.as_slice()),
            locs: Arc::from(self.locs.as_slice()),
            breaks: Arc::from(self.breaks.as_slice()),
            index: self.index.clone(),
        }
    }

    /// Consuming variant of [`CorpusBuilder::build`].
    pub fn finish(self) -> Corpus {
        Corpus {
            anchor_len: self.anchor_len,
            segments: self.segments,
            ops: Arc::from(self.ops),
            dirs: Arc::from(self.dirs),
            locs: Arc::from(self.locs),
            breaks: Arc::from(self.breaks),
            index: self.index,
        }
    }
}

// format.rs needs field access for (de)serialization.

/// Borrowed view of every field the on-disk writer needs, in layout
/// order: anchor_len, segments, ops, dirs, locs, breaks, index shards.
pub(crate) type CorpusParts<'a> = (
    u32,
    &'a [SegmentMeta],
    &'a [u64],
    &'a [u64],
    &'a [u64],
    &'a [u32],
    &'a [FxHashMap<u64, Vec<CorpusCandidate>>],
);

impl Corpus {
    pub(crate) fn parts(&self) -> CorpusParts<'_> {
        (
            self.anchor_len,
            &self.segments,
            &self.ops,
            &self.dirs,
            &self.locs,
            &self.breaks,
            &self.index.shards,
        )
    }

    pub(crate) fn from_parts(
        anchor_len: u32,
        segments: Vec<SegmentMeta>,
        ops: Vec<u64>,
        dirs: Vec<u64>,
        locs: Vec<u64>,
        breaks: Vec<u32>,
        shards: Vec<FxHashMap<u64, Vec<CorpusCandidate>>>,
    ) -> Corpus {
        Corpus {
            anchor_len,
            segments,
            ops: Arc::from(ops),
            dirs: Arc::from(dirs),
            locs: Arc::from(locs),
            breaks: Arc::from(breaks),
            index: AnchorIndex { shards },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::OpKind;

    fn seg(ops: &[OpKind]) -> (Vec<Sym>, Vec<u64>, Vec<u32>) {
        let syms: Vec<Sym> = ops.iter().map(|&o| Sym::plain(o)).collect();
        let locs: Vec<u64> = (0..ops.len() as u32)
            .map(|i| pack_loc(Some(7), Some(i)))
            .collect();
        (syms, locs, vec![])
    }

    #[test]
    fn insert_index_lookup_round_trip() {
        use OpKind as O;
        let mut b = CorpusBuilder::new(3);
        let (syms, locs, breaks) = seg(&[O::Iadd, O::Isub, O::Imul, O::Dup, O::Pop, O::Swap]);
        assert!(b.insert(&syms, &locs, &breaks));
        let c = b.build();
        assert_eq!(c.segment_count(), 1);
        let mut out = Vec::new();
        // Anchor [iadd, isub, imul] ends at position 2; suffix follows.
        c.candidates_into(&syms[0..3], &mut out);
        assert_eq!(out, vec![(0, 2)]);
        // Anchor ending at the last symbol has no suffix: not indexed.
        c.candidates_into(&syms[3..6], &mut out);
        assert!(out.is_empty());
        // Wrong anchor length: no candidates.
        c.candidates_into(&syms[0..2], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn dedup_drops_exact_duplicates_only() {
        use OpKind as O;
        let mut b = CorpusBuilder::new(3);
        let (syms, locs, breaks) = seg(&[O::Iadd, O::Isub, O::Imul, O::Dup, O::Pop]);
        assert!(b.insert(&syms, &locs, &breaks));
        assert!(!b.insert(&syms, &locs, &breaks), "exact duplicate");
        // Same symbols, different locations: not a duplicate.
        let locs2: Vec<u64> = locs.iter().map(|&l| l ^ 1).collect();
        assert!(b.insert(&syms, &locs2, &breaks));
        assert_eq!(b.inserted(), 2);
        assert_eq!(b.deduped(), 1);
    }

    #[test]
    fn segment_view_round_trips_syms_and_locs() {
        use OpKind as O;
        let mut b = CorpusBuilder::new(2);
        let syms = vec![
            Sym::plain(O::Iload),
            Sym::branch(O::Ifeq, true),
            Sym::branch(O::Ifne, false),
            Sym::plain(O::Ireturn),
        ];
        let locs = vec![
            pack_loc(Some(3), Some(0)),
            pack_loc(Some(3), Some(1)),
            pack_loc(None, None),
            pack_loc(Some(3), Some(4)),
        ];
        let breaks = vec![2u32];
        assert!(b.insert(&syms, &locs, &breaks));
        let c = b.finish();
        let v = c.segment(0);
        assert_eq!(v.len, 4);
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(v.sym(i), *s);
        }
        assert_eq!(v.loc(2), (None, None));
        assert_eq!(v.loc(3), (Some(3), Some(4)));
        assert_eq!(v.breaks, &[2]);
    }

    #[test]
    fn absorb_merges_dedup_aware() {
        use OpKind as O;
        let mut a = CorpusBuilder::new(3);
        let (s1, l1, k1) = seg(&[O::Iadd, O::Isub, O::Imul, O::Dup]);
        a.insert(&s1, &l1, &k1);
        let ca = a.finish();

        let mut b = CorpusBuilder::new(3);
        b.insert(&s1, &l1, &k1);
        let (s2, l2, k2) = seg(&[O::Pop, O::Swap, O::Ineg, O::Ishl, O::Ishr]);
        b.insert(&s2, &l2, &k2);
        b.absorb(&ca);
        assert_eq!(b.segment_count(), 2, "absorb dedups the shared segment");
        assert_eq!(b.deduped(), 1);
    }

    #[test]
    fn stats_and_busiest_anchors() {
        use OpKind as O;
        let mut b = CorpusBuilder::new(3);
        // The window [iadd, isub, imul] appears twice in this segment.
        let (syms, locs, breaks) =
            seg(&[O::Iadd, O::Isub, O::Imul, O::Iadd, O::Isub, O::Imul, O::Pop]);
        b.insert(&syms, &locs, &breaks);
        let c = b.finish();
        let stats = c.stats();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.syms, 7);
        assert_eq!(stats.shard_fill.len(), ANCHOR_SHARDS);
        assert_eq!(stats.shard_fill.iter().sum::<usize>(), 4, "4 windows");
        let busiest = c.busiest_anchors(10);
        assert_eq!(busiest[0].1, 2);
        assert_eq!(c.spell_key(busiest[0].0), "iadd·isub·imul");
    }
}
