//! On-disk corpus format: versioned magic, little-endian u64 words,
//! trailing checksum, `Read`-based load into `Arc` buffers (no mmap).
//!
//! Layout (all little-endian u64 words):
//!
//! ```text
//! +-------------------------------------------------------------+
//! | magic "JPCORPUS"                                            |
//! | version u32            | anchor_len u32                     |
//! | segment_count u64                                           |
//! | ops_words u64 | dirs_words u64 | locs_len u64 | breaks_len  |
//! +-------------------------------------------------------------+
//! | per segment (4 words):                                      |
//! |   ops_off u32   | dirs_off u32                              |
//! |   locs_off u32  | breaks_off u32                            |
//! |   len u32       | breaks_len u32                            |
//! |   content_hash u64                                          |
//! +-------------------------------------------------------------+
//! | ops arena   (ops_words × u64: op bytes, 8 syms per word)    |
//! | dirs arena  (dirs_words × u64: 2-bit codes, 32 per word)    |
//! | locs arena  (locs_len × u64: method<<32 | bci)              |
//! | breaks arena (⌈breaks_len/2⌉ × u64: two u32 per word)       |
//! +-------------------------------------------------------------+
//! | anchor index, 16 shards in order:                           |
//! |   buckets u64                                               |
//! |   per bucket: key u64, n u64, n × (seg u32 | end u32)       |
//! +-------------------------------------------------------------+
//! | checksum u64 (FNV-1a over every preceding byte)             |
//! +-------------------------------------------------------------+
//! ```
//!
//! Every load failure is a typed [`CorpusError`]; malformed input never
//! panics. The checksum is verified before any structural parsing, so
//! a flipped bit anywhere in the file surfaces as `ChecksumMismatch`
//! rather than a downstream decode error.

use crate::{Corpus, CorpusCandidate, SegmentMeta, ANCHOR_SHARDS, FORMAT_VERSION};
use jportal_cfg::FxHashMap;
use std::io::Read;
use std::path::Path;

/// `b"JPCORPUS"` as a little-endian word.
pub const MAGIC: u64 = u64::from_le_bytes(*b"JPCORPUS");

/// Typed load/save failures. Every malformed-input path lands here —
/// corpus files come from disk and may be truncated, stale or
/// corrupted, none of which may panic the analysis that tries them.
#[derive(Debug)]
pub enum CorpusError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the corpus magic.
    BadMagic,
    /// The file's format version is not the one this build reads.
    VersionMismatch {
        /// Version stored in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The file is shorter than its own structure claims (or not a
    /// whole number of words).
    Truncated,
    /// Stored checksum disagrees with the recomputed one.
    ChecksumMismatch {
        /// Checksum word stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// Structurally invalid contents (out-of-range offsets, shard
    /// count mismatch, …) despite a valid checksum.
    Malformed(&'static str),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus io error: {e}"),
            CorpusError::BadMagic => write!(f, "not a corpus file (bad magic)"),
            CorpusError::VersionMismatch { found, expected } => {
                write!(f, "corpus version {found} (this build reads {expected})")
            }
            CorpusError::Truncated => write!(f, "corpus file truncated"),
            CorpusError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corpus checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ),
            CorpusError::Malformed(what) => write!(f, "corpus malformed: {what}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> CorpusError {
        CorpusError::Io(e)
    }
}

/// FNV-1a over a byte slice (the trailer checksum; in-tree, no deps).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian word writer over a growing byte buffer.
struct W {
    buf: Vec<u8>,
}

impl W {
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn pair(&mut self, lo: u32, hi: u32) {
        self.u64((hi as u64) << 32 | lo as u64);
    }
}

/// Cursor over the loaded word buffer; every read is bounds-checked
/// and reports `Truncated` past the end.
struct R<'a> {
    words: &'a [u64],
    at: usize,
}

impl R<'_> {
    fn u64(&mut self) -> Result<u64, CorpusError> {
        let w = *self.words.get(self.at).ok_or(CorpusError::Truncated)?;
        self.at += 1;
        Ok(w)
    }
    fn pair(&mut self) -> Result<(u32, u32), CorpusError> {
        let w = self.u64()?;
        Ok((w as u32, (w >> 32) as u32))
    }
    fn words(&mut self, n: usize) -> Result<&[u64], CorpusError> {
        let end = self.at.checked_add(n).ok_or(CorpusError::Truncated)?;
        let s = self.words.get(self.at..end).ok_or(CorpusError::Truncated)?;
        self.at = end;
        Ok(s)
    }
}

impl Corpus {
    /// Serializes the corpus (arenas, headers, index) plus trailer
    /// checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (anchor_len, segments, ops, dirs, locs, breaks, shards) = self.parts();
        let mut w = W { buf: Vec::new() };
        w.u64(MAGIC);
        w.pair(FORMAT_VERSION, anchor_len);
        w.u64(segments.len() as u64);
        w.u64(ops.len() as u64);
        w.u64(dirs.len() as u64);
        w.u64(locs.len() as u64);
        w.u64(breaks.len() as u64);
        for m in segments {
            w.pair(m.ops_off, m.dirs_off);
            w.pair(m.locs_off, m.breaks_off);
            w.pair(m.len, m.breaks_len);
            w.u64(m.content_hash);
        }
        for &x in ops {
            w.u64(x);
        }
        for &x in dirs {
            w.u64(x);
        }
        for &x in locs {
            w.u64(x);
        }
        for c in breaks.chunks(2) {
            w.pair(c[0], c.get(1).copied().unwrap_or(0));
        }
        for shard in shards {
            // Deterministic bytes for byte-equality round-trips: order
            // buckets by key, not by map iteration order.
            let mut keys: Vec<u64> = shard.keys().copied().collect();
            keys.sort_unstable();
            w.u64(keys.len() as u64);
            for key in keys {
                let cands = &shard[&key];
                w.u64(key);
                w.u64(cands.len() as u64);
                for &(seg, end) in cands {
                    w.pair(seg, end);
                }
            }
        }
        let sum = fnv1a(&w.buf);
        w.u64(sum);
        w.buf
    }

    /// Parses a corpus from bytes produced by [`Corpus::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Corpus, CorpusError> {
        if !bytes.len().is_multiple_of(8) || bytes.len() < 16 {
            return Err(CorpusError::Truncated);
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let (payload, trailer) = words.split_at(words.len() - 1);
        if payload.first() != Some(&MAGIC) {
            return Err(CorpusError::BadMagic);
        }
        let computed = fnv1a(&bytes[..bytes.len() - 8]);
        if trailer[0] != computed {
            return Err(CorpusError::ChecksumMismatch {
                stored: trailer[0],
                computed,
            });
        }
        let mut r = R {
            words: payload,
            at: 1,
        };
        let (version, anchor_len) = r.pair()?;
        if version != FORMAT_VERSION {
            return Err(CorpusError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        if anchor_len == 0 {
            return Err(CorpusError::Malformed("anchor_len is zero"));
        }
        let segment_count = r.u64()? as usize;
        let ops_words = r.u64()? as usize;
        let dirs_words = r.u64()? as usize;
        let locs_len = r.u64()? as usize;
        let breaks_len = r.u64()? as usize;

        let mut segments = Vec::with_capacity(segment_count.min(1 << 20));
        for _ in 0..segment_count {
            let (ops_off, dirs_off) = r.pair()?;
            let (locs_off, breaks_off) = r.pair()?;
            let (len, seg_breaks) = r.pair()?;
            let content_hash = r.u64()?;
            let m = SegmentMeta {
                ops_off,
                dirs_off,
                locs_off,
                breaks_off,
                len,
                breaks_len: seg_breaks,
                content_hash,
            };
            let ow = (len as usize).div_ceil(8);
            let dw = (len as usize).div_ceil(32);
            if m.ops_off as usize + ow > ops_words
                || m.dirs_off as usize + dw > dirs_words
                || m.locs_off as usize + len as usize > locs_len
                || m.breaks_off as usize + seg_breaks as usize > breaks_len
            {
                return Err(CorpusError::Malformed("segment offsets out of range"));
            }
            segments.push(m);
        }
        let ops = r.words(ops_words)?.to_vec();
        let dirs = r.words(dirs_words)?.to_vec();
        let locs = r.words(locs_len)?.to_vec();
        let mut breaks = Vec::with_capacity(breaks_len);
        for w in r.words(breaks_len.div_ceil(2))? {
            breaks.push(*w as u32);
            if breaks.len() < breaks_len {
                breaks.push((*w >> 32) as u32);
            }
        }

        let mut shards: Vec<FxHashMap<u64, Vec<CorpusCandidate>>> =
            Vec::with_capacity(ANCHOR_SHARDS);
        for _ in 0..ANCHOR_SHARDS {
            let buckets = r.u64()? as usize;
            let mut shard = FxHashMap::default();
            for _ in 0..buckets {
                let key = r.u64()?;
                let n = r.u64()? as usize;
                let mut cands = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let (seg, end) = r.pair()?;
                    if seg as usize >= segments.len() {
                        return Err(CorpusError::Malformed("index references missing segment"));
                    }
                    cands.push((seg, end));
                }
                shard.insert(key, cands);
            }
            shards.push(shard);
        }
        if r.at != payload.len() {
            return Err(CorpusError::Malformed("trailing bytes after index"));
        }
        Ok(Corpus::from_parts(
            anchor_len, segments, ops, dirs, locs, breaks, shards,
        ))
    }

    /// Writes the corpus to `path` (atomic enough for our use: write to
    /// a sibling temp file, then rename over the target).
    pub fn save(&self, path: &Path) -> Result<(), CorpusError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a corpus from any reader (the "mmap-free `Read`-based
    /// load": bytes are read fully, verified, then moved into `Arc`
    /// buffers).
    pub fn load_from(mut reader: impl Read) -> Result<Corpus, CorpusError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Corpus::from_bytes(&bytes)
    }

    /// Loads a corpus from `path`.
    pub fn load(path: &Path) -> Result<Corpus, CorpusError> {
        Corpus::load_from(std::fs::File::open(path)?)
    }
}
