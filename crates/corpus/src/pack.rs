//! Packed symbol streams and the SWAR common-suffix kernel.
//!
//! Recovery's hot scoring loop is a backward scan comparing two symbol
//! streams one [`Sym`] at a time (`tier_suffix`, Tier::Concrete). This
//! module packs the streams so eight symbols are compared per step:
//!
//! * **op bytes** — one byte per symbol ([`jportal_bytecode::OpKind`] is
//!   `#[repr(u8)]`), eight per `u64`, little-endian within the word:
//!   position `i` lives in word `i / 8`, byte lane `i % 8`.
//! * **dir lanes** — two bits per symbol, thirty-two per `u64`:
//!   `Unknown = 0`, `Taken = 1`, `NotTaken = 2`. Two directions
//!   *contradict* exactly when both bits of their XOR are set
//!   (`1 ^ 2 == 3`); `Unknown` never contradicts anything, matching
//!   [`jportal_cfg::BranchDir::matches`].
//!
//! The kernel loads the eight symbols ending at each cursor from both
//! streams, XORs the op words, reduces nonzero bytes and dir
//! contradictions to one high bit per byte lane, and counts matching
//! symbols with a single leading-zero count — the first mismatch falls
//! out of `leading_zeros(bad) / 8`. The scalar reference implementation
//! is kept alongside and pinned byte-identical by the
//! `swar_equivalence` proptest suite; both are exported so benches can
//! measure the speedup in the same run.

use jportal_cfg::{BranchDir, Sym};

/// Two-bit encoding of a [`BranchDir`] for the packed dir lanes.
#[inline]
pub fn dir_code(dir: BranchDir) -> u8 {
    match dir {
        BranchDir::Unknown => 0,
        BranchDir::Taken => 1,
        BranchDir::NotTaken => 2,
    }
}

/// Inverse of [`dir_code`].
#[inline]
pub fn dir_from_code(code: u8) -> BranchDir {
    match code & 3 {
        1 => BranchDir::Taken,
        2 => BranchDir::NotTaken,
        _ => BranchDir::Unknown,
    }
}

/// A symbol stream packed for SWAR comparison: op bytes eight per word,
/// dir codes thirty-two per word.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedSyms {
    /// Op bytes, position `i` at byte lane `i % 8` of word `i / 8`.
    pub ops: Vec<u64>,
    /// Dir codes, position `i` at bits `2 * (i % 32)` of word `i / 32`.
    pub dirs: Vec<u64>,
    /// Number of symbols.
    pub len: usize,
}

impl PackedSyms {
    /// Packs a symbol slice.
    pub fn from_syms(syms: &[Sym]) -> PackedSyms {
        let mut p = PackedSyms {
            ops: vec![0u64; syms.len().div_ceil(8)],
            dirs: vec![0u64; syms.len().div_ceil(32)],
            len: syms.len(),
        };
        for (i, s) in syms.iter().enumerate() {
            p.ops[i / 8] |= (s.op as u64) << ((i % 8) * 8);
            p.dirs[i / 32] |= (dir_code(s.dir) as u64) << ((i % 32) * 2);
        }
        p
    }

    /// The symbol at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> (u8, u8) {
        (op_at(&self.ops, i), dir_at(&self.dirs, i))
    }
}

/// Op byte at position `i` of a packed op arena slice.
#[inline]
pub fn op_at(ops: &[u64], i: usize) -> u8 {
    ((ops[i / 8] >> ((i % 8) * 8)) & 0xff) as u8
}

/// Dir code at position `i` of a packed dir arena slice.
#[inline]
pub fn dir_at(dirs: &[u64], i: usize) -> u8 {
    ((dirs[i / 32] >> ((i % 32) * 2)) & 3) as u8
}

/// `true` when the packed symbols are compatible for matching: same op
/// byte and non-contradicting directions (the packed form of
/// `Sym::op == Sym::op && BranchDir::matches`).
#[inline]
fn compat(a: (u8, u8), b: (u8, u8)) -> bool {
    a.0 == b.0 && (a.1 ^ b.1) != 3
}

/// Loads the eight op bytes at positions `p - 8 .. p` as one `u64`
/// (byte lane `j` = position `p - 8 + j`). Requires `p >= 8`; positions
/// up to `p - 1` must exist, which the suffix loop guarantees.
#[inline]
fn load8_ops(ops: &[u64], p: usize) -> u64 {
    let lo = p - 8;
    let wi = lo / 8;
    let shift = (lo % 8) * 8;
    if shift == 0 {
        ops[wi]
    } else {
        // The window straddles two words; `wi + 1 == (p - 1) / 8` is in
        // range because position `p - 1` exists.
        (ops[wi] >> shift) | (ops[wi + 1] << (64 - shift))
    }
}

/// Loads the eight dir codes at positions `p - 8 .. p` as sixteen bits
/// (lane `j` at bits `2j`). Requires `p >= 8`.
#[inline]
fn load8_dirs(dirs: &[u64], p: usize) -> u64 {
    let lo = p - 8;
    let wi = lo / 32;
    let shift = (lo % 32) * 2;
    let hi = if shift > 48 {
        // Window spills into the next word; in range iff positions past
        // the current word exist — a one-word overfetch would read past
        // a 32-aligned stream end, so fall back to a checked read.
        dirs.get(wi + 1).copied().unwrap_or(0)
    } else {
        0
    };
    let base = if shift == 0 {
        dirs[wi]
    } else {
        (dirs[wi] >> shift) | (hi << (64 - shift))
    };
    base & 0xffff
}

/// High bit of every nonzero byte lane (classic SWAR nonzero-byte
/// reduction).
#[inline]
fn nonzero_bytes(x: u64) -> u64 {
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    (((x & LOW7) + LOW7) | x) & !LOW7
}

/// Spreads the per-lane dir-contradiction flags (bit `2j`) onto the op
/// mask's byte-lane high bits (bit `8j + 7`).
#[inline]
fn spread_dir_flags(contr: u64) -> u64 {
    let mut m = 0u64;
    // Eight fixed iterations; fully unrolled and branch-free in release.
    for j in 0..8 {
        m |= ((contr >> (2 * j)) & 1) << (8 * j + 7);
    }
    m
}

/// Backward common-suffix length between `a[.. a_end]` and
/// `b[.. b_end]`, capped at `cap` comparisons: the largest `n` such
/// that positions `a_end - 1 - k` and `b_end - 1 - k` are compatible
/// for all `k < n`. SWAR main loop, scalar tail.
pub fn suffix_swar(
    a_ops: &[u64],
    a_dirs: &[u64],
    a_end: usize,
    b_ops: &[u64],
    b_dirs: &[u64],
    b_end: usize,
    cap: usize,
) -> usize {
    let lim = cap.min(a_end).min(b_end);
    let mut n = 0usize;
    while n + 8 <= lim {
        let pa = a_end - n;
        let pb = b_end - n;
        let ox = load8_ops(a_ops, pa) ^ load8_ops(b_ops, pb);
        let dx = load8_dirs(a_dirs, pa) ^ load8_dirs(b_dirs, pb);
        // Lane j contradicts iff both bits of its XOR are set.
        let contr = dx & (dx >> 1) & 0x5555;
        let bad = nonzero_bytes(ox) | spread_dir_flags(contr);
        if bad == 0 {
            n += 8;
            continue;
        }
        // Byte lane 7 is position `p - 1`: matching symbols walking
        // backward are the clean high lanes of `bad`.
        return n + (bad.leading_zeros() / 8) as usize;
    }
    while n < lim {
        let sa = (op_at(a_ops, a_end - 1 - n), dir_at(a_dirs, a_end - 1 - n));
        let sb = (op_at(b_ops, b_end - 1 - n), dir_at(b_dirs, b_end - 1 - n));
        if !compat(sa, sb) {
            break;
        }
        n += 1;
    }
    n
}

/// Scalar reference for [`suffix_swar`]: the seed implementation's
/// backward one-symbol-at-a-time scan, kept verbatim as the equivalence
/// oracle and the bench baseline.
pub fn suffix_scalar(
    a_ops: &[u64],
    a_dirs: &[u64],
    a_end: usize,
    b_ops: &[u64],
    b_dirs: &[u64],
    b_end: usize,
    cap: usize,
) -> usize {
    let mut n = 0usize;
    while n < cap && n < a_end && n < b_end {
        let sa = (op_at(a_ops, a_end - 1 - n), dir_at(a_dirs, a_end - 1 - n));
        let sb = (op_at(b_ops, b_end - 1 - n), dir_at(b_dirs, b_end - 1 - n));
        if !compat(sa, sb) {
            break;
        }
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::OpKind;

    fn syms(spec: &[(OpKind, u8)]) -> Vec<Sym> {
        spec.iter()
            .map(|&(op, d)| Sym {
                op,
                dir: dir_from_code(d),
            })
            .collect()
    }

    #[test]
    fn pack_round_trips() {
        let s = syms(&[
            (OpKind::Iadd, 0),
            (OpKind::Ifeq, 1),
            (OpKind::Ifne, 2),
            (OpKind::InvokeStatic, 0),
        ]);
        let p = PackedSyms::from_syms(&s);
        assert_eq!(p.len, 4);
        for (i, sym) in s.iter().enumerate() {
            let (op, d) = p.get(i);
            assert_eq!(op, sym.op as u8);
            assert_eq!(dir_from_code(d), sym.dir);
        }
    }

    #[test]
    fn suffix_agrees_on_short_streams() {
        let a = PackedSyms::from_syms(&syms(&[
            (OpKind::Istore, 0),
            (OpKind::Ifeq, 0),
            (OpKind::Iadd, 0),
            (OpKind::Istore, 0),
        ]));
        let b = PackedSyms::from_syms(&syms(&[
            (OpKind::Iload, 0),
            (OpKind::Ifeq, 0),
            (OpKind::Iadd, 0),
            (OpKind::Istore, 0),
        ]));
        let got = suffix_swar(&a.ops, &a.dirs, 4, &b.ops, &b.dirs, 4, usize::MAX);
        assert_eq!(got, 3);
        assert_eq!(
            got,
            suffix_scalar(&a.ops, &a.dirs, 4, &b.ops, &b.dirs, 4, usize::MAX)
        );
    }

    #[test]
    fn dir_contradiction_breaks_the_suffix_unknown_does_not() {
        let a = PackedSyms::from_syms(&syms(&[(OpKind::Ifeq, 1), (OpKind::Iadd, 0)]));
        let contradicting = PackedSyms::from_syms(&syms(&[(OpKind::Ifeq, 2), (OpKind::Iadd, 0)]));
        let unknown = PackedSyms::from_syms(&syms(&[(OpKind::Ifeq, 0), (OpKind::Iadd, 0)]));
        assert_eq!(
            suffix_swar(
                &a.ops,
                &a.dirs,
                2,
                &contradicting.ops,
                &contradicting.dirs,
                2,
                usize::MAX
            ),
            1
        );
        assert_eq!(
            suffix_swar(
                &a.ops,
                &a.dirs,
                2,
                &unknown.ops,
                &unknown.dirs,
                2,
                usize::MAX
            ),
            2
        );
    }

    #[test]
    fn long_identical_suffix_crosses_word_boundaries() {
        let s: Vec<Sym> = (0..100)
            .map(|i| {
                Sym::plain(if i % 3 == 0 {
                    OpKind::Iadd
                } else {
                    OpKind::Pop
                })
            })
            .collect();
        let p = PackedSyms::from_syms(&s);
        for end in [8, 9, 17, 63, 64, 65, 100] {
            for cap in [0, 1, 7, 8, 9, 40, usize::MAX] {
                assert_eq!(
                    suffix_swar(&p.ops, &p.dirs, end, &p.ops, &p.dirs, end, cap),
                    cap.min(end),
                    "end={end} cap={cap}"
                );
            }
        }
    }

    #[test]
    fn misaligned_ends_agree_with_scalar() {
        let a: Vec<Sym> = (0..70)
            .map(|i| Sym::plain(OpKind::ALL[i * 7 % OpKind::ALL.len()]))
            .collect();
        let b: Vec<Sym> = (0..70)
            .map(|i| Sym::plain(OpKind::ALL[(i * 7 + i / 13) % OpKind::ALL.len()]))
            .collect();
        let pa = PackedSyms::from_syms(&a);
        let pb = PackedSyms::from_syms(&b);
        for ae in 1..=70 {
            for be in [1, 5, 13, 31, 64, 70] {
                let swar = suffix_swar(&pa.ops, &pa.dirs, ae, &pb.ops, &pb.dirs, be, usize::MAX);
                let scalar =
                    suffix_scalar(&pa.ops, &pa.dirs, ae, &pb.ops, &pb.dirs, be, usize::MAX);
                assert_eq!(swar, scalar, "ae={ae} be={be}");
            }
        }
    }
}
