//! JPortal: precise and efficient control-flow tracing for JVM programs
//! with Intel Processor Trace.
//!
//! The offline half of the system described in Zuo et al., *JPortal:
//! Precise and Efficient Control-Flow Tracing for JVM Programs with Intel
//! Processor Trace* (PLDI 2021), built on the simulated substrates of this
//! workspace:
//!
//! 1. [`decode`] — **trace decoding** (§3): per-core PT packet streams +
//!    exported machine-code metadata → per-segment bytecode instruction
//!    sequences, via template-range matching for interpreted code and
//!    code-image walking + debug-info mapping (including inlined frames)
//!    for JIT-compiled code;
//! 2. [`reconstruct`] — **control-flow reconstruction** (§4): projection
//!    of each decoded segment onto the program's ICFG by NFA matching,
//!    with the abstraction-guided filtering of Algorithm 2;
//! 3. [`recover`] — **missing-data recovery** (§5): holes left by PT
//!    buffer overflow are filled from complete segments with matching
//!    contexts, searched with the three-tier abstraction hierarchy of
//!    Algorithm 4 (with Algorithm 3 as the naive baseline);
//! 4. [`threads`] — multi-core / multi-thread trace segregation (§6);
//! 5. [`profiles`] — client profiles (coverage, hot methods, path
//!    frequencies) derived from the reconstructed control flow;
//! 6. [`accuracy`] — the evaluation's scoring: alignment against ground
//!    truth, and the decode/recovery breakdown of Table 3;
//! 7. [`pipeline`] — the end-to-end driver tying 1–5 together.

pub mod accuracy;
pub mod decode;
pub mod pipeline;
pub mod profiles;
pub mod quality;
pub mod reconstruct;
pub mod recover;
pub mod threads;

pub use accuracy::{alignment_score, AccuracyBreakdown};
pub use decode::{decode_segment, BcEvent, BcSegment};
pub use pipeline::{JPortal, JPortalConfig, JPortalReport, TraceEntry, TraceOrigin};
pub use quality::{FillQuality, QualityReport, ThreadQuality};
pub use reconstruct::{project_segment, Projection, ProjectionConfig, ProjectionStats};
pub use recover::{Fill, Recovery, RecoveryConfig, RecoveryStats, SegmentView};
