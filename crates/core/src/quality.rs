//! Reconstruction-quality rollup: per-fill confidence, aggregated per
//! thread and per report.
//!
//! Recovery attaches a confidence in `[0, 1]` to every fill
//! ([`crate::recover::Fill::confidence`]); this module is the report-side
//! view of those scores, so a consumer can ask "how much of this timeline
//! is trustworthy?" without replaying the decision journal. Like
//! `JPortalReport::dfa_cache`, the quality rollup is diagnostic: it is
//! **excluded from report equality** (the determinism contract covers
//! `threads` only), though in practice the scores themselves are
//! deterministic at any `parallelism` because recovery's ranking is.

use jportal_ipt::ThreadId;

use crate::recover::TraceOrigin;

/// Confidence record for one hole fill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillQuality {
    /// Hole index within the thread (1-based, matching
    /// `ThreadReport::holes` order and the journal's `hole` field).
    pub hole: usize,
    /// How the hole was filled: [`TraceOrigin::Recovered`] (CS splice),
    /// [`TraceOrigin::Walked`] (fallback walk), or `None` when nothing
    /// filled it.
    pub origin: Option<TraceOrigin>,
    /// Confidence in `[0, 1]` (see `crate::recover`'s formula; `0.0` for
    /// an unfilled hole).
    pub confidence: f64,
    /// Entries the fill contributed.
    pub entries: usize,
}

/// One thread's fill-quality records, in hole order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadQuality {
    /// The thread.
    pub thread: ThreadId,
    /// One record per hole recovery worked on.
    pub fills: Vec<FillQuality>,
}

impl ThreadQuality {
    /// Mean confidence over this thread's fills (`1.0` when there were
    /// no holes at all — an untouched timeline is fully trusted).
    pub fn mean_confidence(&self) -> f64 {
        if self.fills.is_empty() {
            return 1.0;
        }
        self.fills.iter().map(|f| f.confidence).sum::<f64>() / self.fills.len() as f64
    }

    /// The lowest-confidence fill, if any (the first place to look when
    /// a timeline disagrees with expectations).
    pub fn weakest(&self) -> Option<&FillQuality> {
        self.fills
            .iter()
            .min_by(|a, b| a.confidence.total_cmp(&b.confidence))
    }
}

/// Report-wide quality rollup, sorted by thread id (same order as
/// `JPortalReport::threads`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualityReport {
    /// Per-thread records.
    pub threads: Vec<ThreadQuality>,
}

impl QualityReport {
    /// The rollup for one thread.
    pub fn thread(&self, id: ThreadId) -> Option<&ThreadQuality> {
        self.threads.iter().find(|t| t.thread == id)
    }

    /// Total fills across all threads.
    pub fn total_fills(&self) -> usize {
        self.threads.iter().map(|t| t.fills.len()).sum()
    }

    /// Mean confidence over every fill in the report (`1.0` when no
    /// thread had any hole).
    pub fn mean_confidence(&self) -> f64 {
        let n = self.total_fills();
        if n == 0 {
            return 1.0;
        }
        self.threads
            .iter()
            .flat_map(|t| &t.fills)
            .map(|f| f.confidence)
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fq(hole: usize, confidence: f64) -> FillQuality {
        FillQuality {
            hole,
            origin: Some(TraceOrigin::Recovered),
            confidence,
            entries: 1,
        }
    }

    #[test]
    fn mean_confidence_averages_fills() {
        let t = ThreadQuality {
            thread: ThreadId(0),
            fills: vec![fq(1, 0.8), fq(2, 0.4)],
        };
        assert!((t.mean_confidence() - 0.6).abs() < 1e-12);
        assert_eq!(t.weakest().unwrap().hole, 2);
    }

    #[test]
    fn empty_rollup_is_fully_trusted() {
        let q = QualityReport::default();
        assert_eq!(q.total_fills(), 0);
        assert_eq!(q.mean_confidence(), 1.0);
        assert_eq!(ThreadQuality::default().mean_confidence(), 1.0);
    }
}
