//! Client profiles derived from reconstructed control flow.
//!
//! With the bytecode-level control flow in hand, "various execution
//! statistics, such as function and statement coverage, path profiles,
//! call tree profiles, etc. are all close at hand" (paper §1), and the
//! embedded timestamps enable hot-spot detection (Table 4).

use jportal_bytecode::{Bci, MethodId};
use std::collections::{HashMap, HashSet};

use crate::pipeline::JPortalReport;
use crate::recover::TraceEntry;

/// Statement-coverage profile: executed `(method, bci)` pairs with counts.
#[derive(Debug, Clone, Default)]
pub struct StatementProfile {
    counts: HashMap<(MethodId, Bci), u64>,
}

impl StatementProfile {
    /// Builds the profile from a report.
    pub fn from_report(report: &JPortalReport) -> StatementProfile {
        let mut counts = HashMap::new();
        for t in &report.threads {
            for e in &t.entries {
                if let (Some(m), Some(b)) = (e.method, e.bci) {
                    *counts.entry((m, b)).or_insert(0) += 1;
                }
            }
        }
        StatementProfile { counts }
    }

    /// Execution count of a statement.
    pub fn count(&self, method: MethodId, bci: Bci) -> u64 {
        self.counts.get(&(method, bci)).copied().unwrap_or(0)
    }

    /// The covered statements.
    pub fn covered(&self) -> HashSet<(MethodId, Bci)> {
        self.counts.keys().copied().collect()
    }

    /// Number of distinct covered statements.
    pub fn coverage_size(&self) -> usize {
        self.counts.len()
    }

    /// All counts.
    pub fn counts(&self) -> &HashMap<(MethodId, Bci), u64> {
        &self.counts
    }
}

/// Method coverage: the set of methods observed executing.
pub fn method_coverage(report: &JPortalReport) -> HashSet<MethodId> {
    report
        .threads
        .iter()
        .flat_map(|t| t.entries.iter())
        .filter_map(|e| e.method)
        .collect()
}

/// Hot-method profile: cycles attributed to each method from the
/// timestamps embedded in the trace — each entry owns the time until the
/// next entry of the same thread.
#[derive(Debug, Clone, Default)]
pub struct HotMethodProfile {
    cycles: HashMap<MethodId, u64>,
}

impl HotMethodProfile {
    /// Builds the profile from a report.
    pub fn from_report(report: &JPortalReport) -> HotMethodProfile {
        let mut cycles: HashMap<MethodId, u64> = HashMap::new();
        for t in &report.threads {
            for pair in t.entries.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if let Some(m) = a.method {
                    let dt = b.ts.saturating_sub(a.ts);
                    // Clamp pathological gaps (scheduling, holes).
                    *cycles.entry(m).or_insert(0) += dt.min(10_000);
                }
            }
            if let Some(last) = t.entries.last() {
                if let Some(m) = last.method {
                    *cycles.entry(m).or_insert(0) += 1;
                }
            }
        }
        HotMethodProfile { cycles }
    }

    /// The `n` hottest methods, hottest first (Table 4's JPortal column).
    pub fn hottest(&self, n: usize) -> Vec<MethodId> {
        let mut v: Vec<(MethodId, u64)> = self.cycles.iter().map(|(&m, &c)| (m, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v.into_iter().map(|(m, _)| m).collect()
    }

    /// Cycles attributed to one method.
    pub fn cycles_of(&self, m: MethodId) -> u64 {
        self.cycles.get(&m).copied().unwrap_or(0)
    }
}

/// Edge/path-style profile: counts of consecutive `(from, to)` statement
/// pairs within a thread (an acyclic-path approximation available without
/// instrumentation).
#[derive(Debug, Clone, Default)]
pub struct EdgeProfile {
    counts: HashMap<(Stmt, Stmt), u64>,
}

/// One executed statement: a bytecode position within a method.
type Stmt = (MethodId, Bci);

impl EdgeProfile {
    /// Builds the profile from a report.
    pub fn from_report(report: &JPortalReport) -> EdgeProfile {
        let mut counts = HashMap::new();
        for t in &report.threads {
            for pair in t.entries.windows(2) {
                if let ((Some(m1), Some(b1)), (Some(m2), Some(b2))) =
                    ((pair[0].method, pair[0].bci), (pair[1].method, pair[1].bci))
                {
                    *counts.entry(((m1, b1), (m2, b2))).or_insert(0) += 1;
                }
            }
        }
        EdgeProfile { counts }
    }

    /// Count of one dynamic edge.
    pub fn count(&self, from: (MethodId, Bci), to: (MethodId, Bci)) -> u64 {
        self.counts.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Number of distinct dynamic edges.
    pub fn distinct_edges(&self) -> usize {
        self.counts.len()
    }
}

/// Call-tree profile: dynamic caller → callee invocation counts, derived
/// from call-instruction entries followed by a method change.
pub fn call_pairs(report: &JPortalReport) -> HashMap<(MethodId, MethodId), u64> {
    let mut out: HashMap<(MethodId, MethodId), u64> = HashMap::new();
    for t in &report.threads {
        for pair in t.entries.windows(2) {
            let a: &TraceEntry = &pair[0];
            let b: &TraceEntry = &pair[1];
            let is_call = matches!(
                a.op,
                jportal_bytecode::OpKind::InvokeStatic | jportal_bytecode::OpKind::InvokeVirtual
            );
            if is_call {
                if let (Some(caller), Some(callee)) = (a.method, b.method) {
                    if caller != callee || b.bci == Some(Bci(0)) {
                        *out.entry((caller, callee)).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ThreadReport, TraceOrigin};
    use jportal_bytecode::OpKind;
    use jportal_ipt::ThreadId;

    fn entry(m: u32, b: u32, op: OpKind, ts: u64) -> TraceEntry {
        TraceEntry {
            op,
            method: Some(MethodId(m)),
            bci: Some(Bci(b)),
            ts,
            origin: TraceOrigin::Decoded,
        }
    }

    fn report_with(entries: Vec<TraceEntry>) -> JPortalReport {
        JPortalReport {
            threads: vec![ThreadReport {
                thread: ThreadId(0),
                entries,
                holes: vec![],
                projection: Default::default(),
                recovery: Default::default(),
                segments: 1,
                lint: vec![],
            }],
            dfa_cache: Default::default(),
            collection: Default::default(),
            quality: Default::default(),
        }
    }

    #[test]
    fn statement_counts() {
        let r = report_with(vec![
            entry(0, 0, OpKind::Iconst, 0),
            entry(0, 1, OpKind::Pop, 10),
            entry(0, 0, OpKind::Iconst, 20),
        ]);
        let p = StatementProfile::from_report(&r);
        assert_eq!(p.count(MethodId(0), Bci(0)), 2);
        assert_eq!(p.count(MethodId(0), Bci(1)), 1);
        assert_eq!(p.coverage_size(), 2);
        assert!(p.covered().contains(&(MethodId(0), Bci(1))));
    }

    #[test]
    fn hot_methods_use_time_attribution() {
        let r = report_with(vec![
            entry(1, 0, OpKind::Iconst, 0),
            entry(1, 1, OpKind::Pop, 100), // method 1 owns 100 cycles
            entry(2, 0, OpKind::Iconst, 110), // method 1 owns 10 more
            entry(2, 1, OpKind::Pop, 120), // method 2 owns 10
        ]);
        let p = HotMethodProfile::from_report(&r);
        assert_eq!(p.hottest(2), vec![MethodId(1), MethodId(2)]);
        assert_eq!(p.cycles_of(MethodId(1)), 110);
    }

    #[test]
    fn edges_and_calls() {
        let r = report_with(vec![
            entry(0, 3, OpKind::InvokeStatic, 0),
            entry(1, 0, OpKind::Iconst, 5),
            entry(1, 1, OpKind::Ireturn, 10),
            entry(0, 4, OpKind::Pop, 15),
        ]);
        let e = EdgeProfile::from_report(&r);
        assert_eq!(e.distinct_edges(), 3);
        assert_eq!(e.count((MethodId(0), Bci(3)), (MethodId(1), Bci(0))), 1);
        let calls = call_pairs(&r);
        assert_eq!(calls.get(&(MethodId(0), MethodId(1))), Some(&1));
        let cov = method_coverage(&r);
        assert_eq!(cov.len(), 2);
    }
}
