//! Trace decoding (§3): PT packets → bytecode instruction sequences.
//!
//! Interpreted code decodes by **template-range matching**: every
//! interpreted bytecode produced a dispatch TIP whose target falls inside
//! one opcode's template range (Figure 2); the following TNT bit gives a
//! conditional's direction. JIT-compiled code decodes by **walking the
//! exported code image** from each TIP target, consuming TNT bits at
//! compiled conditional branches and mapping machine PCs back to
//! `method@bci` through the blob's debug records — including inline
//! frames (Figure 3, §6 "Dealing with Inlined Code").
//!
//! Both run in one walker, because real traces interleave the two worlds
//! at every mode transition.

use jportal_bytecode::{Bci, MethodId, Program};
use jportal_cfg::{BranchDir, Sym};
use jportal_ipt::ring::LossRecord;
use jportal_ipt::{Packet, RawSegment};
use jportal_jvm::MetadataArchive;
use std::collections::VecDeque;

/// One decoded bytecode occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcEvent {
    /// The symbol (operation kind + branch direction when known).
    pub sym: Sym,
    /// Owning method — known for JIT-decoded events, unknown for
    /// interpreted ones (templates identify only the opcode).
    pub method: Option<MethodId>,
    /// Bytecode index — known for JIT-decoded events.
    pub bci: Option<Bci>,
    /// Timestamp of the packet that produced the event.
    pub ts: u64,
}

/// A decoded trace segment: a maximal run of events with no data loss
/// inside.
#[derive(Debug, Clone, Default)]
pub struct BcSegment {
    /// Decoded events in execution order.
    pub events: Vec<BcEvent>,
    /// The loss record separating this segment from its predecessor
    /// (`None` when the segment starts cleanly, e.g. at thread start or a
    /// scheduling split).
    pub loss_before: Option<LossRecord>,
    /// Core the segment was captured on.
    pub core: u32,
}

impl BcSegment {
    /// The symbols of the segment (the `ω` of §4).
    pub fn syms(&self) -> Vec<Sym> {
        self.events.iter().map(|e| e.sym).collect()
    }

    /// Timestamp of the first event (0 when empty).
    pub fn start_ts(&self) -> u64 {
        self.events.first().map(|e| e.ts).unwrap_or(0)
    }

    /// Timestamp of the last event (0 when empty).
    pub fn end_ts(&self) -> u64 {
        self.events.last().map(|e| e.ts).unwrap_or(0)
    }
}

/// Walker position inside JIT code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalkState {
    /// Not inside walkable code; waiting for a TIP to anchor.
    Idle,
    /// Walking blob `archive index` at `pc`.
    Jit { blob: usize, pc: u64 },
    /// Paused at a conditional branch in a blob, waiting for a TNT bit.
    JitAtCond { blob: usize, pc: u64 },
}

/// Decodes one raw packet segment into bytecode events (§3).
///
/// The decoder is resilient by construction: unknown TIP targets, missing
/// TNT bits (dropped at segment boundaries) and debug-info gaps degrade
/// into skipped events rather than failures — the reconstruction and
/// recovery stages deal with the consequences, exactly as in the paper.
pub fn decode_segment(program: &Program, archive: &MetadataArchive, raw: &RawSegment) -> BcSegment {
    let mut out = BcSegment {
        events: Vec::new(),
        loss_before: raw.loss_before,
        core: raw.core,
    };
    let templates = &archive.templates;
    let mut state = WalkState::Idle;
    let mut tnt: VecDeque<bool> = VecDeque::new();
    // Index of an interpreted conditional event awaiting its direction.
    let mut pending_dir: Option<usize> = None;
    let mut last_jit_branch: Option<(usize, MethodId, Bci)> = None;

    for tp in raw.packets() {
        let ts = tp.ts;
        match &tp.packet {
            Packet::Tnt { bits } => {
                tnt.extend(bits.iter());
                // An interpreted conditional consumes the first bit.
                if let Some(idx) = pending_dir.take() {
                    if let Some(bit) = tnt.pop_front() {
                        out.events[idx].sym.dir = BranchDir::from_taken(bit);
                    }
                }
                state = drain_jit(
                    program,
                    archive,
                    state,
                    &mut tnt,
                    &mut out,
                    &mut last_jit_branch,
                    ts,
                );
            }
            Packet::Tip { ip, .. } | Packet::TipPge { ip, .. } => {
                pending_dir = None;
                state = anchor(archive, templates, *ip, ts, &mut out, &mut pending_dir);
                state = drain_jit(
                    program,
                    archive,
                    state,
                    &mut tnt,
                    &mut out,
                    &mut last_jit_branch,
                    ts,
                );
            }
            Packet::TipPgd { .. } => {
                state = WalkState::Idle;
                pending_dir = None;
            }
            Packet::Fup { .. } => {
                // Asynchronous event: the walk stops here; the following
                // TIP re-anchors at the handler.
                state = WalkState::Idle;
                pending_dir = None;
            }
            Packet::Ovf => {
                // In-stream overflow marker: drop stale decoder state.
                state = WalkState::Idle;
                pending_dir = None;
                tnt.clear();
            }
            Packet::Psb | Packet::PsbEnd | Packet::Pad | Packet::Tsc { .. } => {}
        }
    }
    resolve_jit_branch_dirs(program, &mut out);
    out
}

/// Re-anchors the walker at a TIP target.
fn anchor(
    archive: &MetadataArchive,
    templates: &jportal_jvm::TemplateTable,
    ip: u64,
    ts: u64,
    out: &mut BcSegment,
    pending_dir: &mut Option<usize>,
) -> WalkState {
    if let Some(op) = templates.op_at(ip) {
        // Interpreted dispatch: the target template names the opcode.
        let sym = Sym::plain(op);
        out.events.push(BcEvent {
            sym,
            method: None,
            bci: None,
            ts,
        });
        let is_cond = matches!(
            op,
            jportal_bytecode::OpKind::Ifeq
                | jportal_bytecode::OpKind::Ifne
                | jportal_bytecode::OpKind::Iflt
                | jportal_bytecode::OpKind::Ifge
                | jportal_bytecode::OpKind::Ifgt
                | jportal_bytecode::OpKind::Ifle
                | jportal_bytecode::OpKind::IfIcmpeq
                | jportal_bytecode::OpKind::IfIcmpne
                | jportal_bytecode::OpKind::IfIcmplt
                | jportal_bytecode::OpKind::IfIcmpge
                | jportal_bytecode::OpKind::IfIcmpgt
                | jportal_bytecode::OpKind::IfIcmple
                | jportal_bytecode::OpKind::Ifnull
        );
        if is_cond {
            *pending_dir = Some(out.events.len() - 1);
        }
        WalkState::Idle
    } else if let Some(blob) = archive.lookup_index(ip, ts) {
        WalkState::Jit { blob, pc: ip }
    } else {
        WalkState::Idle
    }
}

/// Advances a JIT walk as far as available TNT bits allow.
fn drain_jit(
    program: &Program,
    archive: &MetadataArchive,
    mut state: WalkState,
    tnt: &mut VecDeque<bool>,
    out: &mut BcSegment,
    last_jit_branch: &mut Option<(usize, MethodId, Bci)>,
    ts: u64,
) -> WalkState {
    loop {
        let (blob_idx, pc, at_cond) = match state {
            WalkState::Jit { blob, pc } => (blob, pc, false),
            WalkState::JitAtCond { blob, pc } => (blob, pc, true),
            WalkState::Idle => return WalkState::Idle,
        };
        let archived = &archive.blobs[blob_idx];
        let blob = &archived.compiled.blob;
        let Some(insn) = blob.insn_at(pc) else {
            return WalkState::Idle;
        };

        if !at_cond {
            // Emit the bytecode event anchored at this pc, if the debug
            // info still has a record here (degraded metadata loses some).
            if let Some(rec) = archived.compiled.debug.at_exact(pc) {
                let method = archived.compiled.debug.method_of(rec.inline_id);
                let m = program.method(method);
                if rec.bci.index() < m.code.len() {
                    let insn_bc = m.insn(rec.bci);
                    out.events.push(BcEvent {
                        sym: Sym::of_instruction(insn_bc),
                        method: Some(method),
                        bci: Some(rec.bci),
                        ts,
                    });
                    if insn_bc.is_conditional_branch() {
                        *last_jit_branch = Some((out.events.len() - 1, method, rec.bci));
                    }
                }
            }
        }

        use jportal_jvm::MiKind;
        state = match insn.kind {
            MiKind::Other => WalkState::Jit {
                blob: blob_idx,
                pc: insn.next_addr(),
            },
            MiKind::Jump { target } | MiKind::Call { target } => WalkState::Jit {
                blob: blob_idx,
                pc: target,
            },
            MiKind::CondBranch { target, .. } => match tnt.pop_front() {
                Some(true) => WalkState::Jit {
                    blob: blob_idx,
                    pc: target,
                },
                Some(false) => WalkState::Jit {
                    blob: blob_idx,
                    pc: insn.next_addr(),
                },
                None => {
                    // Wait for more TNT bits at this instruction.
                    return WalkState::JitAtCond { blob: blob_idx, pc };
                }
            },
            MiKind::IndirectJump | MiKind::IndirectCall | MiKind::Ret => {
                // The next TIP re-anchors the walk.
                return WalkState::Idle;
            }
        };
        if state == WalkState::Idle {
            return state;
        }
        // Walking off the end of the blob ends the walk.
        if let WalkState::Jit { pc, .. } = state {
            if !blob.contains(pc) {
                return WalkState::Idle;
            }
        }
    }
}

/// Sets branch directions on JIT-decoded conditional events by looking at
/// the event that follows: if it is the branch's taken target, the branch
/// was taken; if it is the fall-through, it was not.
fn resolve_jit_branch_dirs(program: &Program, seg: &mut BcSegment) {
    for i in 0..seg.events.len() {
        let (Some(method), Some(bci)) = (seg.events[i].method, seg.events[i].bci) else {
            continue;
        };
        let insn = program.method(method).insn(bci);
        if !insn.is_conditional_branch() {
            continue;
        }
        let taken_target = insn.branch_targets()[0];
        if let Some(next) = seg.events.get(i + 1) {
            if next.method == Some(method) {
                if next.bci == Some(taken_target) {
                    seg.events[i].sym.dir = BranchDir::Taken;
                } else if next.bci == Some(bci.next()) {
                    seg.events[i].sym.dir = BranchDir::NotTaken;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I, OpKind};
    use jportal_ipt::{decode_packets, segment_stream};
    use jportal_jvm::{Jvm, JvmConfig};

    fn paper_fun_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Test", None, 0);
        let mut m = pb.method(c, "fun", 2, true);
        let else_ = m.label();
        let join = m.label();
        let odd = m.label();
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Eq, else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(1));
        m.emit(I::Iadd);
        m.emit(I::Istore(1));
        m.jump(join);
        m.bind(else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Isub);
        m.emit(I::Istore(1));
        m.bind(join);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Irem);
        m.branch_if(CmpKind::Ne, odd);
        m.emit(I::Iconst(1));
        m.emit(I::Ireturn);
        m.bind(odd);
        m.emit(I::Iconst(0));
        m.emit(I::Ireturn);
        let fun = m.finish();
        let mut main = pb.method(c, "main", 0, false);
        main.emit(I::Iconst(0));
        main.emit(I::Iconst(7));
        main.emit(I::InvokeStatic(fun));
        main.emit(I::Pop);
        main.emit(I::Return);
        let main = main.finish();
        pb.finish_with_entry(main).unwrap()
    }

    fn run_and_decode(
        program: &Program,
        cfg: JvmConfig,
    ) -> (Vec<BcSegment>, jportal_jvm::RunResult) {
        let r = Jvm::new(cfg).run(program);
        let traces = r.traces.as_ref().expect("tracing on");
        let packets = decode_packets(&traces.per_core[0].bytes);
        let raw = segment_stream(packets, &traces.per_core[0].losses, 0);
        let segs = raw
            .iter()
            .map(|s| decode_segment(program, &r.archive, s))
            .collect();
        (segs, r)
    }

    #[test]
    fn interpreted_decode_matches_ground_truth_exactly() {
        let program = paper_fun_program();
        let cfg = JvmConfig {
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        };
        let (segs, r) = run_and_decode(&program, cfg);
        assert_eq!(segs.len(), 1, "no loss expected");
        let decoded_ops: Vec<OpKind> = segs[0].events.iter().map(|e| e.sym.op).collect();
        let truth: Vec<OpKind> = r
            .truth
            .trace(jportal_ipt::ThreadId(0))
            .iter()
            .map(|e| program.method(e.method).insn(e.bci).op_kind())
            .collect();
        assert_eq!(decoded_ops, truth, "opcode sequences must agree");
        // All interpreted events have unknown method.
        assert!(segs[0].events.iter().all(|e| e.method.is_none()));
    }

    #[test]
    fn interpreted_branch_directions_come_from_tnt() {
        let program = paper_fun_program();
        let cfg = JvmConfig {
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        };
        let (segs, r) = run_and_decode(&program, cfg);
        let truth = r.truth.trace(jportal_ipt::ThreadId(0));
        for (i, e) in segs[0].events.iter().enumerate() {
            if matches!(e.sym.op, OpKind::Ifeq | OpKind::Ifne) {
                // Direction must be known and agree with what the truth
                // trace did next.
                assert_ne!(e.sym.dir, BranchDir::Unknown, "event {i} has direction");
                let t = &truth[i];
                let insn = program.method(t.method).insn(t.bci);
                let taken_target = insn.branch_targets()[0];
                let actually_taken = truth[i + 1].bci == taken_target;
                assert_eq!(e.sym.dir, BranchDir::from_taken(actually_taken));
            }
        }
    }

    /// A program whose hot method gets JIT-compiled, then keeps running.
    fn hot_loop_program(iters: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut h = pb.method(c, "hot", 1, true);
        let odd = h.label();
        h.emit(I::Iload(0));
        h.emit(I::Iconst(2));
        h.emit(I::Irem);
        h.branch_if(CmpKind::Ne, odd);
        h.emit(I::Iconst(100));
        h.emit(I::Ireturn);
        h.bind(odd);
        h.emit(I::Iconst(200));
        h.emit(I::Ireturn);
        let hot = h.finish();
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(iters));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, done);
        m.emit(I::Iload(0));
        m.emit(I::InvokeStatic(hot));
        m.emit(I::Pop);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let main = m.finish();
        pb.finish_with_entry(main).unwrap()
    }

    #[test]
    fn jit_decode_recovers_methods_and_bcis() {
        let program = hot_loop_program(60);
        let cfg = JvmConfig {
            c1_threshold: 5,
            c2_threshold: 20,
            ..JvmConfig::default()
        };
        let (segs, r) = run_and_decode(&program, cfg);
        assert!(r.compilations >= 1);
        let jit_events: Vec<&BcEvent> = segs
            .iter()
            .flat_map(|s| &s.events)
            .filter(|e| e.method.is_some())
            .collect();
        assert!(
            !jit_events.is_empty(),
            "compiled code must decode with known methods"
        );
        // Every JIT event's (method, bci) must be a real instruction whose
        // op kind matches the decoded symbol.
        for e in &jit_events {
            let insn = program.method(e.method.unwrap()).insn(e.bci.unwrap());
            assert_eq!(insn.op_kind(), e.sym.op);
        }
    }

    #[test]
    fn full_decoded_stream_matches_truth_even_across_modes() {
        let program = hot_loop_program(80);
        let cfg = JvmConfig {
            c1_threshold: 4,
            c2_threshold: 16,
            ..JvmConfig::default()
        };
        let (segs, r) = run_and_decode(&program, cfg);
        assert_eq!(segs.len(), 1, "big buffer: no loss");
        let decoded_ops: Vec<OpKind> = segs[0].events.iter().map(|e| e.sym.op).collect();
        let truth: Vec<OpKind> = r
            .truth
            .trace(jportal_ipt::ThreadId(0))
            .iter()
            .map(|e| program.method(e.method).insn(e.bci).op_kind())
            .collect();
        assert_eq!(
            decoded_ops, truth,
            "decode must be exact with pristine debug info"
        );
    }

    #[test]
    fn degraded_debug_info_loses_events_but_never_lies() {
        let program = hot_loop_program(80);
        let cfg = JvmConfig {
            c1_threshold: 4,
            c2_threshold: 16,
            jit: jportal_jvm::JitConfig {
                debug_degrade: 0.3,
                ..jportal_jvm::JitConfig::default()
            },
            ..JvmConfig::default()
        };
        let (segs, r) = run_and_decode(&program, cfg);
        let decoded: usize = segs.iter().map(|s| s.events.len()).sum();
        let truth_len = r.truth.trace(jportal_ipt::ThreadId(0)).len();
        assert!(decoded < truth_len, "degraded metadata drops events");
        // But whatever is decoded is still correct.
        for s in &segs {
            for e in &s.events {
                if let (Some(m), Some(b)) = (e.method, e.bci) {
                    assert_eq!(program.method(m).insn(b).op_kind(), e.sym.op);
                }
            }
        }
    }

    #[test]
    fn loss_segments_decode_independently() {
        let program = hot_loop_program(400);
        let cfg = JvmConfig {
            pt_buffer_capacity: 512,
            drain_bytes_per_kilocycle: 3,
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        };
        let (segs, _r) = run_and_decode(&program, cfg);
        assert!(segs.len() > 1, "loss must split the stream");
        let with_loss = segs.iter().filter(|s| s.loss_before.is_some()).count();
        assert!(with_loss >= 1);
        // Non-empty segments decode to valid events.
        let non_empty = segs.iter().filter(|s| !s.events.is_empty()).count();
        assert!(non_empty >= 2);
    }
}
