//! The end-to-end JPortal pipeline.
//!
//! Ties together trace segregation (§6), decoding (§3), ICFG projection
//! (§4) and missing-data recovery (§5) into one call:
//! [`JPortal::analyze`] takes what the online component collected — the
//! per-core PT traces with sideband and the exported machine-code
//! metadata — and produces, per thread, the reconstructed bytecode-level
//! control-flow trace with per-entry provenance.

use jportal_analysis::{
    lint_steps_journaled, lint_steps_summarized, AnalysisIndex, LintDiagnostic, LintStep,
    LintSummary, Rta, SummaryTable,
};
use jportal_bytecode::Program;
use jportal_cfg::abs::{AbstractNfa, DfaCacheStats};
use jportal_cfg::{Icfg, MatchScratch, Sym};
use jportal_corpus::{Corpus, CorpusBuilder};
use jportal_ipt::{CollectedTraces, CollectionStats, ThreadId};
use jportal_jvm::MetadataArchive;
use jportal_obs::{
    JournalEvent, Obs, ProfileConfig, Profiler, TelemetryConfig, TelemetryPlane, TelemetryReport,
};
use std::cell::RefCell;

use crate::decode::decode_segment;
use crate::quality::{FillQuality, QualityReport, ThreadQuality};
use crate::reconstruct::{project_segment_with, ProjectionConfig, ProjectionStats};
use crate::recover::{FillScratch, Recovery, RecoveryConfig, RecoveryStats, SegmentView};
pub use crate::recover::{TraceEntry, TraceOrigin};
use crate::threads::{segregate_with_stats, ThreadPiece};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JPortalConfig {
    /// Projection (§4) tuning.
    pub projection: ProjectionConfig,
    /// Recovery (§5) tuning.
    pub recovery: RecoveryConfig,
    /// Disable recovery entirely (ablation: what decoding alone gives).
    pub disable_recovery: bool,
    /// Build the ICFG over RTA-refined virtual-call targets instead of
    /// plain CHA. Sound for traces produced by executions rooted at
    /// [`Program::entry`] (call sites in methods RTA cannot reach keep
    /// their full CHA target set, so even foreign roots only lose the
    /// refinement, never correctness). Shrinks NFA nondeterminism during
    /// projection and the recovery search space.
    pub devirtualize: bool,
    /// Run the trace-feasibility linter over every reconstructed thread
    /// timeline and attach the diagnostics to the report.
    pub lint: bool,
    /// Build interprocedural method summaries (an abstract-interpretation
    /// fixpoint over the ICFG, see `jportal_analysis::summary`) and wire
    /// them through the pipeline: the §4 matcher screens restart
    /// candidates by method alphabet before the abstract-DFA probe, §5
    /// recovery pre-filters complete-segment candidates that provably
    /// cannot pass the hole's confirm scan, and the linter tracks the
    /// call stack across seams instead of resetting it. Reconstructed
    /// timelines are **identical** with this on or off (the matcher
    /// filter is subsumed by the abstract filter; prefiltered recovery
    /// candidates still rank exactly as before, they just skip the
    /// speculative scoring work — see `Recovery::with_summaries`) — only
    /// prune-rate diagnostics, journal decisions and lint precision
    /// change. Off is the ablation baseline.
    pub summaries: bool,
    /// Consult the persistent cross-run segment corpus (attached with
    /// [`JPortal::with_corpus_store`]) as a secondary recovery source:
    /// holes no in-run candidate can confirm are matched against the
    /// corpus's sharded anchor index before degrading to the fallback
    /// walk. Off by default — with the flag off (or no store attached)
    /// reports are byte-identical to the corpus-less pipeline.
    pub corpus: bool,
    /// Worker threads for the offline fan-out: `None` uses every core,
    /// `Some(1)` is the exact legacy sequential path (no threads spawned).
    ///
    /// The report is **identical for every setting** — parallel stages
    /// reassemble their results in deterministic order and recovery's
    /// parallel candidate scoring replays the sequential pruning decisions
    /// exactly.
    pub parallelism: Option<usize>,
    /// Record telemetry (metrics and spans) during analysis. Designed to
    /// be cheap enough to leave on in production: the hot matcher inner
    /// loop carries no probes at all, and every other site amortizes to a
    /// shard-striped relaxed atomic add. With `false`, every probe
    /// reduces to a single branch on a `None` handle — no allocation, no
    /// atomics, nothing recorded.
    pub observability: bool,
    /// Live telemetry plane (see `jportal_obs::plane`): periodic series
    /// snapshots published at pipeline stage boundaries, scrapeable
    /// while an analysis runs. `None` (the default) adds **nothing** —
    /// no plane, no ticks, no new atomics — and reports stay
    /// byte-identical to a build without the feature. `Some` implies an
    /// enabled recording handle even when
    /// [`JPortalConfig::observability`] is off (live telemetry without
    /// instruments would publish empty snapshots).
    pub telemetry: Option<TelemetryConfig>,
    /// Continuous self-profiling (see `jportal_obs::profile`): a
    /// background sampler snapshots every worker's span stack through a
    /// seqlock — the workers never block — and folds the samples into a
    /// weighted stack profile served as folded stacks, a flamegraph SVG
    /// and pprof-style JSON alongside `/metrics.json` when a telemetry
    /// plane is attached. `None` (the default) adds **nothing** beyond
    /// one relaxed load per span open; `Some` implies an enabled
    /// recording handle like [`JPortalConfig::telemetry`]. Reports are
    /// byte-identical with profiling on or off. With
    /// [`ProfileConfig::deterministic`] set, sampling is driven by
    /// plane-tick boundaries instead of wall time, so the folded
    /// profile is identical at any worker count.
    pub profiling: Option<ProfileConfig>,
}

impl Default for JPortalConfig {
    fn default() -> JPortalConfig {
        JPortalConfig {
            projection: ProjectionConfig::default(),
            recovery: RecoveryConfig::default(),
            disable_recovery: false,
            devirtualize: true,
            lint: true,
            summaries: true,
            corpus: false,
            parallelism: None,
            observability: true,
            telemetry: None,
            profiling: None,
        }
    }
}

/// Per-thread reconstruction result.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// The thread.
    pub thread: ThreadId,
    /// The reconstructed control-flow trace.
    pub entries: Vec<TraceEntry>,
    /// Hole time ranges `(first_ts, last_ts)` that recovery worked on.
    pub holes: Vec<(u64, u64)>,
    /// Projection statistics summed over segments.
    pub projection: ProjectionStats,
    /// Recovery statistics.
    pub recovery: RecoveryStats,
    /// Number of decoded segments.
    pub segments: usize,
    /// Feasibility-linter diagnostics over the reconstructed timeline
    /// (empty when linting is disabled or the timeline is clean).
    pub lint: Vec<LintDiagnostic>,
}

/// The full analysis result.
#[derive(Debug, Clone, Default)]
pub struct JPortalReport {
    /// Per-thread reconstructions, sorted by thread id.
    pub threads: Vec<ThreadReport>,
    /// Abstract-DFA transition-cache counters for this analysis
    /// (diagnostics; see [`DfaCacheStats`]).
    pub dfa_cache: DfaCacheStats,
    /// Per-core collection-side summary: what the online component
    /// exported and what it dropped (per-core lost bytes/packets,
    /// overflow spans, effective drain rate) before the offline pipeline
    /// ever ran.
    pub collection: CollectionStats,
    /// Per-fill confidence rollup (see [`crate::quality`]). Diagnostic,
    /// so excluded from report equality like `dfa_cache`/`collection`.
    pub quality: QualityReport,
}

/// Report equality deliberately ignores the telemetry fields —
/// [`JPortalReport::dfa_cache`], [`JPortalReport::collection`] and
/// [`JPortalReport::quality`].
/// The DFA cache counters depend on worker scheduling (two workers can
/// both miss on a key one of them is about to fill) and the collection
/// summary describes the *input* traces rather than the reconstruction;
/// only [`JPortalReport::threads`] is part of the determinism contract.
/// The same exclusion covers everything recorded through
/// [`JPortal::telemetry`]: metric values and span structure are
/// deterministic where documented, but timings never are.
impl PartialEq for JPortalReport {
    fn eq(&self, other: &JPortalReport) -> bool {
        self.threads == other.threads
    }
}

impl JPortalReport {
    /// The report for one thread.
    pub fn thread(&self, id: ThreadId) -> Option<&ThreadReport> {
        self.threads.iter().find(|t| t.thread == id)
    }

    /// Total reconstructed entries over all threads.
    pub fn total_entries(&self) -> usize {
        self.threads.iter().map(|t| t.entries.len()).sum()
    }

    /// Aggregated feasibility-linter summary over all threads.
    pub fn lint_summary(&self) -> LintSummary {
        let mut s = LintSummary::default();
        for t in &self.threads {
            s.merge(&LintSummary::of(&t.lint));
        }
        s
    }

    /// Entries by provenance: `(decoded, recovered, walked)`.
    pub fn provenance_counts(&self) -> (usize, usize, usize) {
        let mut d = 0;
        let mut r = 0;
        let mut w = 0;
        for t in &self.threads {
            for e in &t.entries {
                match e.origin {
                    TraceOrigin::Decoded => d += 1,
                    TraceOrigin::Recovered => r += 1,
                    TraceOrigin::Walked => w += 1,
                }
            }
        }
        (d, r, w)
    }
}

/// The JPortal offline analyzer.
///
/// # Examples
///
/// ```no_run
/// use jportal_bytecode::Program;
/// use jportal_core::JPortal;
/// use jportal_jvm::{Jvm, JvmConfig};
///
/// # fn example(program: &Program) {
/// let result = Jvm::new(JvmConfig::default()).run(program);
/// let jportal = JPortal::new(program);
/// let report = jportal.analyze(result.traces.as_ref().unwrap(), &result.archive);
/// for thread in &report.threads {
///     println!("{}: {} entries", thread.thread, thread.entries.len());
/// }
/// # }
/// ```
#[derive(Debug)]
pub struct JPortal<'p> {
    program: &'p Program,
    icfg: Icfg,
    /// Per-method static facts (dominators, loops), computed once before
    /// any parallel fan-out so every worker reads the same immutable
    /// index — part of the determinism contract.
    analysis: AnalysisIndex,
    /// Interprocedural method summaries, built once over the (possibly
    /// RTA-refined) ICFG and shared read-only by every worker; `None`
    /// when [`JPortalConfig::summaries`] is off.
    summaries: Option<SummaryTable>,
    config: JPortalConfig,
    /// Persistent cross-run segment corpus, shared read-only by every
    /// worker; consulted only when [`JPortalConfig::corpus`] is on.
    corpus: Option<std::sync::Arc<Corpus>>,
    /// Telemetry sink shared by every stage; inert when
    /// [`JPortalConfig::observability`] is off.
    obs: Obs,
    /// Live telemetry plane, present only when
    /// [`JPortalConfig::telemetry`] is on; ticked at stage boundaries.
    plane: Option<std::sync::Arc<TelemetryPlane>>,
    /// Span-stack sampling profiler, present only when
    /// [`JPortalConfig::profiling`] is on; stopped (sampler thread
    /// joined) when the analyzer drops.
    profiler: Option<std::sync::Arc<Profiler>>,
}

/// One harvested complete segment, ready for
/// [`jportal_corpus::CorpusBuilder::insert`]: symbols, packed
/// `(method, bci)` locations, projection seams.
type HarvestSeg = (Vec<Sym>, Vec<u64>, Vec<u32>);

/// Stops the sampler thread (and decrements the global profiling
/// enable-count, so span opens stop pushing frames) when the analyzer
/// goes away. Dropping mid-analysis is fine — workers only ever see the
/// flag flip, never a dangling stack.
impl Drop for JPortal<'_> {
    fn drop(&mut self) {
        if let Some(profiler) = &self.profiler {
            profiler.stop();
        }
    }
}

impl<'p> JPortal<'p> {
    /// Builds the analyzer (constructs the program's ICFG over RTA-refined
    /// call targets, plus the per-method static-fact index).
    pub fn new(program: &'p Program) -> JPortal<'p> {
        JPortal::with_config(program, JPortalConfig::default())
    }

    /// Builds the analyzer with explicit configuration.
    pub fn with_config(program: &'p Program, config: JPortalConfig) -> JPortal<'p> {
        let icfg = if config.devirtualize {
            let rta = Rta::analyze(program);
            Icfg::build_with_targets(program, &rta)
        } else {
            Icfg::build(program)
        };
        let summaries = config
            .summaries
            .then(|| SummaryTable::build(program, &icfg));
        let obs = Obs::new(
            config.observability || config.telemetry.is_some() || config.profiling.is_some(),
        );
        let plane = config
            .telemetry
            .map(|t| TelemetryPlane::new(obs.clone(), t));
        let profiler = config.profiling.map(Profiler::start);
        if let (Some(plane), Some(profiler)) = (&plane, &profiler) {
            // Deterministic profiles sample at plane ticks; wall-clock
            // profiles ride along so `/profile/*` can serve snapshots.
            plane.attach_profiler(profiler.clone());
        }
        JPortal {
            program,
            icfg,
            analysis: AnalysisIndex::build(program),
            summaries,
            corpus: None,
            obs,
            plane,
            profiler,
            config,
        }
    }

    /// Attaches a persistent segment corpus (see `jportal-corpus`).
    /// Consulted during recovery only when [`JPortalConfig::corpus`] is
    /// also on; the corpus must have been indexed with the same
    /// `anchor_len` as [`JPortalConfig::recovery`] to contribute. A
    /// corpus is program-version-specific: method ids and bytecode
    /// indices are only meaningful against the program that produced
    /// them.
    pub fn with_corpus_store(mut self, corpus: std::sync::Arc<Corpus>) -> JPortal<'p> {
        self.corpus = Some(corpus);
        self
    }

    /// The attached corpus store, if any.
    pub fn corpus_store(&self) -> Option<&std::sync::Arc<Corpus>> {
        self.corpus.as_ref()
    }

    /// The ICFG (exposed for clients that want to inspect projections).
    pub fn icfg(&self) -> &Icfg {
        &self.icfg
    }

    /// The static-fact index (exposed for clients and diagnostics).
    pub fn analysis(&self) -> &AnalysisIndex {
        &self.analysis
    }

    /// The interprocedural summary table, when
    /// [`JPortalConfig::summaries`] is on (exposed for clients and
    /// diagnostics).
    pub fn summaries(&self) -> Option<&SummaryTable> {
        self.summaries.as_ref()
    }

    /// The telemetry handle (for registering client metrics or opening
    /// client spans around calls into the analyzer).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The live telemetry plane, when [`JPortalConfig::telemetry`] is
    /// on. Clone the `Arc` into anything that should feed or serve it:
    /// `TelemetryServer::bind` for scraping, `Jvm::with_telemetry` so
    /// collection-side ring drains tick it too.
    pub fn telemetry_plane(&self) -> Option<&std::sync::Arc<TelemetryPlane>> {
        self.plane.as_ref()
    }

    /// The sampling profiler, when [`JPortalConfig::profiling`] is on.
    /// `Profiler::snapshot` at any point gives the profile so far;
    /// `ProfileSnapshot::folded_text` / `jportal_obs::flame_svg` render
    /// it, and an attached telemetry plane serves it live.
    pub fn profiler(&self) -> Option<&std::sync::Arc<Profiler>> {
        self.profiler.as_ref()
    }

    /// One stage-boundary tick of the live plane (no-op without one).
    /// In deterministic profiling mode the stage boundary *is* the
    /// sample point: with a plane attached the plane's tick samples
    /// (keeping sample indices aligned with published snapshot
    /// sequence numbers), otherwise the profiler samples here directly.
    fn tick_stage(&self) {
        if let Some(p) = &self.plane {
            p.tick_stage();
        } else if let Some(pr) = &self.profiler {
            if pr.config().deterministic {
                pr.sample_now();
            }
        }
    }

    /// Snapshot of everything recorded so far: metric values plus the
    /// span tree. Export with [`TelemetryReport::chrome_trace_json`],
    /// [`TelemetryReport::metrics_json`] or
    /// [`TelemetryReport::summary_table`]. Empty when
    /// [`JPortalConfig::observability`] is off.
    pub fn telemetry(&self) -> TelemetryReport {
        self.obs.telemetry()
    }

    /// Runs the full offline analysis.
    ///
    /// The work fans out over [`JPortalConfig::parallelism`] workers at
    /// two levels: decode+projection runs over every `(thread, piece)`
    /// pair of the whole trace at once (one global work list, so a core
    /// never idles because "its" thread finished early), then per-thread
    /// assembly — compaction, recovery, entry emission — fans out across
    /// threads. Recovery itself stays sequential over a thread's holes
    /// (each fill extends the timeline the next hole's ranking reads) but
    /// parallelizes candidate scoring internally. Results are reassembled
    /// in deterministic order at every join, so the report is identical
    /// for every worker count.
    pub fn analyze(&self, traces: &CollectedTraces, archive: &MetadataArchive) -> JPortalReport {
        self.analyze_impl(traces, archive, None)
    }

    /// [`JPortal::analyze`] plus corpus harvesting: every decoded
    /// complete segment of this run is inserted (dedup-aware) into
    /// `builder` after analysis, so the caller can persist it for future
    /// runs — the cross-run accumulation loop is load → analyze_harvest
    /// → save. Harvesting reads the same per-thread segment data the
    /// report is built from, in deterministic thread order after the
    /// parallel joins, so the builder's contents are identical at any
    /// worker count; the report itself is unchanged by harvesting.
    pub fn analyze_harvest(
        &self,
        traces: &CollectedTraces,
        archive: &MetadataArchive,
        builder: &mut CorpusBuilder,
    ) -> JPortalReport {
        self.analyze_impl(traces, archive, Some(builder))
    }

    fn analyze_impl(
        &self,
        traces: &CollectedTraces,
        archive: &MetadataArchive,
        mut harvest: Option<&mut CorpusBuilder>,
    ) -> JPortalReport {
        let obs = &self.obs;
        let _analyze = obs
            .span("pipeline", "analyze")
            .record_sketch(&obs.registry().sketch("core.analyze.wall_us"));
        let workers = jportal_par::effective_workers(self.config.parallelism);
        let anfa = AbstractNfa::with_metrics(self.program, &self.icfg, obs.registry());
        if workers > 1 {
            // One up-front pass fills the ANFA closure caches so the
            // projection workers start hot instead of racing to compute
            // the same entries.
            let _prewarm = obs.span("pipeline", "prewarm").arg("workers", workers);
            anfa.prewarm(workers);
        }

        // Collection-side telemetry: what the online component exported
        // and dropped, per core, before this pipeline ever saw the data.
        let collection = CollectionStats::of(traces);
        if obs.is_enabled() {
            collection.record_into(obs.registry());
            CollectionStats::emit_overflow_spans(traces, obs);
        }

        let (per_thread, decode_stats) = {
            let _segregate = obs.span("collect", "segregate").arg("workers", workers);
            segregate_with_stats(traces, workers)
        };
        let mut thread_pieces: Vec<(ThreadId, Vec<ThreadPiece>)> = per_thread.into_iter().collect();
        thread_pieces.sort_by_key(|(t, _)| *t);
        // Stream-decode telemetry: summed in core order inside
        // `segregate_with_stats`, a pure function of the trace bytes —
        // identical at every parallelism setting.
        if obs.is_enabled() {
            let reg = obs.registry();
            reg.counter("ipt.decode.resync_bytes")
                .add(decode_stats.resync_bytes);
            reg.counter("ipt.decode.packets").add(decode_stats.packets);
        }
        self.tick_stage();

        // Level 1: decode + project every (thread, piece) pair globally.
        let work: Vec<(usize, usize)> = thread_pieces
            .iter()
            .enumerate()
            .flat_map(|(ti, (_, pieces))| (0..pieces.len()).map(move |pi| (ti, pi)))
            .collect();
        // Each worker thread keeps one `MatchScratch` for the whole pass
        // (workers are fresh scoped threads per par_map call, so the
        // thread-local starts empty and is reused across every piece the
        // worker claims — no per-segment frontier allocations).
        thread_local! {
            static PROJ_SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::new());
        }
        let decode_sketch = obs.registry().sketch("core.decode.wall_us");
        let project_sketch = obs.registry().sketch("core.project.wall_us");
        let arena_hw = obs.registry().gauge("core.project.scratch_arena_hw");
        // Both fan-outs share one queue gauge and collect-lock counter:
        // the pipeline never runs two fan-outs concurrently, so the
        // gauge always describes the active one.
        let par_metrics = jportal_par::ParMetrics::register(obs.registry());
        let projected: Vec<(SegmentView, ProjectionStats)> =
            jportal_par::par_map_metered(workers, &work, &par_metrics, |_, &(ti, pi)| {
                let piece = &thread_pieces[ti].1[pi];
                // `piece.segment` carries its capture core from the
                // per-core drain path, so the decoded segment is already
                // attributed correctly. Worker threads start with an
                // empty span stack, so the parent is pinned explicitly —
                // the span tree is identical under any `parallelism`.
                let decoded = {
                    let _s = obs
                        .span("decode", "decode_segment")
                        .parent("analyze")
                        .arg("core", piece.core)
                        .record_sketch(&decode_sketch);
                    decode_segment(self.program, archive, &piece.segment)
                };
                debug_assert_eq!(decoded.core, piece.core);
                let proj = PROJ_SCRATCH.with(|s| {
                    let mut scratch = s.borrow_mut();
                    let _s = obs
                        .span("project", "project_segment")
                        .parent("analyze")
                        .arg("events", decoded.events.len())
                        .record_sketch(&project_sketch);
                    let proj = project_segment_with(
                        self.program,
                        &self.icfg,
                        &anfa,
                        &decoded.events,
                        &self.config.projection,
                        self.summaries.as_ref(),
                        &mut scratch,
                    );
                    arena_hw.set_max(scratch.arena_high_water() as u64);
                    proj
                });
                // Flight recorder: one `SegmentMatched` per piece, keyed
                // (thread, piece index, 0). Emission happens inside the
                // worker, but keys depend only on the work item — the
                // sorted snapshot is identical at any worker count.
                let mut rec = obs.journal_recorder(thread_pieces[ti].0 .0);
                if rec.is_enabled() {
                    rec.set_segment(pi as u32);
                    rec.emit(JournalEvent::SegmentMatched {
                        events: decoded.events.len() as u32,
                        matched: proj.stats.matched as u32,
                        restarts: proj.stats.restarts as u32,
                        frontier_width: proj.stats.frontier_width_max as u32,
                        candidates_tried: proj.stats.candidates_tried as u32,
                        candidates_pruned: proj.stats.candidates_pruned as u32,
                        dfa_path: proj.stats.dfa_runs > 0,
                    });
                }
                (
                    SegmentView {
                        events: decoded.events,
                        nodes: proj.nodes,
                        breaks: proj.breaks,
                        loss_before: decoded.loss_before,
                    },
                    proj.stats,
                )
            });

        // Regroup per thread, reducing projection statistics in piece
        // order (merge is commutative, but a fixed order keeps the code
        // trivially deterministic).
        let mut grouped: Vec<(ThreadId, Vec<SegmentView>, ProjectionStats)> = thread_pieces
            .iter()
            .map(|(t, _)| (*t, Vec::new(), ProjectionStats::default()))
            .collect();
        for (&(ti, _), (view, stats)) in work.iter().zip(projected) {
            grouped[ti].1.push(view);
            grouped[ti].2.merge(&stats);
        }
        self.tick_stage();

        // Level 2: per-thread assembly, fanned out across threads. When
        // the thread fan-out already saturates the workers, recovery's
        // inner candidate scoring stays sequential to avoid
        // oversubscription; with few threads the idle workers go to it.
        let inner_workers = if grouped.len() >= workers { 1 } else { workers };
        let harvesting = harvest.is_some();
        let assembled: Vec<(ThreadReport, ThreadQuality, Option<Vec<HarvestSeg>>)> =
            jportal_par::par_map_owned_metered(
                workers,
                grouped,
                &par_metrics,
                |_, (thread, views, projection)| {
                    self.assemble_thread(thread, views, projection, inner_workers, harvesting)
                },
            );
        let mut threads = Vec::with_capacity(assembled.len());
        let mut quality = QualityReport::default();
        for (t, q, h) in assembled {
            // Harvest inserts happen here — after the join, in sorted
            // thread order — so the builder's segment order (and the
            // index built from it) is identical at any worker count.
            if let (Some(builder), Some(segs)) = (harvest.as_deref_mut(), h) {
                for (syms, locs, breaks) in segs {
                    builder.insert(&syms, &locs, &breaks);
                }
            }
            threads.push(t);
            quality.threads.push(q);
        }

        // Per-stage totals are summed *after* the joins, from the
        // deterministically merged per-thread statistics, rather than
        // bumped inside workers — so these counters are part of the
        // determinism contract (unlike the scheduling-dependent
        // `cfg.dfa.*` cache counters, which record inline).
        if obs.is_enabled() {
            let reg = obs.registry();
            let sum = |f: fn(&ThreadReport) -> usize| -> u64 {
                threads.iter().map(|t| f(t) as u64).sum()
            };
            reg.counter("core.threads").add(threads.len() as u64);
            reg.counter("core.segments").add(sum(|t| t.segments));
            reg.counter("core.entries").add(sum(|t| t.entries.len()));
            reg.counter("core.project.matched")
                .add(sum(|t| t.projection.matched));
            reg.counter("core.project.unmatched")
                .add(sum(|t| t.projection.unmatched));
            reg.counter("core.project.restarts")
                .add(sum(|t| t.projection.restarts));
            reg.counter("core.project.candidates_tried")
                .add(sum(|t| t.projection.candidates_tried));
            reg.counter("core.project.candidates_pruned")
                .add(sum(|t| t.projection.candidates_pruned));
            reg.counter("core.project.summary_pruned")
                .add(sum(|t| t.projection.summary_pruned));
            reg.counter("core.recover.holes")
                .add(sum(|t| t.recovery.holes));
            reg.counter("core.recover.filled_from_cs")
                .add(sum(|t| t.recovery.filled_from_cs));
            reg.counter("core.recover.filled_by_walk")
                .add(sum(|t| t.recovery.filled_by_walk));
            reg.counter("core.recover.unfilled")
                .add(sum(|t| t.recovery.unfilled));
            reg.counter("core.recover.recovered_events")
                .add(sum(|t| t.recovery.recovered_events));
            reg.counter("core.recover.candidates")
                .add(sum(|t| t.recovery.candidates));
            reg.counter("core.recover.pruned_tier1")
                .add(sum(|t| t.recovery.pruned_tier1));
            reg.counter("core.recover.pruned_tier2")
                .add(sum(|t| t.recovery.pruned_tier2));
            reg.counter("core.recover.summary_pruned")
                .add(sum(|t| t.recovery.summary_pruned));
            reg.counter("core.recover.fallback_walks")
                .add(sum(|t| t.recovery.fallback_walks));
            reg.counter("core.recover.budget_truncations")
                .add(sum(|t| t.recovery.budget_truncations));
            reg.counter("core.corpus.lookups")
                .add(sum(|t| t.recovery.corpus_lookups));
            reg.counter("core.corpus.candidates")
                .add(sum(|t| t.recovery.corpus_candidates));
            reg.counter("core.corpus.hits")
                .add(sum(|t| t.recovery.corpus_hits));
            reg.counter("core.corpus.misses")
                .add(sum(|t| t.recovery.corpus_misses));
            if let Some(corpus) = self.corpus.as_deref() {
                reg.gauge("core.corpus.segments")
                    .set_max(corpus.segment_count() as u64);
            }
            if let Some(builder) = harvest.as_ref() {
                // Builder lifetime totals (may span several analyses):
                // gauges, not counters, so re-recording never inflates.
                reg.gauge("core.corpus.harvest_inserted")
                    .set_max(builder.inserted());
                reg.gauge("core.corpus.harvest_deduped")
                    .set_max(builder.deduped());
            }
            reg.gauge("cfg.dfa.interned")
                .set_max(anfa.dfa_stats().interned);
        }

        // `thread_pieces` was sorted by thread id and every join above is
        // order-preserving, so the report is already deterministically
        // sorted.
        let mut dfa_cache = anfa.dfa_stats();
        // The summary filter runs in front of the DFA, so its prune count
        // belongs with the DFA cache diagnostics; summed from the
        // deterministically merged per-thread stats.
        dfa_cache.summary_pruned = threads
            .iter()
            .map(|t| t.projection.summary_pruned as u64)
            .sum();
        // Close the analyze span before the final stage tick so this
        // run's `core.analyze.wall_us` is in the published snapshot.
        drop(_analyze);
        self.tick_stage();
        JPortalReport {
            threads,
            dfa_cache,
            collection,
            quality,
        }
    }

    /// Compacts one thread's projected segments, recovers across lossy
    /// boundaries and emits the final timeline (sequential over holes by
    /// construction: each fill's context feeds the next).
    fn assemble_thread(
        &self,
        thread: ThreadId,
        views: Vec<SegmentView>,
        projection: ProjectionStats,
        recovery_workers: usize,
        harvest: bool,
    ) -> (ThreadReport, ThreadQuality, Option<Vec<HarvestSeg>>) {
        let obs = &self.obs;
        let mut recorder = obs.journal_recorder(thread.0);
        let _assemble = obs
            .span("recover", "assemble_thread")
            .parent("analyze")
            .arg("thread", thread.0)
            .record_sketch(&obs.registry().sketch("core.assemble.wall_us"));
        // Drop empty segments but keep their loss marks attached to
        // the following segment.
        let mut compacted: Vec<SegmentView> = Vec::new();
        let mut pending_loss = None;
        for mut v in views {
            if v.loss_before.is_some() {
                pending_loss = v.loss_before;
            }
            if v.events.is_empty() {
                continue;
            }
            v.loss_before = pending_loss.take();
            compacted.push(v);
        }

        // Assemble the timeline, recovering across lossy boundaries.
        let mut recovery_stats = RecoveryStats::default();
        let mut holes = Vec::new();
        let mut recovery =
            Recovery::new(self.program, &self.icfg, &compacted, self.config.recovery)
                .with_workers(recovery_workers)
                .with_dominators(&self.analysis);
        if let Some(table) = self.summaries.as_ref() {
            recovery = recovery.with_summaries(table);
        }
        if self.config.corpus {
            if let Some(corpus) = self.corpus.as_deref() {
                recovery = recovery.with_corpus(corpus);
            }
        }
        let mut entries: Vec<TraceEntry> = Vec::new();
        let mut steps: Vec<LintStep> = Vec::new();
        let mut fills: Vec<FillQuality> = Vec::new();
        // One walk scratch for all of this thread's holes.
        let mut fill_scratch = FillScratch::new();
        let fill_sketch = obs.registry().sketch("core.recover.fill_wall_us");
        for i in 0..compacted.len() {
            if i > 0 {
                if let Some(loss) = compacted[i].loss_before {
                    holes.push((loss.first_ts, loss.last_ts));
                    if !self.config.disable_recovery {
                        // Parent defaults to the enclosing
                        // `assemble_thread` span via the worker's stack.
                        let _fill = obs
                            .span("recover", "fill_hole")
                            .arg("thread", thread.0)
                            .arg("hole", holes.len())
                            .record_sketch(&fill_sketch);
                        let fill = recovery.fill_hole_journaled(
                            &compacted,
                            i - 1,
                            i,
                            Some(loss),
                            &mut recovery_stats,
                            &mut fill_scratch,
                            &mut recorder,
                            holes.len() as u32,
                        );
                        fills.push(FillQuality {
                            hole: holes.len(),
                            origin: fill.entries.first().map(|e| e.origin),
                            confidence: fill.confidence,
                            entries: fill.entries.len(),
                        });
                        entries.extend(fill.entries);
                        steps.extend(fill.steps);
                    }
                }
            }
            let seg = &compacted[i];
            for (idx, (e, node)) in seg.events.iter().zip(&seg.nodes).enumerate() {
                let (method, bci) = match node {
                    Some(n) => {
                        let (m, b) = self.icfg.location(*n);
                        (Some(m), Some(b))
                    }
                    None => (e.method, e.bci),
                };
                entries.push(TraceEntry {
                    op: e.sym.op,
                    method,
                    bci,
                    ts: e.ts,
                    origin: TraceOrigin::Decoded,
                });
                // Segment starts are always seams (a hole or a fresh trace
                // buffer precedes them, so events may be missing — lossy);
                // within a segment, projection restarts (`breaks`) mark
                // positions with no edge guarantee to their predecessor,
                // but every hardware-observed event in between is present.
                steps.push(LintStep {
                    node: *node,
                    op: e.sym.op,
                    dir: e.sym.dir,
                    boundary: idx == 0 || seg.breaks.binary_search(&idx).is_ok(),
                    lossy: idx == 0,
                });
            }
        }

        obs.registry()
            .gauge("core.recover.fill_scratch_hw")
            .set_max(fill_scratch.high_water() as u64);

        let lint = if self.config.lint {
            if obs.is_enabled() {
                // Lint breaks go under the reserved segment key so they
                // sort after every per-segment decision for the thread.
                recorder.set_segment(jportal_obs::journal::LINT_SEGMENT);
                lint_steps_journaled(
                    self.program,
                    &self.icfg,
                    &steps,
                    self.summaries.as_ref(),
                    obs,
                    &mut recorder,
                )
            } else {
                lint_steps_summarized(self.program, &self.icfg, &steps, self.summaries.as_ref())
            }
        } else {
            Vec::new()
        };

        // Harvest this thread's decoded complete segments for the
        // persistent corpus: locations resolved exactly as the emitted
        // entries above (projected node first, raw decode fallback), so
        // a corpus fill reproduces what in-run recovery would emit.
        let harvested = harvest.then(|| {
            compacted
                .iter()
                .map(|seg| {
                    let syms: Vec<Sym> = seg.events.iter().map(|e| e.sym).collect();
                    let locs: Vec<u64> = seg
                        .events
                        .iter()
                        .zip(&seg.nodes)
                        .map(|(e, node)| {
                            let (m, b) = match node {
                                Some(n) => {
                                    let (m, b) = self.icfg.location(*n);
                                    (Some(m), Some(b))
                                }
                                None => (e.method, e.bci),
                            };
                            jportal_corpus::pack_loc(m.map(|m| m.0), b.map(|b| b.0))
                        })
                        .collect();
                    let breaks: Vec<u32> = seg.breaks.iter().map(|&i| i as u32).collect();
                    (syms, locs, breaks)
                })
                .collect()
        });

        (
            ThreadReport {
                thread,
                entries,
                holes,
                projection,
                recovery: recovery_stats,
                segments: compacted.len(),
                lint,
            },
            ThreadQuality { thread, fills },
            harvested,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};
    use jportal_jvm::runtime::{Jvm, JvmConfig};

    fn workload() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut h = pb.method(c, "helper", 1, true);
        let odd = h.label();
        h.emit(I::Iload(0));
        h.emit(I::Iconst(2));
        h.emit(I::Irem);
        h.branch_if(CmpKind::Ne, odd);
        h.emit(I::Iconst(10));
        h.emit(I::Ireturn);
        h.bind(odd);
        h.emit(I::Iconst(20));
        h.emit(I::Ireturn);
        let helper = h.finish();
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(50));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, done);
        m.emit(I::Iload(0));
        m.emit(I::InvokeStatic(helper));
        m.emit(I::Pop);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let main = m.finish();
        pb.finish_with_entry(main).unwrap()
    }

    use jportal_bytecode::Program;

    #[test]
    fn clean_run_reconstructs_everything_decoded() {
        let p = workload();
        let r = Jvm::new(JvmConfig {
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        })
        .run(&p);
        let jp = JPortal::new(&p);
        let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
        assert_eq!(report.threads.len(), 1);
        let t = &report.threads[0];
        let truth_len = r.truth.trace(ThreadId(0)).len();
        assert_eq!(t.entries.len(), truth_len, "lossless run: 1:1 entries");
        let (d, rec, w) = report.provenance_counts();
        assert_eq!(d, truth_len);
        assert_eq!(rec + w, 0);
        // Every entry's location must match the truth exactly.
        for (e, truth) in t.entries.iter().zip(r.truth.trace(ThreadId(0))) {
            assert_eq!(e.method, Some(truth.method));
            assert_eq!(e.bci, Some(truth.bci));
        }
    }

    #[test]
    fn lossy_run_recovers_some_entries() {
        let p = workload();
        let r = Jvm::new(JvmConfig {
            pt_buffer_capacity: 640,
            drain_bytes_per_kilocycle: 6,
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        })
        .run(&p);
        let traces = r.traces.as_ref().unwrap();
        assert!(
            !traces.per_core[0].losses.is_empty(),
            "this configuration must lose data"
        );
        let jp = JPortal::new(&p);
        let report = jp.analyze(traces, &r.archive);
        let t = &report.threads[0];
        assert!(t.recovery.holes > 0);
        assert!(!t.holes.is_empty());
        let (_d, rec, w) = report.provenance_counts();
        assert!(rec + w > 0, "recovery must contribute entries");
    }

    #[test]
    fn disable_recovery_ablation() {
        let p = workload();
        let r = Jvm::new(JvmConfig {
            pt_buffer_capacity: 640,
            drain_bytes_per_kilocycle: 6,
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        })
        .run(&p);
        let jp = JPortal::with_config(
            &p,
            JPortalConfig {
                disable_recovery: true,
                ..JPortalConfig::default()
            },
        );
        let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
        let (_, rec, w) = report.provenance_counts();
        assert_eq!(rec + w, 0);
    }

    #[test]
    fn jit_mode_entries_carry_locations() {
        let p = workload();
        let r = Jvm::new(JvmConfig {
            c1_threshold: 4,
            c2_threshold: 12,
            ..JvmConfig::default()
        })
        .run(&p);
        assert!(r.compilations > 0);
        let jp = JPortal::new(&p);
        let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
        let t = &report.threads[0];
        let with_loc = t
            .entries
            .iter()
            .filter(|e| e.method.is_some() && e.bci.is_some())
            .count();
        assert!(
            with_loc as f64 / t.entries.len() as f64 > 0.95,
            "nearly all entries should be located"
        );
    }
}
