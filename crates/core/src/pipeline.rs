//! The end-to-end JPortal pipeline.
//!
//! Ties together trace segregation (§6), decoding (§3), ICFG projection
//! (§4) and missing-data recovery (§5) into one call:
//! [`JPortal::analyze`] takes what the online component collected — the
//! per-core PT traces with sideband and the exported machine-code
//! metadata — and produces, per thread, the reconstructed bytecode-level
//! control-flow trace with per-entry provenance.

use jportal_analysis::{lint_steps, AnalysisIndex, LintDiagnostic, LintStep, LintSummary, Rta};
use jportal_bytecode::Program;
use jportal_cfg::abs::{AbstractNfa, DfaCacheStats};
use jportal_cfg::{Icfg, MatchScratch};
use jportal_ipt::{CollectedTraces, ThreadId};
use jportal_jvm::MetadataArchive;
use std::cell::RefCell;

use crate::decode::decode_segment;
use crate::reconstruct::{project_segment_with, ProjectionConfig, ProjectionStats};
use crate::recover::{FillScratch, Recovery, RecoveryConfig, RecoveryStats, SegmentView};
pub use crate::recover::{TraceEntry, TraceOrigin};
use crate::threads::{segregate, ThreadPiece};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JPortalConfig {
    /// Projection (§4) tuning.
    pub projection: ProjectionConfig,
    /// Recovery (§5) tuning.
    pub recovery: RecoveryConfig,
    /// Disable recovery entirely (ablation: what decoding alone gives).
    pub disable_recovery: bool,
    /// Build the ICFG over RTA-refined virtual-call targets instead of
    /// plain CHA. Sound for traces produced by executions rooted at
    /// [`Program::entry`] (call sites in methods RTA cannot reach keep
    /// their full CHA target set, so even foreign roots only lose the
    /// refinement, never correctness). Shrinks NFA nondeterminism during
    /// projection and the recovery search space.
    pub devirtualize: bool,
    /// Run the trace-feasibility linter over every reconstructed thread
    /// timeline and attach the diagnostics to the report.
    pub lint: bool,
    /// Worker threads for the offline fan-out: `None` uses every core,
    /// `Some(1)` is the exact legacy sequential path (no threads spawned).
    ///
    /// The report is **identical for every setting** — parallel stages
    /// reassemble their results in deterministic order and recovery's
    /// parallel candidate scoring replays the sequential pruning decisions
    /// exactly.
    pub parallelism: Option<usize>,
}

impl Default for JPortalConfig {
    fn default() -> JPortalConfig {
        JPortalConfig {
            projection: ProjectionConfig::default(),
            recovery: RecoveryConfig::default(),
            disable_recovery: false,
            devirtualize: true,
            lint: true,
            parallelism: None,
        }
    }
}

/// Per-thread reconstruction result.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// The thread.
    pub thread: ThreadId,
    /// The reconstructed control-flow trace.
    pub entries: Vec<TraceEntry>,
    /// Hole time ranges `(first_ts, last_ts)` that recovery worked on.
    pub holes: Vec<(u64, u64)>,
    /// Projection statistics summed over segments.
    pub projection: ProjectionStats,
    /// Recovery statistics.
    pub recovery: RecoveryStats,
    /// Number of decoded segments.
    pub segments: usize,
    /// Feasibility-linter diagnostics over the reconstructed timeline
    /// (empty when linting is disabled or the timeline is clean).
    pub lint: Vec<LintDiagnostic>,
}

/// The full analysis result.
#[derive(Debug, Clone, Default)]
pub struct JPortalReport {
    /// Per-thread reconstructions, sorted by thread id.
    pub threads: Vec<ThreadReport>,
    /// Abstract-DFA transition-cache counters for this analysis
    /// (diagnostics; see [`DfaCacheStats`]).
    pub dfa_cache: DfaCacheStats,
}

/// Report equality deliberately ignores [`JPortalReport::dfa_cache`]: the
/// cache counters depend on worker scheduling (two workers can both miss
/// on a key one of them is about to fill), while everything else in the
/// report is part of the determinism contract.
impl PartialEq for JPortalReport {
    fn eq(&self, other: &JPortalReport) -> bool {
        self.threads == other.threads
    }
}

impl JPortalReport {
    /// The report for one thread.
    pub fn thread(&self, id: ThreadId) -> Option<&ThreadReport> {
        self.threads.iter().find(|t| t.thread == id)
    }

    /// Total reconstructed entries over all threads.
    pub fn total_entries(&self) -> usize {
        self.threads.iter().map(|t| t.entries.len()).sum()
    }

    /// Aggregated feasibility-linter summary over all threads.
    pub fn lint_summary(&self) -> LintSummary {
        let mut s = LintSummary::default();
        for t in &self.threads {
            s.merge(&LintSummary::of(&t.lint));
        }
        s
    }

    /// Entries by provenance: `(decoded, recovered, walked)`.
    pub fn provenance_counts(&self) -> (usize, usize, usize) {
        let mut d = 0;
        let mut r = 0;
        let mut w = 0;
        for t in &self.threads {
            for e in &t.entries {
                match e.origin {
                    TraceOrigin::Decoded => d += 1,
                    TraceOrigin::Recovered => r += 1,
                    TraceOrigin::Walked => w += 1,
                }
            }
        }
        (d, r, w)
    }
}

/// The JPortal offline analyzer.
///
/// # Examples
///
/// ```no_run
/// use jportal_bytecode::Program;
/// use jportal_core::JPortal;
/// use jportal_jvm::{Jvm, JvmConfig};
///
/// # fn example(program: &Program) {
/// let result = Jvm::new(JvmConfig::default()).run(program);
/// let jportal = JPortal::new(program);
/// let report = jportal.analyze(result.traces.as_ref().unwrap(), &result.archive);
/// for thread in &report.threads {
///     println!("{}: {} entries", thread.thread, thread.entries.len());
/// }
/// # }
/// ```
#[derive(Debug)]
pub struct JPortal<'p> {
    program: &'p Program,
    icfg: Icfg,
    /// Per-method static facts (dominators, loops), computed once before
    /// any parallel fan-out so every worker reads the same immutable
    /// index — part of the determinism contract.
    analysis: AnalysisIndex,
    config: JPortalConfig,
}

impl<'p> JPortal<'p> {
    /// Builds the analyzer (constructs the program's ICFG over RTA-refined
    /// call targets, plus the per-method static-fact index).
    pub fn new(program: &'p Program) -> JPortal<'p> {
        JPortal::with_config(program, JPortalConfig::default())
    }

    /// Builds the analyzer with explicit configuration.
    pub fn with_config(program: &'p Program, config: JPortalConfig) -> JPortal<'p> {
        let icfg = if config.devirtualize {
            let rta = Rta::analyze(program);
            Icfg::build_with_targets(program, &rta)
        } else {
            Icfg::build(program)
        };
        JPortal {
            program,
            icfg,
            analysis: AnalysisIndex::build(program),
            config,
        }
    }

    /// The ICFG (exposed for clients that want to inspect projections).
    pub fn icfg(&self) -> &Icfg {
        &self.icfg
    }

    /// The static-fact index (exposed for clients and diagnostics).
    pub fn analysis(&self) -> &AnalysisIndex {
        &self.analysis
    }

    /// Runs the full offline analysis.
    ///
    /// The work fans out over [`JPortalConfig::parallelism`] workers at
    /// two levels: decode+projection runs over every `(thread, piece)`
    /// pair of the whole trace at once (one global work list, so a core
    /// never idles because "its" thread finished early), then per-thread
    /// assembly — compaction, recovery, entry emission — fans out across
    /// threads. Recovery itself stays sequential over a thread's holes
    /// (each fill extends the timeline the next hole's ranking reads) but
    /// parallelizes candidate scoring internally. Results are reassembled
    /// in deterministic order at every join, so the report is identical
    /// for every worker count.
    pub fn analyze(&self, traces: &CollectedTraces, archive: &MetadataArchive) -> JPortalReport {
        let workers = jportal_par::effective_workers(self.config.parallelism);
        let anfa = AbstractNfa::new(self.program, &self.icfg);
        if workers > 1 {
            // One up-front pass fills the ANFA closure caches so the
            // projection workers start hot instead of racing to compute
            // the same entries.
            anfa.prewarm(workers);
        }

        let mut thread_pieces: Vec<(ThreadId, Vec<ThreadPiece>)> =
            segregate(traces).into_iter().collect();
        thread_pieces.sort_by_key(|(t, _)| *t);

        // Level 1: decode + project every (thread, piece) pair globally.
        let work: Vec<(usize, usize)> = thread_pieces
            .iter()
            .enumerate()
            .flat_map(|(ti, (_, pieces))| (0..pieces.len()).map(move |pi| (ti, pi)))
            .collect();
        // Each worker thread keeps one `MatchScratch` for the whole pass
        // (workers are fresh scoped threads per par_map call, so the
        // thread-local starts empty and is reused across every piece the
        // worker claims — no per-segment frontier allocations).
        thread_local! {
            static PROJ_SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::new());
        }
        let projected: Vec<(SegmentView, ProjectionStats)> =
            jportal_par::par_map(workers, &work, |_, &(ti, pi)| {
                let piece = &thread_pieces[ti].1[pi];
                // `piece.segment` carries its capture core from the
                // per-core drain path, so the decoded segment is already
                // attributed correctly.
                let decoded = decode_segment(self.program, archive, &piece.segment);
                debug_assert_eq!(decoded.core, piece.core);
                let proj = PROJ_SCRATCH.with(|s| {
                    project_segment_with(
                        self.program,
                        &self.icfg,
                        &anfa,
                        &decoded.events,
                        &self.config.projection,
                        &mut s.borrow_mut(),
                    )
                });
                (
                    SegmentView {
                        events: decoded.events,
                        nodes: proj.nodes,
                        breaks: proj.breaks,
                        loss_before: decoded.loss_before,
                    },
                    proj.stats,
                )
            });

        // Regroup per thread, reducing projection statistics in piece
        // order (merge is commutative, but a fixed order keeps the code
        // trivially deterministic).
        let mut grouped: Vec<(ThreadId, Vec<SegmentView>, ProjectionStats)> = thread_pieces
            .iter()
            .map(|(t, _)| (*t, Vec::new(), ProjectionStats::default()))
            .collect();
        for (&(ti, _), (view, stats)) in work.iter().zip(projected) {
            grouped[ti].1.push(view);
            grouped[ti].2.merge(&stats);
        }

        // Level 2: per-thread assembly, fanned out across threads. When
        // the thread fan-out already saturates the workers, recovery's
        // inner candidate scoring stays sequential to avoid
        // oversubscription; with few threads the idle workers go to it.
        let inner_workers = if grouped.len() >= workers { 1 } else { workers };
        let threads: Vec<ThreadReport> =
            jportal_par::par_map_owned(workers, grouped, |_, (thread, views, projection)| {
                self.assemble_thread(thread, views, projection, inner_workers)
            });

        // `thread_pieces` was sorted by thread id and every join above is
        // order-preserving, so the report is already deterministically
        // sorted.
        JPortalReport {
            threads,
            dfa_cache: anfa.dfa_stats(),
        }
    }

    /// Compacts one thread's projected segments, recovers across lossy
    /// boundaries and emits the final timeline (sequential over holes by
    /// construction: each fill's context feeds the next).
    fn assemble_thread(
        &self,
        thread: ThreadId,
        views: Vec<SegmentView>,
        projection: ProjectionStats,
        recovery_workers: usize,
    ) -> ThreadReport {
        // Drop empty segments but keep their loss marks attached to
        // the following segment.
        let mut compacted: Vec<SegmentView> = Vec::new();
        let mut pending_loss = None;
        for mut v in views {
            if v.loss_before.is_some() {
                pending_loss = v.loss_before;
            }
            if v.events.is_empty() {
                continue;
            }
            v.loss_before = pending_loss.take();
            compacted.push(v);
        }

        // Assemble the timeline, recovering across lossy boundaries.
        let mut recovery_stats = RecoveryStats::default();
        let mut holes = Vec::new();
        let recovery = Recovery::new(self.program, &self.icfg, &compacted, self.config.recovery)
            .with_workers(recovery_workers)
            .with_dominators(&self.analysis);
        let mut entries: Vec<TraceEntry> = Vec::new();
        let mut steps: Vec<LintStep> = Vec::new();
        // One walk scratch for all of this thread's holes.
        let mut fill_scratch = FillScratch::new();
        for i in 0..compacted.len() {
            if i > 0 {
                if let Some(loss) = compacted[i].loss_before {
                    holes.push((loss.first_ts, loss.last_ts));
                    if !self.config.disable_recovery {
                        let fill = recovery.fill_hole_with(
                            &compacted,
                            i - 1,
                            i,
                            Some(loss),
                            &mut recovery_stats,
                            &mut fill_scratch,
                        );
                        entries.extend(fill.entries);
                        steps.extend(fill.steps);
                    }
                }
            }
            let seg = &compacted[i];
            for (idx, (e, node)) in seg.events.iter().zip(&seg.nodes).enumerate() {
                let (method, bci) = match node {
                    Some(n) => {
                        let (m, b) = self.icfg.location(*n);
                        (Some(m), Some(b))
                    }
                    None => (e.method, e.bci),
                };
                entries.push(TraceEntry {
                    op: e.sym.op,
                    method,
                    bci,
                    ts: e.ts,
                    origin: TraceOrigin::Decoded,
                });
                // Segment starts are always seams (a hole or a fresh trace
                // buffer precedes them); within a segment, projection
                // restarts (`breaks`) mark positions with no edge
                // guarantee to their predecessor.
                steps.push(LintStep {
                    node: *node,
                    op: e.sym.op,
                    dir: e.sym.dir,
                    boundary: idx == 0 || seg.breaks.binary_search(&idx).is_ok(),
                });
            }
        }

        let lint = if self.config.lint {
            lint_steps(self.program, &self.icfg, &steps)
        } else {
            Vec::new()
        };

        ThreadReport {
            thread,
            entries,
            holes,
            projection,
            recovery: recovery_stats,
            segments: compacted.len(),
            lint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};
    use jportal_jvm::runtime::{Jvm, JvmConfig};

    fn workload() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut h = pb.method(c, "helper", 1, true);
        let odd = h.label();
        h.emit(I::Iload(0));
        h.emit(I::Iconst(2));
        h.emit(I::Irem);
        h.branch_if(CmpKind::Ne, odd);
        h.emit(I::Iconst(10));
        h.emit(I::Ireturn);
        h.bind(odd);
        h.emit(I::Iconst(20));
        h.emit(I::Ireturn);
        let helper = h.finish();
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(50));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, done);
        m.emit(I::Iload(0));
        m.emit(I::InvokeStatic(helper));
        m.emit(I::Pop);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let main = m.finish();
        pb.finish_with_entry(main).unwrap()
    }

    use jportal_bytecode::Program;

    #[test]
    fn clean_run_reconstructs_everything_decoded() {
        let p = workload();
        let r = Jvm::new(JvmConfig {
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        })
        .run(&p);
        let jp = JPortal::new(&p);
        let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
        assert_eq!(report.threads.len(), 1);
        let t = &report.threads[0];
        let truth_len = r.truth.trace(ThreadId(0)).len();
        assert_eq!(t.entries.len(), truth_len, "lossless run: 1:1 entries");
        let (d, rec, w) = report.provenance_counts();
        assert_eq!(d, truth_len);
        assert_eq!(rec + w, 0);
        // Every entry's location must match the truth exactly.
        for (e, truth) in t.entries.iter().zip(r.truth.trace(ThreadId(0))) {
            assert_eq!(e.method, Some(truth.method));
            assert_eq!(e.bci, Some(truth.bci));
        }
    }

    #[test]
    fn lossy_run_recovers_some_entries() {
        let p = workload();
        let r = Jvm::new(JvmConfig {
            pt_buffer_capacity: 640,
            drain_bytes_per_kilocycle: 6,
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        })
        .run(&p);
        let traces = r.traces.as_ref().unwrap();
        assert!(
            !traces.per_core[0].losses.is_empty(),
            "this configuration must lose data"
        );
        let jp = JPortal::new(&p);
        let report = jp.analyze(traces, &r.archive);
        let t = &report.threads[0];
        assert!(t.recovery.holes > 0);
        assert!(!t.holes.is_empty());
        let (_d, rec, w) = report.provenance_counts();
        assert!(rec + w > 0, "recovery must contribute entries");
    }

    #[test]
    fn disable_recovery_ablation() {
        let p = workload();
        let r = Jvm::new(JvmConfig {
            pt_buffer_capacity: 640,
            drain_bytes_per_kilocycle: 6,
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        })
        .run(&p);
        let jp = JPortal::with_config(
            &p,
            JPortalConfig {
                disable_recovery: true,
                ..JPortalConfig::default()
            },
        );
        let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
        let (_, rec, w) = report.provenance_counts();
        assert_eq!(rec + w, 0);
    }

    #[test]
    fn jit_mode_entries_carry_locations() {
        let p = workload();
        let r = Jvm::new(JvmConfig {
            c1_threshold: 4,
            c2_threshold: 12,
            ..JvmConfig::default()
        })
        .run(&p);
        assert!(r.compilations > 0);
        let jp = JPortal::new(&p);
        let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
        let t = &report.threads[0];
        let with_loc = t
            .entries
            .iter()
            .filter(|e| e.method.is_some() && e.bci.is_some())
            .count();
        assert!(
            with_loc as f64 / t.entries.len() as f64 > 0.95,
            "nearly all entries should be located"
        );
    }
}
