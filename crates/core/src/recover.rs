//! Abstraction-guided missing-data recovery (§5).
//!
//! A hole `⋄` between two decoded segments is filled from a **complete
//! segment** (CS) whose context matches the **incomplete segment** (IS)
//! ending at the hole (Definition 5.1): the last `x` instructions before
//! the hole are the *anchor*; candidate CS positions matching the anchor
//! are ranked by the longest common suffix of their prefix with the IS,
//! compared through the three-tier abstraction hierarchy of Definition
//! 5.2 with the pruning guarantee of Theorem 5.5 — tier-1 (call
//! structure) comparisons reject most candidates before tier-2 (control
//! structure) or tier-3 (concrete) work happens (Algorithm 4; Algorithm 3
//! is the naive per-instruction scan kept as the benchmark baseline).
//!
//! The winning CS's suffix fills the hole until `y` consecutive
//! instructions match what follows the hole, bounded by the hole's
//! timestamp budget; if no CS works, a bounded ICFG walk connects the two
//! sides (the paper's random-path fallback).

use jportal_analysis::{AnalysisIndex, LintStep, SummaryTable};
use jportal_bytecode::{Bci, MethodId, OpKind, Program};
use jportal_cfg::{FxHashMap, Icfg, NodeId, Sym, Tier};
use jportal_corpus::pack::{suffix_swar, PackedSyms};
use jportal_corpus::Corpus;
use jportal_ipt::ring::LossRecord;
use jportal_obs::{CandidateOutcome, Journal, JournalEvent, JournalRecorder};
use std::collections::VecDeque;

use crate::decode::BcEvent;

/// Where a reconstructed trace entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOrigin {
    /// Directly decoded from captured packets and projected (§3–§4).
    Decoded,
    /// Filled in from a matching complete segment (§5).
    Recovered,
    /// Filled in by the fallback ICFG walk (§5, last resort).
    Walked,
}

/// One entry of the final reconstructed control-flow trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Operation kind.
    pub op: OpKind,
    /// Method, when known (projection or JIT decode).
    pub method: Option<MethodId>,
    /// Bytecode index, when known.
    pub bci: Option<Bci>,
    /// Timestamp (interpolated for recovered entries).
    pub ts: u64,
    /// Provenance.
    pub origin: TraceOrigin,
}

/// One decoded segment with its projection, as recovery consumes it.
#[derive(Debug, Clone, Default)]
pub struct SegmentView {
    /// Decoded events.
    pub events: Vec<BcEvent>,
    /// Projected ICFG nodes, aligned with `events`.
    pub nodes: Vec<Option<NodeId>>,
    /// Projection restart seams: event indices with no ICFG-edge
    /// guarantee from the previous event (see
    /// [`crate::reconstruct::Projection::breaks`]). Sorted, never 0.
    pub breaks: Vec<usize>,
    /// Loss separating this segment from the previous one.
    pub loss_before: Option<LossRecord>,
}

/// The result of filling one hole: the spliced entries plus the
/// lint-relevant structure of the splice.
///
/// `steps` is aligned one-to-one with `entries`. A fill spliced from a
/// complete segment starts at a seam (`steps[0].boundary == true`) and
/// inherits the CS's own internal seams; a fallback ICFG walk is
/// edge-connected to both sides by construction, so its steps carry no
/// boundaries at all — the feasibility linter checks every one of its
/// transitions.
#[derive(Debug, Clone, Default)]
pub struct Fill {
    /// Recovered trace entries, in timeline order.
    pub entries: Vec<TraceEntry>,
    /// Feasibility-linter steps aligned with `entries`.
    pub steps: Vec<LintStep>,
    /// How much to trust this fill, in `[0, 1]`: the winning candidate's
    /// suffix strength × its score margin over the runner-up × the
    /// timestamp-budget coverage of the confirm scan × how well the fill
    /// length agrees with the hole's estimated event count, scaled down
    /// hard for fallback walks (see `confidence` in the journal event
    /// schema, DESIGN.md §13). `0.0` for an unfilled hole.
    pub confidence: f64,
}

/// Recovery tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Anchor length `x` (instructions before the hole used to find CSes).
    pub anchor_len: usize,
    /// Confirmation length `y` (post-hole instructions that must match to
    /// end the fill).
    pub confirm_len: usize,
    /// How many top-ranked CSes to try (the paper's top-N list).
    pub top_n: usize,
    /// Budget multiplier applied to the hole's estimated event count.
    pub budget_factor: f64,
    /// Use the tiered pruning of Algorithm 4 (`false` = Algorithm 3).
    pub use_abstraction: bool,
    /// Maximum steps of the fallback ICFG walk.
    pub max_walk: usize,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            anchor_len: 3,
            confirm_len: 4,
            top_n: 5,
            budget_factor: 2.0,
            use_abstraction: true,
            max_walk: 64,
        }
    }
}

/// Statistics from recovering one thread's holes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Holes encountered.
    pub holes: usize,
    /// Holes filled from a CS.
    pub filled_from_cs: usize,
    /// Holes filled by the fallback walk.
    pub filled_by_walk: usize,
    /// Holes left unfilled.
    pub unfilled: usize,
    /// Entries produced by recovery.
    pub recovered_events: usize,
    /// CS candidates examined.
    pub candidates: usize,
    /// Candidates rejected at tier 1.
    pub pruned_tier1: usize,
    /// Candidates rejected at tier 2.
    pub pruned_tier2: usize,
    /// Candidates rejected by the summary prefilter: the candidate's
    /// suffix provably contains no confirm window for this hole (checked
    /// against the per-segment op-kind position index), so it can never
    /// be chosen as the fill. Pruned candidates still run through the
    /// search gates and ranking — which keeps the chosen fill identical
    /// to a run without the prefilter — but skip the parallel path's
    /// speculative tier scans and all per-candidate journaling. Not
    /// counted in [`RecoveryStats::candidates`] (nor in the tier-prune
    /// tallies).
    pub summary_pruned: usize,
    /// Fallback ICFG walks attempted (successful or not); always ≥
    /// [`RecoveryStats::filled_by_walk`].
    pub fallback_walks: usize,
    /// Candidate confirm scans whose window was clipped by the hole's
    /// timestamp budget (the scan saw less than the candidate's full
    /// suffix, so a confirmation may have been missed).
    pub budget_truncations: usize,
    /// Holes that consulted the persistent segment corpus (only holes
    /// no in-run candidate could confirm — the corpus is a secondary
    /// source, so attaching one never changes an in-run fill).
    pub corpus_lookups: usize,
    /// Corpus candidates returned by the sharded anchor index across
    /// all lookups.
    pub corpus_candidates: usize,
    /// Corpus lookups whose winning candidate confirmed and filled the
    /// hole (these holes also count in
    /// [`RecoveryStats::filled_from_cs`]).
    pub corpus_hits: usize,
    /// Corpus lookups that found no confirmable candidate (the hole
    /// fell through to the fallback walk).
    pub corpus_misses: usize,
}

impl RecoveryStats {
    /// Folds another run's statistics into this one (commutative and
    /// associative, so parallel tree reduction equals sequential sums).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.holes += other.holes;
        self.filled_from_cs += other.filled_from_cs;
        self.filled_by_walk += other.filled_by_walk;
        self.unfilled += other.unfilled;
        self.recovered_events += other.recovered_events;
        self.candidates += other.candidates;
        self.pruned_tier1 += other.pruned_tier1;
        self.pruned_tier2 += other.pruned_tier2;
        self.summary_pruned += other.summary_pruned;
        self.fallback_walks += other.fallback_walks;
        self.budget_truncations += other.budget_truncations;
        self.corpus_lookups += other.corpus_lookups;
        self.corpus_candidates += other.corpus_candidates;
        self.corpus_hits += other.corpus_hits;
        self.corpus_misses += other.corpus_misses;
    }

    /// Fraction of considered candidates rejected by the tier-1
    /// (call-structure) comparison. `0.0` when nothing was considered.
    ///
    /// Rates are computed from the *merged* totals, never averaged per
    /// shard: `merge` sums numerators and denominators, so the rate of a
    /// merged stat equals the rate over the union of the runs.
    pub fn tier1_prune_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned_tier1 as f64 / self.candidates as f64
        }
    }

    /// Fraction of considered candidates rejected by the tier-2
    /// (control-structure) comparison. `0.0` when nothing was considered.
    pub fn tier2_prune_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned_tier2 as f64 / self.candidates as f64
        }
    }

    /// Fraction of the raw candidate set rejected by the interprocedural
    /// summary prefilter, over the *whole* set (survivors plus pruned) —
    /// the denominator the tier rates never see. `0.0` when nothing was
    /// considered.
    pub fn summary_prune_rate(&self) -> f64 {
        let total = self.candidates + self.summary_pruned;
        if total == 0 {
            0.0
        } else {
            self.summary_pruned as f64 / total as f64
        }
    }
}

/// Compatibility of two symbols for matching: same opcode, and branch
/// directions must not contradict.
fn sym_compat(a: Sym, b: Sym) -> bool {
    a.op == b.op && a.dir.matches(b.dir)
}

/// Human-readable anchor spelling for the journal: opcode mnemonics
/// joined with `·` (`invokestatic·iload·ifge`).
fn spell_anchor(anchor: &[Sym]) -> String {
    let mut out = String::new();
    for (i, s) in anchor.iter().enumerate() {
        if i > 0 {
            out.push('·');
        }
        out.push_str(s.op.mnemonic());
    }
    out
}

/// Confidence in `[0, 1]` as parts-per-million, the journal's
/// integer-only wire form.
fn ppm(confidence: f64) -> u32 {
    (confidence.clamp(0.0, 1.0) * 1_000_000.0).round() as u32
}

/// How well a fill's length agrees with the hole's timestamp-derived
/// event estimate, in `[0, 1]`: `min/max` of the two lengths. A fill
/// that plugs a fraction of the estimated loss — or overshoots it —
/// can at best align that fraction of the truth, whatever its splice
/// score, so this dominates when lengths disagree badly.
fn length_agreement(fill_len: usize, estimate: f64) -> f64 {
    let f = fill_len as f64;
    let e = estimate.max(1.0);
    (f.min(e) / f.max(e)).clamp(0.0, 1.0)
}

/// Confidence of a CS-sourced fill: suffix strength (how long the
/// common suffix is, saturating) × score margin over the best other
/// candidate (1.0 when the winner was the only candidate) × budget
/// coverage of the confirm scan (1.0 when the window was not clipped)
/// × length agreement with the hole's event estimate.
fn cs_confidence(
    score: usize,
    runner_up: usize,
    sole: bool,
    max_fill: usize,
    available: usize,
    fill_len: usize,
    estimate: f64,
) -> f64 {
    let strength = score as f64 / (score as f64 + 4.0);
    let margin_factor = if sole {
        1.0
    } else {
        let s = score.max(1) as f64;
        (0.5 + 0.5 * (s - runner_up as f64) / s).clamp(0.1, 1.0)
    };
    let coverage = if max_fill < available {
        max_fill as f64 / available as f64
    } else {
        1.0
    };
    strength * margin_factor * coverage * length_agreement(fill_len, estimate)
}

/// Confidence of a fallback-walk fill: capped low (the walk is a guess
/// consistent with the ICFG, not a witnessed execution) and scaled by
/// how much of the estimated loss the walk actually plugged.
fn walk_confidence(fill_len: usize, estimate: f64) -> f64 {
    0.3 * length_agreement(fill_len, estimate)
}

/// Pre-indexed segment: symbols plus tier-1/tier-2 position indices.
#[derive(Debug, Clone)]
struct IndexedSegment {
    syms: Vec<Sym>,
    /// The same symbols packed for the SWAR suffix kernel (op bytes
    /// eight per word, dir codes thirty-two per word) — the concrete
    /// tier scores on these, eight symbols per step.
    packed: PackedSyms,
    /// Positions of tier-1 (call-structure) symbols.
    t1: Vec<u32>,
    /// Positions of tier-2 (control) symbols.
    t2: Vec<u32>,
    /// Positions of each [`OpKind`] in `syms`, indexed by
    /// [`OpKind::index`]. Empty until [`IndexedSegment::build_op_index`]
    /// runs (only the summary prefilter reads it).
    op_pos: Vec<Vec<u32>>,
}

impl IndexedSegment {
    fn new(view: &SegmentView) -> IndexedSegment {
        let events = &view.events;
        let syms: Vec<Sym> = events.iter().map(|e| e.sym).collect();
        let mut t1 = Vec::new();
        let mut t2 = Vec::new();
        for (i, s) in syms.iter().enumerate() {
            match Tier::of_op(s.op) {
                Tier::CallStructure => {
                    t1.push(i as u32);
                    t2.push(i as u32);
                }
                Tier::Control => t2.push(i as u32),
                Tier::Concrete => {}
            }
        }
        IndexedSegment {
            packed: PackedSyms::from_syms(&syms),
            syms,
            t1,
            t2,
            op_pos: Vec::new(),
        }
    }

    /// Builds the per-[`OpKind`] position index used by the summary
    /// prefilter's confirm-window feasibility check.
    fn build_op_index(&mut self) {
        if !self.op_pos.is_empty() {
            return;
        }
        self.op_pos = vec![Vec::new(); OpKind::ALL.len()];
        for (i, s) in self.syms.iter().enumerate() {
            self.op_pos[s.op.index()].push(i as u32);
        }
    }

    /// Number of tier-l symbols at or before position `end` (exclusive).
    fn tier_count_before(&self, tier: Tier, end: usize) -> usize {
        let idx = match tier {
            Tier::CallStructure => &self.t1,
            Tier::Control => &self.t2,
            Tier::Concrete => return end,
        };
        idx.partition_point(|&p| (p as usize) < end)
    }

    /// Backward common-suffix length at tier `tier` between `self[..a]`
    /// and `other[..b]`, capped at `cap` comparisons.
    fn tier_suffix(
        &self,
        a: usize,
        other: &IndexedSegment,
        b: usize,
        tier: Tier,
        cap: usize,
    ) -> usize {
        match tier {
            // Concrete tier: the SWAR kernel, eight symbols per step.
            // Pinned byte-identical to the scalar backward scan by the
            // corpus crate's `swar_equivalence` proptest suite — the
            // packed `compat` (equal op byte, non-contradicting 2-bit
            // dir codes) is exactly `sym_compat`.
            Tier::Concrete => suffix_swar(
                &self.packed.ops,
                &self.packed.dirs,
                a,
                &other.packed.ops,
                &other.packed.dirs,
                b,
                cap,
            ),
            _ => {
                let (ia, ib) = match tier {
                    Tier::CallStructure => (&self.t1, &other.t1),
                    Tier::Control => (&self.t2, &other.t2),
                    Tier::Concrete => unreachable!(),
                };
                let ca = self.tier_count_before(tier, a);
                let cb = other.tier_count_before(tier, b);
                let mut n = 0;
                while n < cap && n < ca && n < cb {
                    let pa = ia[ca - 1 - n] as usize;
                    let pb = ib[cb - 1 - n] as usize;
                    if !sym_compat(self.syms[pa], other.syms[pb]) {
                        break;
                    }
                    n += 1;
                }
                n
            }
        }
    }
}

/// A CS candidate: `(segment index, anchor end offset)` — the anchor's
/// last symbol sits at `offset` (inclusive) in that segment.
type Candidate = (usize, usize);

/// Per-hole confirm-window context handed to the summary prefilter: the
/// post-hole window the winning fill must reproduce and the hole's
/// timestamp budget (both exactly as the confirm scan will use them).
struct ConfirmCtx<'w> {
    post_window: &'w [Sym],
    budget: usize,
}

/// Occurrence probes [`Recovery::can_confirm`] spends per candidate
/// before giving up and keeping it. Keeps the prefilter's worst case
/// (a window of ubiquitous op kinds) cheaper than the scoring it
/// short-circuits; an undecided candidate is simply not pruned.
const CONFIRM_PROBE_CAP: usize = 64;

/// Key of the anchor index: the opcode sequence of an anchor window,
/// always one `Copy` word (see [`jportal_corpus::anchor_key`]).
///
/// Anchors are short (`anchor_len` defaults to 3), so the common case
/// packs the opcodes into one `u64` — `OpKind` is `#[repr(u8)]` — and a
/// probe is hash-one-word. Longer anchors (> 8 opcodes, never under
/// default configs) hash the op slice directly instead of allocating a
/// `Vec` spelling per lookup; hashed keys can collide, so
/// [`Recovery::candidates`] verifies each candidate's window against
/// the query ops for long anchors — a collision costs one wasted
/// compare, never a wrong candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AnchorKey(u64);

impl AnchorKey {
    fn of(anchor: &[Sym]) -> AnchorKey {
        AnchorKey(jportal_corpus::anchor_key(anchor))
    }
}

/// Reusable buffers for [`Recovery::fill_hole_with`]: the fallback walk's
/// BFS parent map and queue, reused across a thread's holes.
#[derive(Debug, Default)]
pub struct FillScratch {
    parent: FxHashMap<NodeId, NodeId>,
    queue: VecDeque<(NodeId, usize)>,
    /// Corpus candidate buffer, reused across holes so the corpus
    /// lookup path stays allocation-free per hole.
    corpus_cands: Vec<jportal_corpus::CorpusCandidate>,
}

impl FillScratch {
    /// A fresh, empty scratch.
    pub fn new() -> FillScratch {
        FillScratch::default()
    }

    /// Capacity high-water mark (BFS parent-map plus queue slots), read
    /// into a telemetry gauge after a thread's holes are filled.
    pub fn high_water(&self) -> usize {
        self.parent.capacity() + self.queue.capacity()
    }
}

/// Below this many candidates the parallel scoring path is pure
/// overhead: thread spawn plus the speculative (uncapped) suffix work
/// costs more than the sequential scan saves.
const PAR_CANDIDATES_MIN: usize = 48;

/// Per-hole cap on individually-journaled candidate events. Busy anchors
/// can have thousands of candidates; journaling the first few dozen
/// (always the head of the deterministic consideration order) keeps the
/// ring bounded while the tail is summarised by one
/// [`JournalEvent::CandidatesElided`].
const JOURNAL_CANDIDATES_MAX: u32 = 32;

/// Capped per-hole emitter of [`JournalEvent::CandidateConsidered`]
/// events. Emission happens only in the sequential scan or the
/// sequential pruning replay — never inside a parallel fan-out — so the
/// event stream is the same at any worker count.
struct CandidateJournal<'r, 'j> {
    rec: Option<&'r mut JournalRecorder<'j>>,
    hole: u32,
    emitted: u32,
    elided: u32,
}

impl<'r, 'j> CandidateJournal<'r, 'j> {
    fn new(rec: Option<&'r mut JournalRecorder<'j>>, hole: u32) -> CandidateJournal<'r, 'j> {
        CandidateJournal {
            rec,
            hole,
            emitted: 0,
            elided: 0,
        }
    }

    fn consider(&mut self, rank: u32, cand: Candidate, outcome: CandidateOutcome, score: usize) {
        let Some(rec) = self.rec.as_deref_mut() else {
            return;
        };
        if self.emitted >= JOURNAL_CANDIDATES_MAX {
            self.elided += 1;
            return;
        }
        self.emitted += 1;
        rec.emit(JournalEvent::CandidateConsidered {
            hole: self.hole,
            rank,
            cs_segment: cand.0 as u32,
            offset: cand.1 as u32,
            outcome,
            score: score.min(u32::MAX as usize) as u32,
        });
    }

    fn finish(&mut self) {
        if self.elided > 0 {
            if let Some(rec) = self.rec.as_deref_mut() {
                rec.emit(JournalEvent::CandidatesElided {
                    hole: self.hole,
                    count: self.elided,
                });
            }
        }
    }
}

/// Recovery engine over one thread's segments.
#[derive(Debug)]
pub struct Recovery<'a> {
    program: &'a Program,
    icfg: &'a Icfg,
    cfg: RecoveryConfig,
    /// Worker threads for candidate scoring (1 = fully sequential).
    workers: usize,
    /// Per-method dominator facts for anchor ranking (optional).
    doms: Option<&'a AnalysisIndex>,
    /// Interprocedural method summaries for candidate prefiltering
    /// (optional; see [`Recovery::with_summaries`]).
    summaries: Option<&'a SummaryTable>,
    /// Persistent cross-run segment corpus, consulted as a **secondary**
    /// candidate source (optional; see [`Recovery::with_corpus`]).
    corpus: Option<&'a Corpus>,
    indexed: Vec<IndexedSegment>,
    /// Anchor index: packed op-kind key → candidate positions.
    anchor_index: FxHashMap<AnchorKey, Vec<Candidate>>,
}

impl<'a> Recovery<'a> {
    /// Builds the recovery engine, indexing all segments as CS sources.
    pub fn new(
        program: &'a Program,
        icfg: &'a Icfg,
        segments: &[SegmentView],
        cfg: RecoveryConfig,
    ) -> Recovery<'a> {
        let indexed: Vec<IndexedSegment> = segments.iter().map(IndexedSegment::new).collect();
        let x = cfg.anchor_len;
        let mut anchor_index: FxHashMap<AnchorKey, Vec<Candidate>> = FxHashMap::default();
        for (si, seg) in indexed.iter().enumerate() {
            if seg.syms.len() < x + 1 {
                continue;
            }
            // Anchor ends at `end` (inclusive); a suffix must follow.
            for end in (x - 1)..seg.syms.len() - 1 {
                let key = AnchorKey::of(&seg.syms[end + 1 - x..=end]);
                anchor_index.entry(key).or_default().push((si, end));
            }
        }
        Recovery {
            program,
            icfg,
            cfg,
            workers: 1,
            doms: None,
            summaries: None,
            corpus: None,
            indexed,
            anchor_index,
        }
    }

    /// Attaches a persistent segment corpus as a **secondary** candidate
    /// source: for a hole, the corpus is consulted only after every
    /// in-run candidate fails the confirm scan, and before the fallback
    /// walk. In-run fills are therefore byte-identical with or without a
    /// corpus attached — what the corpus changes is holes that would
    /// otherwise degrade to a low-confidence walk or stay unfilled, which
    /// is why fill rate and mean confidence are non-decreasing in corpus
    /// size. Ignored (with a miss-free stats profile) when the corpus was
    /// indexed for a different `anchor_len` than this engine's.
    pub fn with_corpus(mut self, corpus: &'a Corpus) -> Recovery<'a> {
        self.corpus = Some(corpus);
        self
    }

    /// Supplies per-method dominator facts. When present, candidates with
    /// equal common-suffix scores are re-ranked: an anchor whose located
    /// instructions **dominate** the hole's resume point (the first
    /// located node after the hole) is a stronger witness — every
    /// execution reaching the resume point must have passed through it —
    /// so it wins the tie. The re-rank is a stable sort over the already
    /// deterministic ranking, so reports stay identical at any worker
    /// count.
    pub fn with_dominators(mut self, doms: &'a AnalysisIndex) -> Recovery<'a> {
        self.doms = Some(doms);
        self
    }

    /// Sets the worker count for candidate scoring. The ranking (and the
    /// statistics) are byte-identical at any worker count: the parallel
    /// path speculatively computes every candidate's tier suffixes and
    /// then replays the sequential pruning decisions over the
    /// pre-computed scores.
    pub fn with_workers(mut self, workers: usize) -> Recovery<'a> {
        self.workers = workers.max(1);
        self
    }

    /// Enables the summary prefilter. When present, candidates whose
    /// suffix **provably cannot contain this hole's confirm window**
    /// (the `y` post-hole symbols, within budget) are identified before
    /// the search runs — they can never be chosen as the fill. The check
    /// is **exact** up to a probe cap (an undecided candidate is kept),
    /// and pruned candidates still flow through Algorithm 4's gates and
    /// ranking unchanged (see [`Recovery::search_abstraction`]), so
    /// reconstructed timelines are identical with the prefilter on or
    /// off; what pruning buys is the skipped speculative tier scans in
    /// the parallel path, the journal-noise reduction, and the
    /// `summary_pruned` diagnostics.
    ///
    /// Method-identity-based pruning (matching the candidate's located
    /// method against the IS's) was deliberately rejected: a projection
    /// restart can *relocate* a run to any window-matching position, so
    /// located method identity is not trustworthy evidence on lossy
    /// input — the same reasoning that grades the linter's frame checks
    /// (see `jportal_analysis::lint`). Only op-kind facts recorded by
    /// the hardware survive relocation, and this prefilter uses nothing
    /// else.
    pub fn with_summaries(mut self, summaries: &'a SummaryTable) -> Recovery<'a> {
        self.summaries = Some(summaries);
        for seg in &mut self.indexed {
            seg.build_op_index();
        }
        self
    }

    /// Candidate CS positions for an IS ending with `anchor` syms, each
    /// tagged `true` if the summary prefilter proved it can never
    /// confirm for the hole described by `ctx` (pruned counts land in
    /// [`RecoveryStats::summary_pruned`], not in
    /// [`RecoveryStats::candidates`]).
    fn candidates(
        &self,
        is_seg: usize,
        anchor: &[Sym],
        ctx: Option<&ConfirmCtx<'_>>,
    ) -> Vec<(Candidate, bool)> {
        let key = AnchorKey::of(anchor);
        let is_end = self.indexed[is_seg].syms.len() - 1;
        self.anchor_index
            .get(&key)
            .map(|v| {
                v.iter()
                    .copied()
                    // The IS's own tail is not a usable CS for itself.
                    .filter(|&(si, end)| !(si == is_seg && end == is_end))
                    // Hashed long-anchor keys can collide: verify the
                    // candidate's op window (≤ 8 op keys are exact).
                    .filter(|&(si, end)| {
                        anchor.len() <= 8
                            || anchor.iter().enumerate().all(|(k, a)| {
                                self.indexed[si].syms[end + 1 - anchor.len() + k].op == a.op
                            })
                    })
                    .map(|cand| {
                        let dead = match ctx {
                            Some(c) if self.summaries.is_some() => !self.can_confirm(cand, c),
                            _ => false,
                        };
                        (cand, dead)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// `true` unless candidate `(si, end)`'s suffix provably contains no
    /// window matching `ctx.post_window` within `ctx.budget` — the exact
    /// success condition of the confirm scan in
    /// [`Recovery::fill_hole_with`]. The scan walks the occurrences of
    /// the window's rarest op kind (per-segment position index), so a
    /// hopeless candidate is usually rejected in O(log n); after
    /// [`CONFIRM_PROBE_CAP`] occurrence probes the candidate is kept
    /// (undecided ⇒ alive keeps the prefilter sound).
    fn can_confirm(&self, (si, end): Candidate, ctx: &ConfirmCtx<'_>) -> bool {
        let cs = &self.indexed[si];
        let suffix_start = end + 1;
        let y = ctx.post_window.len();
        let len = cs.syms.len();
        let available = len - suffix_start;
        if available < y {
            return false;
        }
        // Highest window start the confirm scan would try: `d` is capped
        // by the budget and the window must fit inside the segment.
        let hi = (suffix_start + ctx.budget.min(available)).min(len - y);
        let k_rare = (0..y)
            .min_by_key(|&k| cs.op_pos[ctx.post_window[k].op.index()].len())
            .unwrap_or(0);
        let positions = &cs.op_pos[ctx.post_window[k_rare].op.index()];
        let lo = suffix_start + k_rare;
        let mut probes = 0usize;
        for &p in &positions[positions.partition_point(|&q| (q as usize) < lo)..] {
            let p = p as usize;
            if p > hi + k_rare {
                break;
            }
            probes += 1;
            if probes > CONFIRM_PROBE_CAP {
                return true;
            }
            let from = p - k_rare;
            if ctx
                .post_window
                .iter()
                .enumerate()
                .all(|(k, &s)| sym_compat(cs.syms[from + k], s))
            {
                return true;
            }
        }
        false
    }

    /// **Algorithm 3**: naive CS search — full concrete comparison per
    /// candidate. The per-candidate comparisons are independent, so they
    /// fan out over the engine's workers; a stable sort over the
    /// order-preserving result keeps the ranking identical to the
    /// sequential scan.
    pub fn search_naive(
        &self,
        is_seg: usize,
        stats: &mut RecoveryStats,
    ) -> Vec<(Candidate, usize)> {
        self.search_naive_journaled(is_seg, stats, None, &mut CandidateJournal::new(None, 0))
    }

    fn search_naive_journaled(
        &self,
        is_seg: usize,
        stats: &mut RecoveryStats,
        ctx: Option<&ConfirmCtx<'_>>,
        journal: &mut CandidateJournal<'_, '_>,
    ) -> Vec<(Candidate, usize)> {
        let is = &self.indexed[is_seg];
        if is.syms.len() < self.cfg.anchor_len {
            return Vec::new();
        }
        let anchor = &is.syms[is.syms.len() - self.cfg.anchor_len..];
        let cands = self.candidates(is_seg, anchor, ctx);
        let workers = if cands.len() >= PAR_CANDIDATES_MIN {
            self.workers
        } else {
            1
        };
        let mut scored: Vec<((Candidate, bool), usize)> =
            jportal_par::par_map(workers, &cands, |_, &(cand, dead)| {
                let (si, end) = cand;
                let m3 = is.tier_suffix(
                    is.syms.len(),
                    &self.indexed[si],
                    end + 1,
                    Tier::Concrete,
                    usize::MAX,
                );
                ((cand, dead), m3)
            });
        // Journal after the join, in candidate order — the event stream
        // never depends on worker scheduling. Prefilter-pruned
        // candidates keep their score (the ranking must be identical
        // with the prefilter off) but are not journaled individually.
        for (rank, &((cand, dead), score)) in scored.iter().enumerate() {
            if dead {
                stats.summary_pruned += 1;
            } else {
                stats.candidates += 1;
                journal.consider(rank as u32, cand, CandidateOutcome::Scored, score);
            }
        }
        scored.sort_by_key(|&(_, score)| std::cmp::Reverse(score));
        scored.truncate(self.cfg.top_n);
        scored.into_iter().map(|((c, _), s)| (c, s)).collect()
    }

    /// **Algorithm 4**: abstraction-guided CS search with tier-1/tier-2
    /// pruning (Theorem 5.5).
    ///
    /// With `workers > 1` and enough candidates, scoring is speculative:
    /// every candidate's three tier suffixes are computed uncapped in
    /// parallel, then the sequential pruning decisions are **replayed**
    /// over the pre-computed scores. The replay reproduces the sequential
    /// path's capped measurements (`min(suffix, mₗ + 64)`) and running
    /// maxima exactly, so the ranking and every statistic are
    /// byte-identical to the sequential scan — the speculative extra work
    /// is what buys the wall-clock parallelism (cf. Theorem 5.5: a capped
    /// tier-l measurement only ever prunes candidates that cannot win).
    pub fn search_abstraction(
        &self,
        is_seg: usize,
        stats: &mut RecoveryStats,
    ) -> Vec<(Candidate, usize)> {
        self.search_abstraction_journaled(is_seg, stats, None, &mut CandidateJournal::new(None, 0))
    }

    /// Prefilter-pruned candidates are processed through **exactly** the
    /// same gates, maxima updates and ranking as live ones — the ranked
    /// list (and therefore the chosen fill) is identical with the
    /// prefilter on or off by construction, not by a theorem about what
    /// pruning may drop. What they skip: the speculative *uncapped*
    /// tier-1/tier-2 suffix scans of the parallel path (their capped
    /// values are computed lazily during the sequential replay, which
    /// yields bit-identical measurements) and all per-candidate journal
    /// events; they are tallied as [`RecoveryStats::summary_pruned`]
    /// instead of [`RecoveryStats::candidates`].
    fn search_abstraction_journaled(
        &self,
        is_seg: usize,
        stats: &mut RecoveryStats,
        ctx: Option<&ConfirmCtx<'_>>,
        journal: &mut CandidateJournal<'_, '_>,
    ) -> Vec<(Candidate, usize)> {
        let is = &self.indexed[is_seg];
        if is.syms.len() < self.cfg.anchor_len {
            return Vec::new();
        }
        let anchor = &is.syms[is.syms.len() - self.cfg.anchor_len..];
        let cands = self.candidates(is_seg, anchor, ctx);

        if self.workers > 1 && cands.len() >= PAR_CANDIDATES_MIN {
            // Speculative parallel scoring: uncapped suffixes for live
            // candidates; pruned ones only need the concrete tier.
            let scores: Vec<(usize, usize, usize)> =
                jportal_par::par_map(self.workers, &cands, |_, &((si, end), dead)| {
                    let cs = &self.indexed[si];
                    let s3 = is.tier_suffix(is.syms.len(), cs, end + 1, Tier::Concrete, usize::MAX);
                    if dead {
                        (0, 0, s3)
                    } else {
                        (
                            is.tier_suffix(
                                is.syms.len(),
                                cs,
                                end + 1,
                                Tier::CallStructure,
                                usize::MAX,
                            ),
                            is.tier_suffix(is.syms.len(), cs, end + 1, Tier::Control, usize::MAX),
                            s3,
                        )
                    }
                });
            // Sequential replay of the pruning decisions. The journal
            // emits here (not in the fan-out above): the replay reproduces
            // the sequential path's capped measurements exactly, so the
            // events are identical to the sequential scan's.
            let mut best: Vec<(Candidate, usize)> = Vec::new();
            let (mut m1, mut m2, mut m3) = (0usize, 0usize, 0usize);
            for (rank, (&(cand, dead), &(s1, s2, s3))) in cands.iter().zip(&scores).enumerate() {
                let (si, end) = cand;
                let cs = &self.indexed[si];
                if dead {
                    stats.summary_pruned += 1;
                } else {
                    stats.candidates += 1;
                }
                let full = self.cfg.top_n > best.len();
                // Dead candidates skipped the speculative tier-1/tier-2
                // scans; measure their capped suffixes here so the gate
                // decisions (and the maxima they feed) match the
                // prefilter-off run bit for bit.
                let ml1 = if dead {
                    is.tier_suffix(is.syms.len(), cs, end + 1, Tier::CallStructure, m1 + 64)
                } else {
                    s1.min(m1 + 64)
                };
                if !full && ml1 < m1 {
                    if !dead {
                        stats.pruned_tier1 += 1;
                        journal.consider(rank as u32, cand, CandidateOutcome::PrunedTier1, ml1);
                    }
                    continue;
                }
                let ml2 = if dead {
                    is.tier_suffix(is.syms.len(), cs, end + 1, Tier::Control, m2 + 64)
                } else {
                    s2.min(m2 + 64)
                };
                if !full && ml2 < m2 {
                    if !dead {
                        stats.pruned_tier2 += 1;
                        journal.consider(rank as u32, cand, CandidateOutcome::PrunedTier2, ml2);
                    }
                    continue;
                }
                let ml3 = s3;
                if ml3 >= m3 {
                    m3 = ml3;
                    m1 = ml1;
                    m2 = ml2;
                }
                if !dead {
                    journal.consider(rank as u32, cand, CandidateOutcome::Scored, ml3);
                }
                best.push((cand, ml3));
                best.sort_by_key(|&(_, score)| std::cmp::Reverse(score));
                best.truncate(self.cfg.top_n);
            }
            return best;
        }

        let mut best: Vec<(Candidate, usize)> = Vec::new();
        // Running maxima ⟨m1, m2, m3⟩ of Algorithm 4; pruning compares
        // against the weakest kept candidate when the list is full.
        let (mut m1, mut m2, mut m3) = (0usize, 0usize, 0usize);
        for (rank, (cand, dead)) in cands.into_iter().enumerate() {
            let (si, end) = cand;
            let cs = &self.indexed[si];
            if dead {
                stats.summary_pruned += 1;
            } else {
                stats.candidates += 1;
            }
            let full = self.cfg.top_n > best.len();
            // Tier 1: cheap test first.
            let ml1 = is.tier_suffix(is.syms.len(), cs, end + 1, Tier::CallStructure, m1 + 64);
            if !full && ml1 < m1 {
                if !dead {
                    stats.pruned_tier1 += 1;
                    journal.consider(rank as u32, cand, CandidateOutcome::PrunedTier1, ml1);
                }
                continue;
            }
            let ml2 = is.tier_suffix(is.syms.len(), cs, end + 1, Tier::Control, m2 + 64);
            if !full && ml2 < m2 {
                if !dead {
                    stats.pruned_tier2 += 1;
                    journal.consider(rank as u32, cand, CandidateOutcome::PrunedTier2, ml2);
                }
                continue;
            }
            let ml3 = is.tier_suffix(is.syms.len(), cs, end + 1, Tier::Concrete, usize::MAX);
            if ml3 >= m3 {
                m3 = ml3;
                m1 = ml1;
                m2 = ml2;
            }
            if !dead {
                journal.consider(rank as u32, cand, CandidateOutcome::Scored, ml3);
            }
            best.push((cand, ml3));
            best.sort_by_key(|&(_, score)| std::cmp::Reverse(score));
            best.truncate(self.cfg.top_n);
        }
        best
    }

    /// Fills the hole after `is_seg` using the ranked candidates; returns
    /// the fill and how it was obtained. One-shot wrapper over
    /// [`Recovery::fill_hole_with`].
    pub fn fill_hole(
        &self,
        segments: &[SegmentView],
        is_seg: usize,
        post_seg: usize,
        loss: Option<LossRecord>,
        stats: &mut RecoveryStats,
    ) -> Fill {
        let mut scratch = FillScratch::new();
        self.fill_hole_with(segments, is_seg, post_seg, loss, stats, &mut scratch)
    }

    /// Fills the hole after `is_seg`, reusing `scratch` buffers for the
    /// fallback walk; callers filling many holes (one per loss record per
    /// thread) keep one scratch alive across all of them.
    pub fn fill_hole_with(
        &self,
        segments: &[SegmentView],
        is_seg: usize,
        post_seg: usize,
        loss: Option<LossRecord>,
        stats: &mut RecoveryStats,
        scratch: &mut FillScratch,
    ) -> Fill {
        let mut inert = Journal::recorder(None, 0);
        self.fill_hole_journaled(
            segments, is_seg, post_seg, loss, stats, scratch, &mut inert, 1,
        )
    }

    /// [`Recovery::fill_hole_with`] plus flight-recorder emission: the
    /// hole opening, every considered candidate (capped, with the tier it
    /// died at), the winner with its margin and confidence, the fallback
    /// walk, or the unfilled verdict — all through `recorder`, keyed
    /// under the IS's segment index. `hole` is the 1-based hole index
    /// within the thread (matching `ThreadReport::holes` order).
    #[allow(clippy::too_many_arguments)]
    pub fn fill_hole_journaled(
        &self,
        segments: &[SegmentView],
        is_seg: usize,
        post_seg: usize,
        loss: Option<LossRecord>,
        stats: &mut RecoveryStats,
        scratch: &mut FillScratch,
        recorder: &mut JournalRecorder<'_>,
        hole: u32,
    ) -> Fill {
        stats.holes += 1;
        let post = &self.indexed[post_seg];
        let budget = self.hole_budget(segments, is_seg, loss);
        // The raw (pre-`budget_factor`) event estimate: the best guess
        // at how many truth events the hole actually swallowed.
        let estimate = budget as f64 / self.cfg.budget_factor.max(1.0);

        if recorder.is_enabled() {
            recorder.set_segment(is_seg as u32);
            let is = &self.indexed[is_seg];
            let x = self.cfg.anchor_len.min(is.syms.len());
            let (first_ts, last_ts) = match loss {
                Some(l) => (l.first_ts, l.last_ts),
                None => (0, 0),
            };
            recorder.emit(JournalEvent::HoleOpened {
                hole,
                first_ts,
                last_ts,
                anchor_len: self.cfg.anchor_len as u32,
                anchor: spell_anchor(&is.syms[is.syms.len() - x..]),
                budget: budget as u64,
            });
        }
        let pre_candidates = stats.candidates;
        let pre_summary_pruned = stats.summary_pruned;
        // Confirm-window context for the summary prefilter: exactly the
        // window and budget the confirm scan below will use. An empty
        // post window means nothing can ever confirm, so there is no
        // point prefiltering.
        let post_window = &post.syms[..self.cfg.confirm_len.min(post.syms.len())];
        let ctx = (!post_window.is_empty()).then_some(ConfirmCtx {
            post_window,
            budget,
        });
        let mut journal =
            CandidateJournal::new(recorder.is_enabled().then_some(&mut *recorder), hole);
        let mut ranked = if self.cfg.use_abstraction {
            self.search_abstraction_journaled(is_seg, stats, ctx.as_ref(), &mut journal)
        } else {
            self.search_naive_journaled(is_seg, stats, ctx.as_ref(), &mut journal)
        };
        journal.finish();
        if self.summaries.is_some() {
            let pruned = stats.summary_pruned - pre_summary_pruned;
            let considered = stats.candidates - pre_candidates + pruned;
            if considered > 0 {
                recorder.emit(JournalEvent::SummaryPrefilter {
                    hole,
                    considered: considered as u32,
                    pruned: pruned as u32,
                });
            }
        }
        self.rank_with_dominators(&mut ranked, segments, post_seg);

        let y = self.cfg.confirm_len;
        for (idx, &((si, end), score)) in ranked.iter().enumerate() {
            let cs = &self.indexed[si];
            // Scan the CS suffix for a y-window matching the post-hole
            // beginning, within budget.
            let suffix_start = end + 1;
            let available = cs.syms.len().saturating_sub(suffix_start);
            let max_fill = budget.min(available);
            let truncated = max_fill < available;
            if truncated {
                stats.budget_truncations += 1;
            }
            let post_window = &post.syms[..y.min(post.syms.len())];
            if y >= 1 && post_window.is_empty() {
                continue;
            }
            let mut found: Option<usize> = None;
            for d in 0..=max_fill {
                let from = suffix_start + d;
                if from + post_window.len() > cs.syms.len() {
                    break;
                }
                if post_window
                    .iter()
                    .enumerate()
                    .all(|(k, &s)| sym_compat(cs.syms[from + k], s))
                {
                    found = Some(d);
                    break;
                }
            }
            if let Some(d) = found {
                let mut fill = self.entries_from_cs(segments, si, suffix_start, d, is_seg, loss);
                // Margin over the best *other* ranked score: candidates
                // earlier in rank order failed to confirm, so a non-top
                // winner gets margin 0 (its score was not the best).
                let runner_up = if idx == 0 {
                    ranked.get(1).map(|&(_, s)| s).unwrap_or(0)
                } else {
                    ranked[0].1
                };
                let sole = ranked.len() == 1;
                fill.confidence = cs_confidence(
                    score,
                    runner_up,
                    sole,
                    max_fill,
                    available,
                    fill.entries.len(),
                    estimate,
                );
                stats.filled_from_cs += 1;
                stats.recovered_events += fill.entries.len();
                recorder.emit(JournalEvent::CandidateChosen {
                    hole,
                    cs_segment: si as u32,
                    offset: end as u32,
                    score: score as u32,
                    runner_up: runner_up as u32,
                    margin: score.saturating_sub(runner_up) as u32,
                    fill_len: fill.entries.len() as u32,
                    budget: budget as u64,
                    truncated,
                    confidence_ppm: ppm(fill.confidence),
                });
                return fill;
            }
        }

        // Secondary source: the persistent cross-run corpus, consulted
        // only now that every in-run candidate has failed to confirm —
        // so attaching a corpus never changes an in-run fill, and a
        // growing corpus can only upgrade walk/unfilled holes.
        if let Some(fill) = self.corpus_fill(
            segments, is_seg, post_seg, loss, budget, estimate, stats, scratch, recorder, hole,
        ) {
            return fill;
        }

        // Fallback: walk the ICFG between the surrounding nodes.
        stats.fallback_walks += 1;
        if let Some(mut fill) = self.walk_fill(segments, is_seg, post_seg, loss, scratch) {
            fill.confidence = walk_confidence(fill.entries.len(), estimate);
            stats.filled_by_walk += 1;
            stats.recovered_events += fill.entries.len();
            recorder.emit(JournalEvent::FallbackWalk {
                hole,
                fill_len: fill.entries.len() as u32,
                confidence_ppm: ppm(fill.confidence),
            });
            return fill;
        }
        stats.unfilled += 1;
        recorder.emit(JournalEvent::HoleUnfilled { hole });
        Fill::default()
    }

    /// Tries to fill the hole from the persistent corpus: candidates
    /// come from the corpus's sharded anchor index
    /// (O(candidates-for-anchor) regardless of corpus size), are ranked
    /// by the SWAR common suffix against the IS, and the top-N run the
    /// same confirm scan as in-run candidates. Returns `None` — falling
    /// through to the walk — when no corpus is attached, its anchor
    /// length differs from the engine's, or nothing confirms.
    #[allow(clippy::too_many_arguments)]
    fn corpus_fill(
        &self,
        segments: &[SegmentView],
        is_seg: usize,
        post_seg: usize,
        loss: Option<LossRecord>,
        budget: usize,
        estimate: f64,
        stats: &mut RecoveryStats,
        scratch: &mut FillScratch,
        recorder: &mut JournalRecorder<'_>,
        hole: u32,
    ) -> Option<Fill> {
        let corpus = self.corpus?;
        let x = self.cfg.anchor_len;
        if corpus.anchor_len() != x || self.indexed[is_seg].syms.len() < x {
            return None;
        }
        let is = &self.indexed[is_seg];
        let post = &self.indexed[post_seg];
        let anchor = &is.syms[is.syms.len() - x..];
        corpus.candidates_into(anchor, &mut scratch.corpus_cands);
        stats.corpus_lookups += 1;
        stats.corpus_candidates += scratch.corpus_cands.len();

        // Rank by SWAR common suffix, index order breaking ties — the
        // corpus candidate order is deterministic, so the ranking is too.
        let mut ranked: Vec<((u32, u32), usize)> = scratch
            .corpus_cands
            .iter()
            .map(|&(seg, end)| {
                let v = corpus.segment(seg);
                let score = suffix_swar(
                    &is.packed.ops,
                    &is.packed.dirs,
                    is.syms.len(),
                    v.ops,
                    v.dirs,
                    end as usize + 1,
                    usize::MAX,
                );
                ((seg, end), score)
            })
            .collect();
        ranked.sort_by_key(|&(_, score)| std::cmp::Reverse(score));
        ranked.truncate(self.cfg.top_n);

        let y = self.cfg.confirm_len;
        let post_window = &post.syms[..y.min(post.syms.len())];
        if !(y >= 1 && post_window.is_empty()) {
            for (idx, &((seg, end), score)) in ranked.iter().enumerate() {
                let v = corpus.segment(seg);
                let suffix_start = end as usize + 1;
                let available = v.len - suffix_start;
                let max_fill = budget.min(available);
                if max_fill < available {
                    stats.budget_truncations += 1;
                }
                let mut found: Option<usize> = None;
                for d in 0..=max_fill {
                    let from = suffix_start + d;
                    if from + post_window.len() > v.len {
                        break;
                    }
                    if post_window
                        .iter()
                        .enumerate()
                        .all(|(k, &s)| sym_compat(v.sym(from + k), s))
                    {
                        found = Some(d);
                        break;
                    }
                }
                let Some(d) = found else { continue };
                let mut fill = Fill::default();
                let (t0, t1) = match loss {
                    Some(l) => (l.first_ts, l.last_ts),
                    None => {
                        let t = segments[is_seg].events.last().map(|e| e.ts).unwrap_or(0);
                        (t, t)
                    }
                };
                for k in 0..d {
                    let i = suffix_start + k;
                    let s = v.sym(i);
                    let (m, b) = v.loc(i);
                    let ts = if d > 1 {
                        t0 + (t1 - t0) * k as u64 / (d as u64 - 1).max(1)
                    } else {
                        t0
                    };
                    fill.entries.push(TraceEntry {
                        op: s.op,
                        method: m.map(MethodId),
                        bci: b.map(Bci),
                        ts,
                        origin: TraceOrigin::Recovered,
                    });
                    // Corpus entries carry no ICFG node (the corpus
                    // outlives any one projection), so the linter grades
                    // them like unlocated splices; seams carry over from
                    // the corpus segment's recorded projection breaks.
                    let boundary = k == 0 || v.breaks.binary_search(&(i as u32)).is_ok();
                    fill.steps.push(LintStep {
                        node: None,
                        op: s.op,
                        dir: s.dir,
                        boundary,
                        lossy: boundary,
                    });
                }
                let runner_up = if idx == 0 {
                    ranked.get(1).map(|&(_, s)| s).unwrap_or(0)
                } else {
                    ranked[0].1
                };
                let sole = ranked.len() == 1;
                fill.confidence = cs_confidence(
                    score,
                    runner_up,
                    sole,
                    max_fill,
                    available,
                    fill.entries.len(),
                    estimate,
                );
                stats.corpus_hits += 1;
                stats.filled_from_cs += 1;
                stats.recovered_events += fill.entries.len();
                recorder.emit(JournalEvent::CorpusLookup {
                    hole,
                    candidates: scratch.corpus_cands.len() as u32,
                    hit: true,
                    cs_segment: seg,
                    score: score.min(u32::MAX as usize) as u32,
                    fill_len: fill.entries.len() as u32,
                    confidence_ppm: ppm(fill.confidence),
                });
                return Some(fill);
            }
        }
        stats.corpus_misses += 1;
        recorder.emit(JournalEvent::CorpusLookup {
            hole,
            candidates: scratch.corpus_cands.len() as u32,
            hit: false,
            cs_segment: 0,
            score: 0,
            fill_len: 0,
            confidence_ppm: 0,
        });
        None
    }

    /// Stable dominator-informed re-rank of the candidate list (see
    /// [`Recovery::with_dominators`]): ties on the common-suffix score are
    /// broken by how many of the anchor's located instructions dominate
    /// the hole's resume point.
    fn rank_with_dominators(
        &self,
        ranked: &mut [(Candidate, usize)],
        segments: &[SegmentView],
        post_seg: usize,
    ) {
        let Some(doms) = self.doms else { return };
        let Some(&resume) = segments[post_seg].nodes.iter().flatten().next() else {
            return;
        };
        let (rm, rb) = self.icfg.location(resume);
        let x = self.cfg.anchor_len;
        let bonus = |&(si, end): &Candidate| -> usize {
            segments[si].nodes[end + 1 - x..=end]
                .iter()
                .flatten()
                .filter(|&&n| {
                    let (m, b) = self.icfg.location(n);
                    m == rm && doms.bci_dominates(m, b, rb)
                })
                .count()
        };
        ranked.sort_by_key(|(cand, score)| {
            (std::cmp::Reverse(*score), std::cmp::Reverse(bonus(cand)))
        });
    }

    /// Estimated maximum number of events the hole can hold, from its
    /// timestamp span and the IS's observed event rate.
    fn hole_budget(
        &self,
        segments: &[SegmentView],
        is_seg: usize,
        loss: Option<LossRecord>,
    ) -> usize {
        let Some(loss) = loss else {
            return self.cfg.max_walk;
        };
        let is = &segments[is_seg];
        let span = loss.last_ts.saturating_sub(loss.first_ts).max(1);
        let is_events = is.events.len().max(2) as f64;
        let is_span = is
            .events
            .last()
            .map(|l| l.ts.saturating_sub(is.events[0].ts))
            .unwrap_or(0)
            .max(1) as f64;
        let rate = is_events / is_span; // events per cycle
        ((span as f64 * rate * self.cfg.budget_factor) as usize).clamp(4, 100_000)
    }

    fn entries_from_cs(
        &self,
        segments: &[SegmentView],
        cs_seg: usize,
        from: usize,
        len: usize,
        is_seg: usize,
        loss: Option<LossRecord>,
    ) -> Fill {
        let cs = &segments[cs_seg];
        let (t0, t1) = match loss {
            Some(l) => (l.first_ts, l.last_ts),
            None => {
                let t = segments[is_seg].events.last().map(|e| e.ts).unwrap_or(0);
                (t, t)
            }
        };
        let mut fill = Fill::default();
        for k in 0..len {
            let e = &cs.events[from + k];
            let node = cs.nodes[from + k];
            let ts = if len > 1 {
                t0 + (t1 - t0) * k as u64 / (len as u64 - 1).max(1)
            } else {
                t0
            };
            let (method, bci) = match node {
                Some(n) => {
                    let (m, b) = self.icfg.location(n);
                    (Some(m), Some(b))
                }
                None => (e.method, e.bci),
            };
            fill.entries.push(TraceEntry {
                op: e.sym.op,
                method,
                bci,
                ts,
                origin: TraceOrigin::Recovered,
            });
            // The splice itself is a seam; inside the window, the CS's own
            // projection seams carry over.
            let boundary = k == 0 || cs.breaks.binary_search(&(from + k)).is_ok();
            // Spliced content stands in for events the hardware dropped:
            // every seam inside it is lossy for the linter.
            fill.steps.push(LintStep {
                node,
                op: e.sym.op,
                dir: e.sym.dir,
                boundary,
                lossy: boundary,
            });
        }
        fill
    }

    /// Fallback: bounded breadth-first walk on the ICFG from the last
    /// projected node before the hole to the first projected node after
    /// it (the paper "walks the ICFG and returns a random path").
    fn walk_fill(
        &self,
        segments: &[SegmentView],
        is_seg: usize,
        post_seg: usize,
        loss: Option<LossRecord>,
        scratch: &mut FillScratch,
    ) -> Option<Fill> {
        let from = segments[is_seg]
            .nodes
            .iter()
            .rev()
            .flatten()
            .next()
            .copied()?;
        let to = segments[post_seg].nodes.iter().flatten().next().copied()?;
        let max = self.cfg.max_walk;
        // BFS for a shortest connecting path, on reusable buffers.
        let parent = &mut scratch.parent;
        let queue = &mut scratch.queue;
        parent.clear();
        queue.clear();
        queue.push_back((from, 0usize));
        parent.insert(from, from);
        let mut reached = false;
        while let Some((n, d)) = queue.pop_front() {
            if n == to && d > 0 {
                reached = true;
                break;
            }
            if d >= max {
                continue;
            }
            for e in self.icfg.edges(n) {
                if let std::collections::hash_map::Entry::Vacant(v) = parent.entry(e.to) {
                    v.insert(n);
                    queue.push_back((e.to, d + 1));
                }
            }
        }
        if !reached {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            path.push(cur);
            cur = parent[&cur];
        }
        path.reverse();
        // Drop the final node (it is the post segment's first event).
        path.pop();
        let (t0, t1) = match loss {
            Some(l) => (l.first_ts, l.last_ts),
            None => (0, 0),
        };
        let len = path.len().max(1) as u64;
        let mut fill = Fill::default();
        for (k, &n) in path.iter().enumerate() {
            let (m, b) = self.icfg.location(n);
            let insn = self.program.method(m).insn(b);
            let op = insn.op_kind();
            fill.entries.push(TraceEntry {
                op,
                method: Some(m),
                bci: Some(b),
                ts: t0 + (t1.saturating_sub(t0)) * k as u64 / len,
                origin: TraceOrigin::Walked,
            });
            // A walk is a real ICFG path starting at the IS's last located
            // node and ending one edge before the post segment's first —
            // edge-connected on both sides, so no boundaries: the linter
            // verifies every transition of the walk.
            fill.steps.push(LintStep::at(n, op));
        }
        Some(fill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_cfg::BranchDir;

    fn sym(op: OpKind) -> Sym {
        Sym::plain(op)
    }

    fn seg_from_ops(ops: &[OpKind]) -> SegmentView {
        SegmentView {
            events: ops
                .iter()
                .enumerate()
                .map(|(i, &op)| BcEvent {
                    sym: sym(op),
                    method: None,
                    bci: None,
                    ts: i as u64 * 10,
                })
                .collect(),
            nodes: vec![None; ops.len()],
            breaks: Vec::new(),
            loss_before: None,
        }
    }

    fn tiny_program() -> (Program, Icfg) {
        use jportal_bytecode::builder::ProgramBuilder;
        use jportal_bytecode::Instruction as I;
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::Iconst(1));
        m.emit(I::Pop);
        m.emit(I::Return);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let icfg = Icfg::build(&p);
        (p, icfg)
    }

    use jportal_bytecode::Program;

    #[test]
    fn indexed_segment_tiers() {
        let seg = IndexedSegment::new(&seg_from_ops(&[
            OpKind::Iload,
            OpKind::InvokeStatic,
            OpKind::Ifeq,
            OpKind::Iadd,
            OpKind::Ireturn,
        ]));
        assert_eq!(seg.t1, vec![1, 4]);
        assert_eq!(seg.t2, vec![1, 2, 4]);
        assert_eq!(seg.tier_count_before(Tier::CallStructure, 5), 2);
        assert_eq!(seg.tier_count_before(Tier::Control, 3), 2);
        assert_eq!(seg.tier_count_before(Tier::Concrete, 3), 3);
    }

    #[test]
    fn tier_suffix_lengths_obey_lemma_5_4() {
        // |α_l(ω0) ◦ α_l(ω1)| ≥ |α_l(ω0 ◦ ω1)| spot check.
        let a = IndexedSegment::new(&seg_from_ops(&[
            OpKind::Iload,
            OpKind::Ifeq,
            OpKind::Iadd,
            OpKind::Istore,
        ]));
        let b = IndexedSegment::new(&seg_from_ops(&[
            OpKind::Istore,
            OpKind::Ifeq,
            OpKind::Iadd,
            OpKind::Istore,
        ]));
        let m3 = a.tier_suffix(4, &b, 4, Tier::Concrete, usize::MAX);
        assert_eq!(m3, 3);
        let m2 = a.tier_suffix(4, &b, 4, Tier::Control, usize::MAX);
        assert_eq!(m2, 1, "one control symbol in the shared region");
        // Abstract suffix can only be ≥ the abstraction of the concrete
        // common suffix (here: equal).
        assert!(m2 >= 1);
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The summary prefilter's `can_confirm` must agree exactly with the
    /// literal confirm-scan success condition of `fill_hole_with` (scan
    /// `d ∈ 0..=budget.min(available)` for a window match): a pruned
    /// candidate that the scan would actually confirm changes the chosen
    /// fill, breaking the on/off report equivalence. Segments stay below
    /// [`CONFIRM_PROBE_CAP`] occurrences so the cap never forces a
    /// conservative "alive" answer and the check must be *exact*, not
    /// just sound.
    #[test]
    fn confirm_prefilter_matches_literal_confirm_scan() {
        use OpKind as O;
        let (p, icfg) = tiny_program();
        let pool = [
            O::Iadd,
            O::Isub,
            O::Dup,
            O::Pop,
            O::Ifeq,
            O::InvokeStatic,
            O::Ireturn,
        ];
        let mut s = 0x5EED_u64;
        let mut pruned = 0usize;
        let mut alive = 0usize;
        for _ in 0..200 {
            let len = 3 + (splitmix(&mut s) % 60) as usize;
            let ops: Vec<OpKind> = (0..len)
                .map(|_| pool[(splitmix(&mut s) % pool.len() as u64) as usize])
                .collect();
            let segs = vec![seg_from_ops(&ops)];
            let mut rec = Recovery::new(&p, &icfg, &segs, RecoveryConfig::default());
            for seg in &mut rec.indexed {
                seg.build_op_index();
            }
            for _ in 0..20 {
                let end = (splitmix(&mut s) % len as u64) as usize;
                let y = 1 + (splitmix(&mut s) % 5) as usize;
                let window: Vec<Sym> = (0..y)
                    .map(|_| sym(pool[(splitmix(&mut s) % pool.len() as u64) as usize]))
                    .collect();
                let budget = (splitmix(&mut s) % 40) as usize;
                let got = rec.can_confirm(
                    (0, end),
                    &ConfirmCtx {
                        post_window: &window,
                        budget,
                    },
                );
                // Literal reimplementation of the confirm scan.
                let suffix_start = end + 1;
                let available = len.saturating_sub(suffix_start);
                let expect = (0..=budget.min(available)).any(|d| {
                    let from = suffix_start + d;
                    from + y <= len
                        && window
                            .iter()
                            .enumerate()
                            .all(|(k, &w)| sym_compat(sym(ops[from + k]), w))
                });
                assert_eq!(
                    got, expect,
                    "ops={ops:?} end={end} window={window:?} budget={budget}"
                );
                if expect {
                    alive += 1;
                } else {
                    pruned += 1;
                }
            }
        }
        // The sweep must actually exercise both verdicts.
        assert!(pruned > 100, "too few unconfirmable cases: {pruned}");
        assert!(alive > 100, "too few confirmable cases: {alive}");
    }

    /// Builds the paper's Figure 6 scenario: an IS `…XEF⋄` with the true
    /// continuation `GHX`, a good CS containing `…CDXEFGHX…`, and a decoy
    /// whose anchor matches but whose prefix does not.
    fn figure6() -> (Program, Icfg, Vec<SegmentView>) {
        let (p, icfg) = tiny_program();
        use OpKind as O;
        // Alphabet mapping: A..Z → arbitrary distinct op kinds.
        let (a, b, c, d, e, f, g, h, x, j, y, m) = (
            O::Iadd,
            O::Isub,
            O::Imul,
            O::Iand,
            O::Ior,
            O::Ixor,
            O::Ishl,
            O::Ishr,
            O::Dup,
            O::Pop,
            O::Swap,
            O::Ineg,
        );
        // CS #1 (good): M C D X E F G H X B D C A C B X E F J Y X B
        let cs1 = seg_from_ops(&[
            m, c, d, x, e, f, g, h, x, b, d, c, a, c, b, x, e, f, j, y, x, b,
        ]);
        // CS #2 (decoy): A C D X E F B D C A — wait, the decoy in the
        // paper matches the anchor XEF but has a *different* prefix; build
        // one with no shared prefix before the anchor.
        let cs2 = seg_from_ops(&[y, j, x, e, f, j, j, j, j, j]);
        // IS: … C D X E F ⋄   (prefix shares "CD" with CS#1)
        let mut is = seg_from_ops(&[a, c, d, x, e, f]);
        is.loss_before = None;
        // Post segment: B D C A …
        let mut post = seg_from_ops(&[b, d, c, a, m, m]);
        post.loss_before = Some(LossRecord {
            stream_offset: 0,
            first_ts: 60,
            last_ts: 100,
            lost_bytes: 10,
            lost_packets: 3,
        });
        (p, icfg, vec![cs1, cs2, is, post])
    }

    #[test]
    fn figure6_recovery_prefers_the_matching_cs() {
        let (p, icfg, segs) = figure6();
        let cfg = RecoveryConfig {
            anchor_len: 3,
            confirm_len: 3,
            budget_factor: 16.0,
            ..RecoveryConfig::default()
        };
        let rec = Recovery::new(&p, &icfg, &segs, cfg);
        let mut stats = RecoveryStats::default();
        let fill = rec.fill_hole(&segs, 2, 3, segs[3].loss_before, &mut stats);
        // Fill must be G H X (the CS suffix up to where BDC matches).
        let ops: Vec<OpKind> = fill.entries.iter().map(|e| e.op).collect();
        assert_eq!(ops, vec![OpKind::Ishl, OpKind::Ishr, OpKind::Dup]);
        assert!(fill
            .entries
            .iter()
            .all(|e| e.origin == TraceOrigin::Recovered));
        // A CS splice starts at a seam; steps align with entries.
        assert_eq!(fill.steps.len(), fill.entries.len());
        assert!(fill.steps[0].boundary);
        assert_eq!(stats.filled_from_cs, 1);
        assert_eq!(stats.holes, 1);
    }

    #[test]
    fn algorithm3_and_algorithm4_rank_the_same_winner() {
        let (p, icfg, segs) = figure6();
        let cfg = RecoveryConfig {
            anchor_len: 3,
            confirm_len: 3,
            ..RecoveryConfig::default()
        };
        let rec = Recovery::new(&p, &icfg, &segs, cfg);
        let mut s3 = RecoveryStats::default();
        let mut s4 = RecoveryStats::default();
        let naive = rec.search_naive(2, &mut s3);
        let guided = rec.search_abstraction(2, &mut s4);
        assert!(!naive.is_empty() && !guided.is_empty());
        assert_eq!(naive[0].0, guided[0].0, "same best CS");
        assert_eq!(naive[0].1, guided[0].1, "same concrete suffix length");
    }

    #[test]
    fn timestamps_interpolate_across_the_hole() {
        let (p, icfg, segs) = figure6();
        let cfg = RecoveryConfig {
            anchor_len: 3,
            confirm_len: 3,
            budget_factor: 16.0,
            ..RecoveryConfig::default()
        };
        let rec = Recovery::new(&p, &icfg, &segs, cfg);
        let mut stats = RecoveryStats::default();
        let fill = rec.fill_hole(&segs, 2, 3, segs[3].loss_before, &mut stats);
        assert_eq!(fill.entries.first().unwrap().ts, 60);
        assert_eq!(fill.entries.last().unwrap().ts, 100);
    }

    #[test]
    fn unfillable_hole_falls_back_or_reports() {
        let (p, icfg) = tiny_program();
        // Two segments with nothing in common and no nodes projected:
        // neither CS search nor the walk can help.
        let segs = vec![
            seg_from_ops(&[OpKind::Iadd, OpKind::Isub, OpKind::Imul, OpKind::Iand]),
            seg_from_ops(&[OpKind::Swap, OpKind::Dup, OpKind::Pop]),
        ];
        let rec = Recovery::new(&p, &icfg, &segs, RecoveryConfig::default());
        let mut stats = RecoveryStats::default();
        let fill = rec.fill_hole(&segs, 0, 1, None, &mut stats);
        assert!(fill.entries.is_empty());
        assert_eq!(stats.unfilled, 1);
    }

    #[test]
    fn walk_fallback_connects_projected_nodes() {
        let (p, icfg) = tiny_program();
        // IS ends projected at node(main, 0); post starts at node(main, 2).
        let entry = p.entry();
        let mut is = seg_from_ops(&[OpKind::Iconst]);
        is.nodes = vec![Some(icfg.node(entry, Bci(0)))];
        let mut post = seg_from_ops(&[OpKind::Return]);
        post.nodes = vec![Some(icfg.node(entry, Bci(2)))];
        let segs = vec![is, post];
        let rec = Recovery::new(&p, &icfg, &segs, RecoveryConfig::default());
        let mut stats = RecoveryStats::default();
        let fill = rec.fill_hole(&segs, 0, 1, None, &mut stats);
        assert_eq!(stats.filled_by_walk, 1);
        // The walk passes through bci 1 (pop).
        assert_eq!(fill.entries.len(), 1);
        assert_eq!(fill.entries[0].op, OpKind::Pop);
        assert_eq!(fill.entries[0].origin, TraceOrigin::Walked);
        // Walk steps are located and boundary-free: fully lintable.
        assert!(fill.steps.iter().all(|s| s.node.is_some() && !s.boundary));
    }

    #[test]
    fn seeded_fault_in_recovered_segment_is_linted() {
        use jportal_analysis::{lint_steps, LintStep};
        let (p, icfg) = tiny_program();
        let entry = p.entry();
        let mut is = seg_from_ops(&[OpKind::Iconst]);
        is.nodes = vec![Some(icfg.node(entry, Bci(0)))];
        let mut post = seg_from_ops(&[OpKind::Return]);
        post.nodes = vec![Some(icfg.node(entry, Bci(2)))];
        let segs = vec![is, post];
        let rec = Recovery::new(&p, &icfg, &segs, RecoveryConfig::default());
        let mut stats = RecoveryStats::default();
        let fill = rec.fill_hole(&segs, 0, 1, None, &mut stats);
        assert_eq!(stats.filled_by_walk, 1);

        // Splice the fill between the located IS tail and post head, the
        // way `assemble_thread` does (segment starts are seams).
        let splice = |fill_steps: &[LintStep]| {
            let mut steps = vec![LintStep::at(icfg.node(entry, Bci(0)), OpKind::Iconst).seam()];
            steps.extend_from_slice(fill_steps);
            steps.push(LintStep::at(icfg.node(entry, Bci(2)), OpKind::Return));
            steps
        };
        // The honest fill is feasible end to end.
        assert!(lint_steps(&p, &icfg, &splice(&fill.steps)).is_empty());

        // Seeded fault: corrupt the recovered step to claim the walk
        // revisited bci 0 — no such ICFG edge exists, and the linter
        // must say so.
        let mut bad = fill.steps.clone();
        bad[0] = LintStep::at(icfg.node(entry, Bci(0)), OpKind::Iconst);
        let diags = lint_steps(&p, &icfg, &splice(&bad));
        assert!(
            !diags.is_empty(),
            "corrupted recovered segment must produce a diagnostic"
        );
    }

    #[test]
    fn dir_compat_matters_in_matching() {
        assert!(sym_compat(
            Sym::plain(OpKind::Ifeq),
            Sym::branch(OpKind::Ifeq, true)
        ));
        assert!(!sym_compat(
            Sym::branch(OpKind::Ifeq, false),
            Sym::branch(OpKind::Ifeq, true)
        ));
        assert!(!sym_compat(sym(OpKind::Iadd), sym(OpKind::Isub)));
        let _ = BranchDir::Unknown;
    }
}
