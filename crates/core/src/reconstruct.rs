//! Control-flow reconstruction (§4): projecting decoded segments onto the
//! ICFG.
//!
//! Each decoded segment is a string over the bytecode alphabet; the ICFG
//! is an NFA (Definition 4.1). Projection finds a path through the NFA
//! that spells the segment. Three refinements over the plain formulation:
//!
//! * JIT-decoded events carry exact `(method, bci)` locations, which pin
//!   the corresponding NFA state (the matching is *constrained*, not
//!   free);
//! * candidate start states are pre-filtered by the **abstract NFA**
//!   (Algorithm 2 / Theorem 4.4) when enabled;
//! * a mismatch does not abort: the longest matched prefix is emitted and
//!   matching restarts at the failing symbol — "a new subsequence starts"
//!   (§4, Challenges) — so dynamic transfers absent from the static ICFG
//!   degrade gracefully.

use jportal_analysis::{required_window_ops, SummaryTable};
use jportal_bytecode::Program;
use jportal_cfg::abs::AbstractNfa;
use jportal_cfg::{Icfg, MatchScratch, Nfa, NodeId, Sym};

use crate::decode::BcEvent;

/// Projection tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionConfig {
    /// Use the abstraction-guided start filter (Algorithm 2). Disabling
    /// falls back to trying all candidate starts concretely (Algorithm 1's
    /// search space).
    pub use_abstraction: bool,
    /// Only run the abstract filter when at least this many candidate
    /// start states exist (tiny candidate sets are cheaper to try
    /// concretely).
    pub abstraction_threshold: usize,
    /// Cap on how many symbols of the pending run the abstract filter
    /// inspects (long runs reject quickly anyway).
    pub abstraction_lookahead: usize,
}

impl Default for ProjectionConfig {
    fn default() -> ProjectionConfig {
        ProjectionConfig {
            use_abstraction: true,
            abstraction_threshold: 4,
            abstraction_lookahead: 64,
        }
    }
}

/// Statistics from projecting one segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProjectionStats {
    /// Events that received an ICFG node.
    pub matched: usize,
    /// Events left unmatched.
    pub unmatched: usize,
    /// Number of restarts (subsequence boundaries hit).
    pub restarts: usize,
    /// Candidate start states examined.
    pub candidates_tried: usize,
    /// Candidates rejected by the abstract filter.
    pub candidates_pruned: usize,
    /// Candidates rejected by the interprocedural summary filter before
    /// the abstract DFA even ran: the candidate's method alphabet cannot
    /// cover the window's required control ops (see
    /// [`jportal_analysis::required_window_ops`]). Every one of these
    /// would also have been rejected by the abstract filter — the
    /// summary check is the cheap first line, so these prunes are DFA
    /// probes saved, not extra rejections.
    pub summary_pruned: usize,
    /// Times the abstract start filter (the tabled DFA path) actually
    /// ran, as opposed to falling through to the concrete scan.
    pub dfa_runs: usize,
    /// Widest NFA frontier layer hit while matching (ambiguity
    /// high-water mark; 1 = the whole projection was unambiguous).
    pub frontier_width_max: usize,
}

impl ProjectionStats {
    /// Folds another segment's statistics into this one.
    ///
    /// Addition is commutative and associative, so any reduction order —
    /// sequential accumulation or a parallel tree reduce — produces the
    /// same totals.
    pub fn merge(&mut self, other: &ProjectionStats) {
        self.matched += other.matched;
        self.unmatched += other.unmatched;
        self.restarts += other.restarts;
        self.candidates_tried += other.candidates_tried;
        self.candidates_pruned += other.candidates_pruned;
        self.summary_pruned += other.summary_pruned;
        self.dfa_runs += other.dfa_runs;
        // `max` is likewise commutative and associative.
        self.frontier_width_max = self.frontier_width_max.max(other.frontier_width_max);
    }
}

/// The result of projecting one segment.
///
/// Within one matched run, consecutive located nodes are connected by a
/// real ICFG edge (the NFA only steps along edges). Across a restart seam
/// no such edge is guaranteed; [`Projection::breaks`] records where those
/// seams are so downstream consumers (notably the trace-feasibility
/// linter) do not treat them as adjacency violations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Projection {
    /// One entry per event, in order; `None` for events that could not be
    /// placed (no candidate state, or isolated mismatches).
    pub nodes: Vec<Option<NodeId>>,
    /// Event indices starting a new matched run — i.e. positions with no
    /// ICFG-edge guarantee from the previous event. Never contains 0.
    pub breaks: Vec<usize>,
    /// Matching statistics.
    pub stats: ProjectionStats,
}

/// Projects a decoded segment onto the ICFG.
///
/// Returns one `Option<NodeId>` per event (in order), the restart seam
/// positions, and statistics.
///
/// Convenience wrapper over [`project_segment_with`] with one-shot
/// scratch; pipeline workers hold a [`MatchScratch`] across segments.
pub fn project_segment(
    program: &Program,
    icfg: &Icfg,
    anfa: &AbstractNfa<'_>,
    events: &[BcEvent],
    cfg: &ProjectionConfig,
) -> Projection {
    project_segment_with(
        program,
        icfg,
        anfa,
        events,
        cfg,
        None,
        &mut MatchScratch::new(),
    )
}

/// [`project_segment`] with caller-provided scratch buffers for the
/// layered set-simulation (no per-symbol allocations; the frontier arena
/// is reused across matched runs and across segments), plus an optional
/// interprocedural summary table.
///
/// With `summaries` present, restart candidates are screened by a u64
/// bitset test before any abstract-DFA probe: the window's required
/// control ops (everything the abstract run must consume in the start
/// method — see [`required_window_ops`]) must be covered by the
/// candidate method's alphabet. The check is a *necessary condition for
/// abstract acceptance* (methods with silent exception escapes are
/// exempted), so it only ever rejects candidates the DFA would reject —
/// the projection is identical with the table present or absent.
#[allow(clippy::too_many_arguments)]
pub fn project_segment_with(
    program: &Program,
    icfg: &Icfg,
    anfa: &AbstractNfa<'_>,
    events: &[BcEvent],
    cfg: &ProjectionConfig,
    summaries: Option<&SummaryTable>,
    scratch: &mut MatchScratch,
) -> Projection {
    let nfa = Nfa::new(program, icfg);
    let mut out: Vec<Option<NodeId>> = vec![None; events.len()];
    let mut breaks: Vec<usize> = Vec::new();
    let mut stats = ProjectionStats::default();
    scratch.reset_frontier_peak();

    let constraint = |e: &BcEvent| -> Option<NodeId> {
        match (e.method, e.bci) {
            (Some(m), Some(b)) => Some(icfg.node(m, b)),
            _ => None,
        }
    };

    // One flat symbol array per segment, so matched runs and abstraction
    // windows are slices instead of per-restart collects.
    let syms: Vec<Sym> = events.iter().map(|e| e.sym).collect();
    let mut starts: Vec<NodeId> = Vec::new();
    let mut witness: Vec<NodeId> = Vec::new();

    let mut i = 0usize;
    while i < events.len() {
        // Each outer iteration starts a fresh matched run; all but the
        // first are restart seams with no edge guarantee behind them.
        if i > 0 {
            breaks.push(i);
        }
        // Build the start layer for position i.
        let sym0 = events[i].sym;
        starts.clear();
        match constraint(&events[i]) {
            Some(n) => starts.push(n),
            None => {
                let candidates = nfa.start_candidates(sym0);
                stats.candidates_tried += candidates.len();
                if cfg.use_abstraction && candidates.len() >= cfg.abstraction_threshold {
                    stats.dfa_runs += 1;
                    let lookahead_end = (i + cfg.abstraction_lookahead).min(events.len());
                    let window = &syms[i..lookahead_end];
                    let abs = jportal_cfg::tier::abstract_seq(window, jportal_cfg::Tier::Control);
                    let required = summaries.map(|_| required_window_ops(window));
                    let mut summary_pruned = 0usize;
                    starts.extend(candidates.iter().copied().filter(|&n| {
                        if let (Some(table), Some(req)) = (summaries, required) {
                            let m = icfg.method_of(n);
                            if !table.eps_escapes(m) && !table.summary(m).ops.contains_all(req) {
                                summary_pruned += 1;
                                return false;
                            }
                        }
                        anfa.abstract_accepts_from(n, sym0, &abs)
                    }));
                    stats.summary_pruned += summary_pruned;
                    stats.candidates_pruned += candidates.len() - starts.len() - summary_pruned;
                } else {
                    starts.extend_from_slice(candidates);
                }
            }
        };
        if starts.is_empty() {
            // Unplaceable event; skip it.
            stats.unmatched += 1;
            i += 1;
            stats.restarts += 1;
            continue;
        }

        // Layered simulation with constraints, keeping the longest prefix.
        let matched_len = nfa.match_longest_constrained_with(
            &starts,
            &syms[i..],
            |k| constraint(&events[i + k]),
            scratch,
            &mut witness,
        );
        for (back, &node) in witness.iter().enumerate() {
            out[i + back] = Some(node);
        }
        let j = i + matched_len;
        stats.matched += matched_len;
        if j < events.len() {
            stats.restarts += 1;
        }
        i = j;
    }
    stats.frontier_width_max = scratch.frontier_peak() as usize;
    Projection {
        nodes: out,
        breaks,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{Bci, CmpKind, Instruction as I, MethodId, OpKind};
    use jportal_cfg::Sym;

    fn paper_fun() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Test", None, 0);
        let mut m = pb.method(c, "fun", 2, true);
        let else_ = m.label();
        let join = m.label();
        let odd = m.label();
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Eq, else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(1));
        m.emit(I::Iadd);
        m.emit(I::Istore(1));
        m.jump(join);
        m.bind(else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Isub);
        m.emit(I::Istore(1));
        m.bind(join);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Irem);
        m.branch_if(CmpKind::Ne, odd);
        m.emit(I::Iconst(1));
        m.emit(I::Ireturn);
        m.bind(odd);
        m.emit(I::Iconst(0));
        m.emit(I::Ireturn);
        let fun = m.finish();
        let mut main = pb.method(c, "main", 0, false);
        main.emit(I::Iconst(0));
        main.emit(I::Iconst(7));
        main.emit(I::InvokeStatic(fun));
        main.emit(I::Pop);
        main.emit(I::Return);
        let main = main.finish();
        (pb.finish_with_entry(main).unwrap(), fun)
    }

    fn ev(op: OpKind, dir: Option<bool>) -> BcEvent {
        BcEvent {
            sym: match dir {
                Some(t) => Sym::branch(op, t),
                None => Sym::plain(op),
            },
            method: None,
            bci: None,
            ts: 0,
        }
    }

    fn ev_known(program: &Program, m: MethodId, bci: u32) -> BcEvent {
        let insn = program.method(m).insn(Bci(bci));
        BcEvent {
            sym: Sym::of_instruction(insn),
            method: Some(m),
            bci: Some(Bci(bci)),
            ts: 0,
        }
    }

    #[test]
    fn projects_an_unambiguous_interpreted_run() {
        let (p, fun) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        let events = vec![
            ev(OpKind::Iload, None),
            ev(OpKind::Ifeq, Some(true)),
            ev(OpKind::Iload, None),
            ev(OpKind::Iconst, None),
            ev(OpKind::Isub, None),
            ev(OpKind::Istore, None),
        ];
        let proj = project_segment(&p, &icfg, &anfa, &events, &ProjectionConfig::default());
        let (nodes, stats) = (proj.nodes, proj.stats);
        assert_eq!(stats.unmatched, 0);
        let bcis: Vec<u32> = nodes.iter().map(|n| icfg.bci_of(n.unwrap()).0).collect();
        assert_eq!(bcis, vec![0, 1, 7, 8, 9, 10]);
        assert!(nodes.iter().all(|n| icfg.method_of(n.unwrap()) == fun));
    }

    #[test]
    fn constraints_pin_jit_events() {
        let (p, fun) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        // Interp prefix, then JIT-decoded events with known locations.
        let events = vec![
            ev(OpKind::Iload, None),
            ev_known(&p, fun, 12),
            ev_known(&p, fun, 13),
        ];
        let proj = project_segment(&p, &icfg, &anfa, &events, &ProjectionConfig::default());
        let (nodes, stats) = (proj.nodes, proj.stats);
        assert_eq!(stats.unmatched, 0);
        // The free iload must resolve to bci 11 (the only iload whose
        // successor is bci 12).
        assert_eq!(icfg.bci_of(nodes[0].unwrap()), Bci(11));
        assert_eq!(icfg.bci_of(nodes[1].unwrap()), Bci(12));
    }

    #[test]
    fn mismatch_restarts_rather_than_fails() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        // irem → iadd never happens contiguously; the projector must
        // split into two matched runs.
        let events = vec![
            ev(OpKind::Iload, None),
            ev(OpKind::Iconst, None),
            ev(OpKind::Irem, None),
            ev(OpKind::Iadd, None),
            ev(OpKind::Istore, None),
        ];
        let proj = project_segment(&p, &icfg, &anfa, &events, &ProjectionConfig::default());
        let (nodes, stats) = (proj.nodes, proj.stats);
        assert!(stats.restarts >= 1);
        assert!(nodes[0].is_some() && nodes[2].is_some());
        assert!(nodes[3].is_some() && nodes[4].is_some());
        assert_eq!(icfg.bci_of(nodes[3].unwrap()), Bci(4));
    }

    #[test]
    fn abstraction_and_plain_projection_agree() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        let events = vec![
            ev(OpKind::Iload, None),
            ev(OpKind::Iconst, None),
            ev(OpKind::Irem, None),
            ev(OpKind::Ifne, Some(false)),
            ev(OpKind::Iconst, None),
            ev(OpKind::Ireturn, None),
        ];
        let with = project_segment(&p, &icfg, &anfa, &events, &ProjectionConfig::default());
        let without = project_segment(
            &p,
            &icfg,
            &anfa,
            &events,
            &ProjectionConfig {
                use_abstraction: false,
                ..ProjectionConfig::default()
            },
        );
        assert_eq!(with.nodes, without.nodes, "same projection either way");
        assert!(
            with.stats.candidates_pruned > 0,
            "abstraction pruned something"
        );
    }

    #[test]
    fn unknown_ops_are_skipped_gracefully() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        // `goto` exists in fun; `athrow` does not exist anywhere.
        let events = vec![ev(OpKind::Athrow, None), ev(OpKind::Iload, None)];
        let proj = project_segment(&p, &icfg, &anfa, &events, &ProjectionConfig::default());
        let (nodes, stats) = (proj.nodes, proj.stats);
        assert!(nodes[0].is_none());
        assert!(nodes[1].is_some());
        assert_eq!(stats.unmatched, 1);
    }

    #[test]
    fn directions_disambiguate_projection() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        let taken = vec![
            ev(OpKind::Irem, None),
            ev(OpKind::Ifne, Some(true)),
            ev(OpKind::Iconst, None),
        ];
        let not_taken = vec![
            ev(OpKind::Irem, None),
            ev(OpKind::Ifne, Some(false)),
            ev(OpKind::Iconst, None),
        ];
        let a = project_segment(&p, &icfg, &anfa, &taken, &ProjectionConfig::default());
        let b = project_segment(&p, &icfg, &anfa, &not_taken, &ProjectionConfig::default());
        assert_eq!(icfg.bci_of(a.nodes[2].unwrap()), Bci(17));
        assert_eq!(icfg.bci_of(b.nodes[2].unwrap()), Bci(15));
    }

    use jportal_bytecode::Program;
}
