//! Accuracy scoring against ground truth (§7.2).
//!
//! The paper measures "the degree of matching between each
//! JPortal-reconstructed control flow path and its corresponding path"
//! from instrumentation-based ground truth. We align the reconstructed
//! entry sequence against the executor's exact trace with a greedy
//! resynchronizing aligner (k-gram resync), and additionally produce the
//! Table 3 breakdown: how much data was missing, how much was recovered
//! vs decoded, and the accuracy of each part.

use jportal_bytecode::{Bci, MethodId, Program};
use jportal_jvm::truth::TruthEvent;
use jportal_jvm::GroundTruth;

use crate::pipeline::JPortalReport;
use crate::recover::{TraceEntry, TraceOrigin};

/// One comparable item: a located statement or a bare opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Item {
    Located(MethodId, Bci),
    Op(jportal_bytecode::OpKind),
}

fn truth_item(program: &Program, e: &TruthEvent) -> Item {
    let _ = program;
    Item::Located(e.method, e.bci)
}

fn recon_item(program: &Program, e: &TraceEntry) -> Item {
    match (e.method, e.bci) {
        (Some(m), Some(b)) => Item::Located(m, b),
        _ => {
            let _ = program;
            Item::Op(e.op)
        }
    }
}

fn items_match(program: &Program, t: Item, r: Item) -> bool {
    match (t, r) {
        (Item::Located(m1, b1), Item::Located(m2, b2)) => m1 == m2 && b1 == b2,
        (Item::Located(m, b), Item::Op(op)) | (Item::Op(op), Item::Located(m, b)) => {
            program.method(m).insn(b).op_kind() == op
        }
        (Item::Op(a), Item::Op(b)) => a == b,
    }
}

/// Greedy alignment score in `[0, 1]`: matched items over the longer
/// sequence length. Resynchronizes after mismatches by searching for a
/// `k`-gram agreement within a bounded window.
pub fn alignment_score(program: &Program, truth: &[TruthEvent], recon: &[TraceEntry]) -> f64 {
    if truth.is_empty() && recon.is_empty() {
        return 1.0;
    }
    if truth.is_empty() || recon.is_empty() {
        return 0.0;
    }
    const K: usize = 4;
    const WINDOW: usize = 96;

    let t_items: Vec<Item> = truth.iter().map(|e| truth_item(program, e)).collect();
    let r_items: Vec<Item> = recon.iter().map(|e| recon_item(program, e)).collect();

    let kgram_match = |ti: usize, ri: usize| -> bool {
        if ti + K > t_items.len() || ri + K > r_items.len() {
            return false;
        }
        (0..K).all(|k| items_match(program, t_items[ti + k], r_items[ri + k]))
    };

    let mut ti = 0usize;
    let mut ri = 0usize;
    let mut matches = 0usize;
    while ti < t_items.len() && ri < r_items.len() {
        if items_match(program, t_items[ti], r_items[ri]) {
            matches += 1;
            ti += 1;
            ri += 1;
            continue;
        }
        // Resync: smallest combined skip with a k-gram agreement.
        let mut resync: Option<(usize, usize)> = None;
        'search: for s in 1..WINDOW {
            for dt in 0..=s {
                let dr = s - dt;
                if kgram_match(ti + dt, ri + dr) {
                    resync = Some((dt, dr));
                    break 'search;
                }
            }
        }
        match resync {
            Some((dt, dr)) => {
                ti += dt.max(if dr == 0 { 1 } else { 0 });
                ri += dr.max(if dt == 0 { 1 } else { 0 });
                // At least one side must advance; both zero cannot happen
                // since items at (ti, ri) mismatch while the k-gram check
                // at (0,0) would require a match.
            }
            None => {
                ti += 1;
                ri += 1;
            }
        }
    }
    matches as f64 / t_items.len().max(r_items.len()) as f64
}

/// The Table 3 breakdown for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccuracyBreakdown {
    /// Percent of missing data (PMD): truth events falling inside hole
    /// intervals, over all truth events.
    pub pmd: f64,
    /// Percent of the profile that recovery contributed (PR).
    pub pr: f64,
    /// Recovery accuracy (RA): alignment of recovered stretches against
    /// the truth inside holes.
    pub ra: f64,
    /// Percent of data captured (PDC = 1 − PMD).
    pub pdc: f64,
    /// Percent decoded (PD): decoded entries over truth events.
    pub pd: f64,
    /// Decoding accuracy (DA): alignment of decoded stretches against the
    /// truth outside holes.
    pub da: f64,
    /// Overall end-to-end accuracy (Figure 7).
    pub overall: f64,
}

/// Computes the full breakdown for a run.
pub fn breakdown(
    program: &Program,
    truth: &GroundTruth,
    report: &JPortalReport,
) -> AccuracyBreakdown {
    let mut total_truth = 0usize;
    let mut truth_in_holes = 0usize;
    let mut decoded_entries = 0usize;
    let mut recovered_entries = 0usize;
    let mut overall_num = 0.0;
    let mut overall_den = 0.0;
    let mut da_num = 0.0;
    let mut da_den = 0.0;
    let mut ra_num = 0.0;
    let mut ra_den = 0.0;

    for tr in &report.threads {
        let truth_trace = truth.trace(tr.thread);
        total_truth += truth_trace.len();
        let in_hole = |ts: u64| tr.holes.iter().any(|&(a, b)| a <= ts && ts <= b);

        let (truth_holes, truth_clear): (Vec<TruthEvent>, Vec<TruthEvent>) =
            truth_trace.iter().partition(|e| in_hole(e.ts));
        truth_in_holes += truth_holes.len();

        let decoded: Vec<TraceEntry> = tr
            .entries
            .iter()
            .filter(|e| e.origin == TraceOrigin::Decoded)
            .copied()
            .collect();
        let recovered: Vec<TraceEntry> = tr
            .entries
            .iter()
            .filter(|e| e.origin != TraceOrigin::Decoded)
            .copied()
            .collect();
        decoded_entries += decoded.len();
        recovered_entries += recovered.len();

        let w_clear = truth_clear.len() as f64;
        if w_clear > 0.0 {
            da_num += alignment_score(program, &truth_clear, &decoded) * w_clear;
            da_den += w_clear;
        }
        let w_holes = truth_holes.len() as f64;
        if w_holes > 0.0 {
            ra_num += alignment_score(program, &truth_holes, &recovered) * w_holes;
            ra_den += w_holes;
        }
        let w_all = truth_trace.len() as f64;
        if w_all > 0.0 {
            overall_num += alignment_score(program, truth_trace, &tr.entries) * w_all;
            overall_den += w_all;
        }
    }

    let total = total_truth.max(1) as f64;
    AccuracyBreakdown {
        pmd: truth_in_holes as f64 / total,
        pr: (recovered_entries as f64 / total).min(1.0),
        ra: if ra_den > 0.0 { ra_num / ra_den } else { 0.0 },
        pdc: 1.0 - truth_in_holes as f64 / total,
        pd: (decoded_entries as f64 / total).min(1.0),
        da: if da_den > 0.0 { da_num / da_den } else { 0.0 },
        overall: if overall_den > 0.0 {
            overall_num / overall_den
        } else {
            0.0
        },
    }
}

/// Convenience: the overall end-to-end accuracy (Figure 7's bars).
pub fn overall_accuracy(program: &Program, truth: &GroundTruth, report: &JPortalReport) -> f64 {
    breakdown(program, truth, report).overall
}

/// Hot-method detection accuracy (Table 4): size of the intersection of
/// the top-`n` sets.
pub fn hot_method_intersection(truth_top: &[MethodId], candidate_top: &[MethodId]) -> usize {
    candidate_top
        .iter()
        .filter(|m| truth_top.contains(m))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{Instruction as I, OpKind};

    fn prog() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::Iconst(1)); // 0
        m.emit(I::Pop); // 1
        m.emit(I::Iconst(2)); // 2
        m.emit(I::Pop); // 3
        m.emit(I::Return); // 4
        let id = m.finish();
        pb.finish_with_entry(id).unwrap()
    }

    fn truth_ev(bci: u32, ts: u64) -> TruthEvent {
        TruthEvent {
            method: MethodId(0),
            bci: Bci(bci),
            ts,
        }
    }

    fn recon(bci: u32, op: OpKind, ts: u64) -> TraceEntry {
        TraceEntry {
            op,
            method: Some(MethodId(0)),
            bci: Some(Bci(bci)),
            ts,
            origin: TraceOrigin::Decoded,
        }
    }

    #[test]
    fn perfect_match_scores_one() {
        let p = prog();
        let truth = vec![
            truth_ev(0, 0),
            truth_ev(1, 1),
            truth_ev(2, 2),
            truth_ev(3, 3),
            truth_ev(4, 4),
        ];
        let rec = vec![
            recon(0, OpKind::Iconst, 0),
            recon(1, OpKind::Pop, 1),
            recon(2, OpKind::Iconst, 2),
            recon(3, OpKind::Pop, 3),
            recon(4, OpKind::Return, 4),
        ];
        assert_eq!(alignment_score(&p, &truth, &rec), 1.0);
    }

    #[test]
    fn empty_cases() {
        let p = prog();
        assert_eq!(alignment_score(&p, &[], &[]), 1.0);
        assert_eq!(alignment_score(&p, &[truth_ev(0, 0)], &[]), 0.0);
        assert_eq!(
            alignment_score(&p, &[], &[recon(0, OpKind::Iconst, 0)]),
            0.0
        );
    }

    #[test]
    fn missing_middle_still_aligns_tail() {
        let p = prog();
        let truth: Vec<TruthEvent> = (0..5).map(|i| truth_ev(i, i as u64)).collect();
        // Reconstruction misses bci 1 and 2.
        let rec = vec![
            recon(0, OpKind::Iconst, 0),
            recon(3, OpKind::Pop, 3),
            recon(4, OpKind::Return, 4),
        ];
        let s = alignment_score(&p, &truth, &rec);
        assert!(s > 0.15 && s < 1.0, "partial credit, got {s}");
    }

    #[test]
    fn op_only_entries_match_by_opcode() {
        let p = prog();
        let truth = vec![truth_ev(0, 0), truth_ev(1, 1)];
        let rec = vec![
            TraceEntry {
                op: OpKind::Iconst,
                method: None,
                bci: None,
                ts: 0,
                origin: TraceOrigin::Decoded,
            },
            TraceEntry {
                op: OpKind::Pop,
                method: None,
                bci: None,
                ts: 1,
                origin: TraceOrigin::Decoded,
            },
        ];
        assert_eq!(alignment_score(&p, &truth, &rec), 1.0);
    }

    #[test]
    fn over_generation_is_penalized() {
        let p = prog();
        let truth = vec![truth_ev(0, 0), truth_ev(1, 1)];
        let rec: Vec<TraceEntry> = (0..10).map(|i| recon(0, OpKind::Iconst, i)).collect();
        let s = alignment_score(&p, &truth, &rec);
        assert!(s <= 0.2, "10 entries for 2 truths must score low, got {s}");
    }

    #[test]
    fn hot_method_intersection_counts() {
        let truth = vec![MethodId(1), MethodId(2), MethodId(3)];
        let cand = vec![MethodId(3), MethodId(9), MethodId(1)];
        assert_eq!(hot_method_intersection(&truth, &cand), 2);
        assert_eq!(hot_method_intersection(&truth, &[]), 0);
    }
}
