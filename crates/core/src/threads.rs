//! Multi-core / multi-thread trace segregation (§6).
//!
//! PT records per physical core; threads migrate between cores. JPortal
//! uses the thread-switch sideband records (timestamps at which each
//! thread is scheduled in/out) to cut each core's packet stream into
//! per-thread pieces, then splices the pieces of each thread across cores
//! in timestamp order.
//!
//! The paper notes this is a genuine source of imprecision: packet
//! timestamps come from periodic TSC packets and are coarser than
//! scheduling decisions, so packets near a switch boundary can land on
//! the wrong thread — that effect is faithfully present here.

use jportal_ipt::decode_packets;
use jportal_ipt::sideband::schedule_intervals;
use jportal_ipt::{segment_stream, CollectedTraces, RawSegment, ThreadId};
use std::collections::HashMap;

/// A per-thread piece of trace, tagged with its source core.
#[derive(Debug, Clone)]
pub struct ThreadPiece {
    /// The core the piece was captured on.
    pub core: u32,
    /// The raw packets (loss information preserved).
    pub segment: RawSegment,
}

/// Splits all per-core traces into per-thread, time-ordered piece lists.
///
/// Pieces created by scheduling splits carry `loss_before: None` (no data
/// was lost; only decoder context); pieces following a buffer overflow
/// keep their [`jportal_ipt::LossRecord`].
pub fn segregate(collected: &CollectedTraces) -> HashMap<ThreadId, Vec<ThreadPiece>> {
    let mut per_thread: HashMap<ThreadId, Vec<ThreadPiece>> = HashMap::new();

    for (core_idx, trace) in collected.per_core.iter().enumerate() {
        let core = core_idx as u32;
        let intervals = schedule_intervals(&collected.sideband, core, collected.end_ts);
        if intervals.is_empty() {
            continue;
        }
        let packets = decode_packets(&trace.bytes);
        let raw_segments = segment_stream(packets, &trace.losses, core);

        for seg in raw_segments {
            // Split the segment wherever the owning interval changes.
            let mut current_thread: Option<ThreadId> = None;
            let mut current: Vec<jportal_ipt::TimedPacket> = Vec::new();
            let mut first_piece = true;
            let mut flush = |thread: Option<ThreadId>,
                             packets: &mut Vec<jportal_ipt::TimedPacket>,
                             first: &mut bool| {
                if let (Some(t), false) = (thread, packets.is_empty()) {
                    let loss_before = if *first { seg.loss_before } else { None };
                    *first = false;
                    per_thread.entry(t).or_default().push(ThreadPiece {
                        core,
                        segment: RawSegment {
                            packets: std::mem::take(packets),
                            loss_before,
                            core,
                        },
                    });
                } else {
                    packets.clear();
                }
            };
            for p in seg.packets {
                let owner = owner_at(&intervals, p.ts);
                if owner != current_thread {
                    flush(current_thread, &mut current, &mut first_piece);
                    current_thread = owner;
                }
                current.push(p);
            }
            flush(current_thread, &mut current, &mut first_piece);
        }
    }

    // Order each thread's pieces by time.
    for pieces in per_thread.values_mut() {
        pieces.sort_by_key(|p| p.segment.packets.first().map(|tp| tp.ts).unwrap_or(0));
    }
    per_thread
}

fn owner_at(intervals: &[(ThreadId, u64, u64)], ts: u64) -> Option<ThreadId> {
    intervals
        .iter()
        .find(|&&(_, start, end)| start <= ts && ts < end)
        .map(|&(t, _, _)| t)
        // Packets after the last recorded interval belong to its thread.
        .or_else(|| {
            intervals
                .last()
                .filter(|&&(_, _, end)| ts >= end)
                .map(|&(t, _, _)| t)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};
    use jportal_jvm::runtime::{Jvm, JvmConfig, ThreadSpec};

    fn loopy() -> jportal_bytecode::Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(30));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, done);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let main = m.finish();
        pb.finish_with_entry(main).unwrap()
    }

    #[test]
    fn single_thread_single_core_is_one_stream() {
        let p = loopy();
        let r = Jvm::new(JvmConfig::default()).run(&p);
        let collected = r.traces.unwrap();
        let per_thread = segregate(&collected);
        assert_eq!(per_thread.len(), 1);
        let pieces = &per_thread[&ThreadId(0)];
        assert!(!pieces.is_empty());
        let total: usize = pieces.iter().map(|p| p.segment.packets.len()).sum();
        assert!(total > 10);
    }

    #[test]
    fn multiple_threads_are_separated() {
        let p = loopy();
        let jvm = Jvm::new(JvmConfig {
            cores: 2,
            quantum: 512, // force many switches
            ..JvmConfig::default()
        });
        let main = p.entry();
        let r = jvm.run_threads(
            &p,
            &[
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
            ],
        );
        let collected = r.traces.unwrap();
        let per_thread = segregate(&collected);
        assert_eq!(per_thread.len(), 3, "all three threads have pieces");
        for pieces in per_thread.values() {
            // Pieces are time-ordered.
            let starts: Vec<u64> = pieces
                .iter()
                .map(|p| p.segment.packets.first().map(|tp| tp.ts).unwrap_or(0))
                .collect();
            let mut sorted = starts.clone();
            sorted.sort();
            assert_eq!(starts, sorted);
        }
    }

    #[test]
    fn decoded_segments_keep_per_core_attribution() {
        let p = loopy();
        let jvm = Jvm::new(JvmConfig {
            cores: 2,
            quantum: 512,
            ..JvmConfig::default()
        });
        let main = p.entry();
        let r = jvm.run_threads(
            &p,
            &[
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
            ],
        );
        let collected = r.traces.unwrap();
        let per_thread = segregate(&collected);
        let mut cores_seen = std::collections::HashSet::new();
        for pieces in per_thread.values() {
            for piece in pieces {
                // The raw segment carries the core it was drained from,
                // and decoding preserves it.
                assert_eq!(piece.segment.core, piece.core);
                let decoded = crate::decode::decode_segment(&p, &r.archive, &piece.segment);
                assert_eq!(decoded.core, piece.core, "core id lost in decode");
                cores_seen.insert(piece.core);
            }
        }
        assert_eq!(
            cores_seen.len(),
            2,
            "three threads over two cores must produce pieces on both"
        );
    }

    #[test]
    fn owner_lookup_semantics() {
        let iv = vec![(ThreadId(1), 10, 20), (ThreadId(2), 20, 30)];
        assert_eq!(owner_at(&iv, 5), None);
        assert_eq!(owner_at(&iv, 10), Some(ThreadId(1)));
        assert_eq!(owner_at(&iv, 19), Some(ThreadId(1)));
        assert_eq!(owner_at(&iv, 20), Some(ThreadId(2)));
        assert_eq!(owner_at(&iv, 99), Some(ThreadId(2)), "tail belongs to last");
    }
}
