//! Multi-core / multi-thread trace segregation (§6).
//!
//! PT records per physical core; threads migrate between cores. JPortal
//! uses the thread-switch sideband records (timestamps at which each
//! thread is scheduled in/out) to cut each core's packet stream into
//! per-thread pieces, then splices the pieces of each thread across cores
//! in timestamp order.
//!
//! The paper notes this is a genuine source of imprecision: packet
//! timestamps come from periodic TSC packets and are coarser than
//! scheduling decisions, so packets near a switch boundary can land on
//! the wrong thread — that effect is faithfully present here.

use jportal_ipt::sideband::schedule_intervals;
use jportal_ipt::{
    decode_packets_into, segment_stream, CollectedTraces, DecodeScratch, DecodeStats, RawSegment,
    ThreadId,
};
use std::cell::RefCell;
use std::collections::HashMap;

/// A per-thread piece of trace, tagged with its source core.
#[derive(Debug, Clone)]
pub struct ThreadPiece {
    /// The core the piece was captured on.
    pub core: u32,
    /// The raw packets (loss information preserved).
    pub segment: RawSegment,
}

/// Splits all per-core traces into per-thread, time-ordered piece lists.
///
/// Pieces created by scheduling splits carry `loss_before: None` (no data
/// was lost; only decoder context); pieces following a buffer overflow
/// keep their [`jportal_ipt::LossRecord`].
pub fn segregate(collected: &CollectedTraces) -> HashMap<ThreadId, Vec<ThreadPiece>> {
    segregate_with_stats(collected, 1).0
}

/// [`segregate`] with a per-worker decode fan-out.
///
/// Each core's byte stream decodes independently, so the streams fan out
/// over `workers`; every worker thread reuses one [`DecodeScratch`]
/// arena across the streams it claims (packet capacity carried over, the
/// PR-3 `MatchScratch` pattern). The decoded stream becomes one shared
/// [`jportal_ipt::PacketBuf`], and every piece — segmentation cut or
/// scheduling split — is an index range over it: packets are never
/// re-vectored.
///
/// The returned [`DecodeStats`] are summed in core order and depend only
/// on the trace bytes, so they are identical at every worker count (part
/// of the determinism contract, unlike scratch high-water gauges).
pub fn segregate_with_stats(
    collected: &CollectedTraces,
    workers: usize,
) -> (HashMap<ThreadId, Vec<ThreadPiece>>, DecodeStats) {
    thread_local! {
        static DECODE_SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::new());
    }
    let cores: Vec<usize> = (0..collected.per_core.len()).collect();
    let per_core: Vec<(Vec<(ThreadId, ThreadPiece)>, DecodeStats)> =
        jportal_par::par_map(workers, &cores, |_, &core_idx| {
            let core = core_idx as u32;
            let trace = &collected.per_core[core_idx];
            let intervals = schedule_intervals(&collected.sideband, core, collected.end_ts);
            if intervals.is_empty() {
                return (Vec::new(), DecodeStats::default());
            }
            let (buf, stats) = DECODE_SCRATCH.with(|s| {
                let mut scratch = s.borrow_mut();
                let before = scratch.stats();
                decode_packets_into(&trace.bytes, &mut scratch);
                let after = scratch.stats();
                let stats = DecodeStats {
                    resync_bytes: after.resync_bytes - before.resync_bytes,
                    packets: after.packets - before.packets,
                };
                (scratch.to_shared(), stats)
            });
            let raw_segments = segment_stream(buf, &trace.losses, core);

            let mut pieces: Vec<(ThreadId, ThreadPiece)> = Vec::new();
            for seg in raw_segments {
                // Split the segment wherever the owning interval changes.
                let mut current_thread: Option<ThreadId> = None;
                let mut piece_start = 0usize;
                let mut first_piece = true;
                let mut flush = |thread: Option<ThreadId>, range: std::ops::Range<usize>| {
                    if let (Some(t), false) = (thread, range.is_empty()) {
                        let loss_before = if first_piece { seg.loss_before } else { None };
                        first_piece = false;
                        pieces.push((
                            t,
                            ThreadPiece {
                                core,
                                segment: seg.slice(range.start, range.end, loss_before),
                            },
                        ));
                    }
                };
                for (i, p) in seg.packets().iter().enumerate() {
                    let owner = owner_at(&intervals, p.ts);
                    if owner != current_thread {
                        flush(current_thread, piece_start..i);
                        current_thread = owner;
                        piece_start = i;
                    }
                }
                flush(current_thread, piece_start..seg.len());
            }
            (pieces, stats)
        });

    let mut per_thread: HashMap<ThreadId, Vec<ThreadPiece>> = HashMap::new();
    let mut stats = DecodeStats::default();
    for (pieces, core_stats) in per_core {
        stats.merge(&core_stats);
        for (t, piece) in pieces {
            per_thread.entry(t).or_default().push(piece);
        }
    }

    // Order each thread's pieces by time (stable, so same-timestamp
    // pieces keep core order — identical to the sequential path).
    for pieces in per_thread.values_mut() {
        pieces.sort_by_key(|p| p.segment.packets().first().map(|tp| tp.ts).unwrap_or(0));
    }
    (per_thread, stats)
}

fn owner_at(intervals: &[(ThreadId, u64, u64)], ts: u64) -> Option<ThreadId> {
    intervals
        .iter()
        .find(|&&(_, start, end)| start <= ts && ts < end)
        .map(|&(t, _, _)| t)
        // Packets after the last recorded interval belong to its thread.
        .or_else(|| {
            intervals
                .last()
                .filter(|&&(_, _, end)| ts >= end)
                .map(|&(t, _, _)| t)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};
    use jportal_jvm::runtime::{Jvm, JvmConfig, ThreadSpec};

    fn loopy() -> jportal_bytecode::Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let head = m.label();
        let done = m.label();
        m.emit(I::Iconst(30));
        m.emit(I::Istore(0));
        m.bind(head);
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Le, done);
        m.emit(I::Iinc(0, -1));
        m.jump(head);
        m.bind(done);
        m.emit(I::Return);
        let main = m.finish();
        pb.finish_with_entry(main).unwrap()
    }

    #[test]
    fn single_thread_single_core_is_one_stream() {
        let p = loopy();
        let r = Jvm::new(JvmConfig::default()).run(&p);
        let collected = r.traces.unwrap();
        let per_thread = segregate(&collected);
        assert_eq!(per_thread.len(), 1);
        let pieces = &per_thread[&ThreadId(0)];
        assert!(!pieces.is_empty());
        let total: usize = pieces.iter().map(|p| p.segment.len()).sum();
        assert!(total > 10);
    }

    #[test]
    fn multiple_threads_are_separated() {
        let p = loopy();
        let jvm = Jvm::new(JvmConfig {
            cores: 2,
            quantum: 512, // force many switches
            ..JvmConfig::default()
        });
        let main = p.entry();
        let r = jvm.run_threads(
            &p,
            &[
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
            ],
        );
        let collected = r.traces.unwrap();
        let per_thread = segregate(&collected);
        assert_eq!(per_thread.len(), 3, "all three threads have pieces");
        for pieces in per_thread.values() {
            // Pieces are time-ordered.
            let starts: Vec<u64> = pieces
                .iter()
                .map(|p| p.segment.packets().first().map(|tp| tp.ts).unwrap_or(0))
                .collect();
            let mut sorted = starts.clone();
            sorted.sort();
            assert_eq!(starts, sorted);
        }
    }

    #[test]
    fn decoded_segments_keep_per_core_attribution() {
        let p = loopy();
        let jvm = Jvm::new(JvmConfig {
            cores: 2,
            quantum: 512,
            ..JvmConfig::default()
        });
        let main = p.entry();
        let r = jvm.run_threads(
            &p,
            &[
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
                ThreadSpec {
                    method: main,
                    args: vec![],
                },
            ],
        );
        let collected = r.traces.unwrap();
        let per_thread = segregate(&collected);
        let mut cores_seen = std::collections::HashSet::new();
        for pieces in per_thread.values() {
            for piece in pieces {
                // The raw segment carries the core it was drained from,
                // and decoding preserves it.
                assert_eq!(piece.segment.core, piece.core);
                let decoded = crate::decode::decode_segment(&p, &r.archive, &piece.segment);
                assert_eq!(decoded.core, piece.core, "core id lost in decode");
                cores_seen.insert(piece.core);
            }
        }
        assert_eq!(
            cores_seen.len(),
            2,
            "three threads over two cores must produce pieces on both"
        );
    }

    #[test]
    fn owner_lookup_semantics() {
        let iv = vec![(ThreadId(1), 10, 20), (ThreadId(2), 20, 30)];
        assert_eq!(owner_at(&iv, 5), None);
        assert_eq!(owner_at(&iv, 10), Some(ThreadId(1)));
        assert_eq!(owner_at(&iv, 19), Some(ThreadId(1)));
        assert_eq!(owner_at(&iv, 20), Some(ThreadId(2)));
        assert_eq!(owner_at(&iv, 99), Some(ThreadId(2)), "tail belongs to last");
    }
}
