//! Telemetry determinism: the *structure* of what the pipeline records —
//! counter values and the span tree — must be identical whether the
//! analysis runs sequentially or fanned out, exactly like the report
//! itself. Timing (histograms, span durations) and the two documented
//! scheduling-dependent families (`cfg.dfa.*` cache counters, scratch
//! high-water gauges) are excluded; everything else is part of the
//! contract because it is aggregated after the deterministic joins.

use jportal_bytecode::builder::ProgramBuilder;
use jportal_bytecode::{CmpKind, Instruction as I, Program};
use jportal_core::{JPortal, JPortalConfig, JPortalReport};
use jportal_jvm::runtime::{Jvm, JvmConfig, RunResult, ThreadSpec};
use jportal_obs::TelemetryReport;

/// A branchy two-method loop, long enough that a small PT buffer with a
/// slow exporter drops data on every thread (so recovery, hole spans and
/// loss counters are all exercised).
fn workload() -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("C", None, 0);
    let mut h = pb.method(c, "helper", 1, true);
    let odd = h.label();
    h.emit(I::Iload(0));
    h.emit(I::Iconst(2));
    h.emit(I::Irem);
    h.branch_if(CmpKind::Ne, odd);
    h.emit(I::Iconst(10));
    h.emit(I::Ireturn);
    h.bind(odd);
    h.emit(I::Iconst(20));
    h.emit(I::Ireturn);
    let helper = h.finish();
    let mut m = pb.method(c, "main", 0, false);
    let head = m.label();
    let done = m.label();
    m.emit(I::Iconst(120));
    m.emit(I::Istore(0));
    m.bind(head);
    m.emit(I::Iload(0));
    m.branch_if(CmpKind::Le, done);
    m.emit(I::Iload(0));
    m.emit(I::InvokeStatic(helper));
    m.emit(I::Pop);
    m.emit(I::Iinc(0, -1));
    m.jump(head);
    m.bind(done);
    m.emit(I::Return);
    let main = m.finish();
    pb.finish_with_entry(main).unwrap()
}

fn lossy_run(p: &Program, threads: usize) -> RunResult {
    let entry = p.entry();
    let specs: Vec<ThreadSpec> = (0..threads)
        .map(|_| ThreadSpec {
            method: entry,
            args: vec![],
        })
        .collect();
    Jvm::new(JvmConfig {
        cores: 2,
        pt_buffer_capacity: 640,
        drain_bytes_per_kilocycle: 6,
        c1_threshold: u64::MAX,
        c2_threshold: u64::MAX,
        ..JvmConfig::default()
    })
    .run_threads(p, &specs)
}

fn analyze_with(
    p: &Program,
    r: &RunResult,
    parallelism: Option<usize>,
) -> (JPortalReport, TelemetryReport) {
    let jp = JPortal::with_config(
        p,
        JPortalConfig {
            parallelism,
            ..JPortalConfig::default()
        },
    );
    let report = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
    (report, jp.telemetry())
}

/// Counters minus the documented scheduling-dependent `cfg.dfa.*`
/// family (two workers can both miss on a key one is about to fill).
fn deterministic_counters(t: &TelemetryReport) -> Vec<(String, u64)> {
    t.metrics
        .counters
        .iter()
        .filter(|(name, _)| !name.starts_with("cfg.dfa."))
        .cloned()
        .collect()
}

/// Sorted timing-free span structure, minus the `prewarm` span that by
/// design only exists when workers > 1.
fn span_structure(t: &TelemetryReport) -> Vec<String> {
    let mut v: Vec<String> = t
        .spans
        .iter()
        .filter(|s| s.name != "prewarm")
        .map(|s| s.structure())
        .collect();
    v.sort();
    v
}

#[test]
fn counters_and_span_tree_match_across_parallelism() {
    let p = workload();
    let r = lossy_run(&p, 2);
    let traces = r.traces.as_ref().unwrap();
    assert!(
        traces.per_core.iter().any(|t| !t.losses.is_empty()),
        "workload must lose data for the test to mean anything"
    );

    let (report_seq, tel_seq) = analyze_with(&p, &r, Some(1));
    let (report_par, tel_par) = analyze_with(&p, &r, None);

    assert_eq!(report_seq, report_par, "report determinism contract");
    assert_eq!(
        deterministic_counters(&tel_seq),
        deterministic_counters(&tel_par),
        "every non-dfa counter must be identical at any worker count"
    );
    assert_eq!(
        span_structure(&tel_seq),
        span_structure(&tel_par),
        "span categories, names, parents and args must be identical"
    );

    // The excluded family must still exist in both (same names, values
    // free to differ).
    for t in [&tel_seq, &tel_par] {
        assert!(t.metrics.counter("cfg.dfa.hits").is_some());
        assert!(t.metrics.counter("cfg.dfa.misses").is_some());
    }

    // Spot checks: recovery actually ran and was counted, and the span
    // tree has the per-stage spans hanging off the pipeline root.
    let holes = tel_seq.metrics.counter("core.recover.holes").unwrap();
    assert!(holes > 0, "lossy run must produce holes");
    let fills = span_structure(&tel_seq)
        .iter()
        .filter(|s| s.contains("recover/assemble_thread/fill_hole"))
        .count();
    assert_eq!(fills as u64, holes, "one fill span per hole");
    assert!(span_structure(&tel_seq)
        .iter()
        .any(|s| s.starts_with("decode/analyze/decode_segment")));
}

#[test]
fn collection_stats_are_input_determined() {
    let p = workload();
    let r = lossy_run(&p, 2);
    let (a, _) = analyze_with(&p, &r, Some(1));
    let (b, _) = analyze_with(&p, &r, Some(4));
    // `collection` is a pure function of the input traces, so unlike the
    // dfa cache it is bit-identical too (Debug covers every field).
    assert_eq!(format!("{:?}", a.collection), format!("{:?}", b.collection));
    assert!(a.collection.total_lost_bytes() > 0);
    assert_eq!(
        a.collection.per_core.len(),
        r.traces.as_ref().unwrap().per_core.len()
    );
}

#[test]
fn report_equality_ignores_telemetry_fields() {
    let p = workload();
    let r = lossy_run(&p, 1);
    let (mut a, _) = analyze_with(&p, &r, Some(1));
    let (b, _) = analyze_with(&p, &r, Some(1));
    // Perturb only the telemetry fields: equality must not notice.
    a.dfa_cache.hits += 1000;
    a.collection.end_ts += 1;
    assert_eq!(a, b, "equality is defined over threads only");
    // But a real difference in the reconstruction must be seen.
    a.threads[0].entries.pop();
    assert_ne!(a, b);
}

#[test]
fn disabled_observability_records_nothing_and_changes_nothing() {
    let p = workload();
    let r = lossy_run(&p, 1);
    let jp = JPortal::with_config(
        &p,
        JPortalConfig {
            observability: false,
            ..JPortalConfig::default()
        },
    );
    let dark = jp.analyze(r.traces.as_ref().unwrap(), &r.archive);
    let t = jp.telemetry();
    assert!(t.spans.is_empty());
    assert!(t.metrics.counters.is_empty());
    assert!(t.metrics.gauges.is_empty());
    assert!(t.metrics.histograms.is_empty());
    let (lit, _) = analyze_with(&p, &r, None);
    assert_eq!(dark, lit, "observability must never change the report");
}
