//! Guard for the parallel statistics reduction: merging per-segment
//! statistics in any grouping/order must equal the plain sequential sum
//! (a lost-update or double-count in a merge shows up here immediately).

use jportal_core::{ProjectionStats, RecoveryStats};

/// Deterministic pseudo-random stream (SplitMix64) for filling fields.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn small(&mut self) -> usize {
        (self.next() % 1000) as usize
    }
}

fn random_projection(rng: &mut Rng) -> ProjectionStats {
    ProjectionStats {
        matched: rng.small(),
        unmatched: rng.small(),
        restarts: rng.small(),
        candidates_tried: rng.small(),
        candidates_pruned: rng.small(),
        summary_pruned: rng.small(),
        dfa_runs: rng.small(),
        frontier_width_max: rng.small(),
    }
}

fn random_recovery(rng: &mut Rng) -> RecoveryStats {
    RecoveryStats {
        holes: rng.small(),
        filled_from_cs: rng.small(),
        filled_by_walk: rng.small(),
        unfilled: rng.small(),
        recovered_events: rng.small(),
        candidates: rng.small(),
        pruned_tier1: rng.small(),
        pruned_tier2: rng.small(),
        summary_pruned: rng.small(),
        fallback_walks: rng.small(),
        budget_truncations: rng.small(),
        corpus_lookups: rng.small(),
        corpus_candidates: rng.small(),
        corpus_hits: rng.small(),
        corpus_misses: rng.small(),
    }
}

/// Reduces `items` the way the parallel pipeline does: fan out with
/// `jportal_par`, partial-merge per chunk, then merge the partials.
fn tree_reduce_projection(items: &[ProjectionStats], workers: usize) -> ProjectionStats {
    let chunks: Vec<&[ProjectionStats]> =
        items.chunks(items.len().div_ceil(workers).max(1)).collect();
    let partials = jportal_par::par_map(workers, &chunks, |_, chunk| {
        let mut acc = ProjectionStats::default();
        for s in *chunk {
            acc.merge(s);
        }
        acc
    });
    let mut total = ProjectionStats::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

fn tree_reduce_recovery(items: &[RecoveryStats], workers: usize) -> RecoveryStats {
    let chunks: Vec<&[RecoveryStats]> =
        items.chunks(items.len().div_ceil(workers).max(1)).collect();
    let partials = jportal_par::par_map(workers, &chunks, |_, chunk| {
        let mut acc = RecoveryStats::default();
        for s in *chunk {
            acc.merge(s);
        }
        acc
    });
    let mut total = RecoveryStats::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

#[test]
fn projection_stats_parallel_reduction_equals_sequential_sum() {
    let mut rng = Rng(1);
    let items: Vec<ProjectionStats> = (0..257).map(|_| random_projection(&mut rng)).collect();
    let mut sequential = ProjectionStats::default();
    for s in &items {
        sequential.merge(s);
    }
    // Field-level spot check against independent sums.
    assert_eq!(
        sequential.matched,
        items.iter().map(|s| s.matched).sum::<usize>()
    );
    assert_eq!(
        sequential.candidates_pruned,
        items.iter().map(|s| s.candidates_pruned).sum::<usize>()
    );
    for workers in [1, 2, 3, 4, 8, 16] {
        assert_eq!(
            tree_reduce_projection(&items, workers),
            sequential,
            "workers={workers}"
        );
    }
}

#[test]
fn recovery_stats_parallel_reduction_equals_sequential_sum() {
    let mut rng = Rng(2);
    let items: Vec<RecoveryStats> = (0..257).map(|_| random_recovery(&mut rng)).collect();
    let mut sequential = RecoveryStats::default();
    for s in &items {
        sequential.merge(s);
    }
    assert_eq!(
        sequential.holes,
        items.iter().map(|s| s.holes).sum::<usize>()
    );
    assert_eq!(
        sequential.recovered_events,
        items.iter().map(|s| s.recovered_events).sum::<usize>()
    );
    for workers in [1, 2, 3, 4, 8, 16] {
        assert_eq!(
            tree_reduce_recovery(&items, workers),
            sequential,
            "workers={workers}"
        );
    }
}

#[test]
fn prune_rates_come_from_merged_totals_not_averaged_rates() {
    // Two shards with very different candidate volumes: averaging the
    // per-shard rates would weight them equally; the merged rate must
    // weight by candidates (sum of numerators / sum of denominators).
    let a = RecoveryStats {
        candidates: 100,
        pruned_tier1: 90,
        pruned_tier2: 5,
        ..Default::default()
    };
    let b = RecoveryStats {
        candidates: 10,
        pruned_tier1: 1,
        pruned_tier2: 2,
        ..Default::default()
    };
    let mut merged = a;
    merged.merge(&b);
    assert_eq!(merged.candidates, 110);
    assert!((merged.tier1_prune_rate() - 91.0 / 110.0).abs() < 1e-12);
    assert!((merged.tier2_prune_rate() - 7.0 / 110.0).abs() < 1e-12);
    let averaged = (a.tier1_prune_rate() + b.tier1_prune_rate()) / 2.0;
    assert!(
        (merged.tier1_prune_rate() - averaged).abs() > 0.1,
        "merged rate must not equal the average of shard rates"
    );
    // No candidates → a defined zero rate, not NaN.
    assert_eq!(RecoveryStats::default().tier1_prune_rate(), 0.0);
    assert_eq!(RecoveryStats::default().tier2_prune_rate(), 0.0);
}

#[test]
fn frontier_width_merges_as_max() {
    let mut a = ProjectionStats {
        frontier_width_max: 3,
        ..Default::default()
    };
    a.merge(&ProjectionStats {
        frontier_width_max: 7,
        ..Default::default()
    });
    assert_eq!(a.frontier_width_max, 7);
    a.merge(&ProjectionStats {
        frontier_width_max: 2,
        ..Default::default()
    });
    assert_eq!(a.frontier_width_max, 7, "max never regresses");
}

#[test]
fn merge_identity_and_accumulation() {
    let mut rng = Rng(3);
    let a = random_projection(&mut rng);
    let mut b = a;
    b.merge(&ProjectionStats::default());
    assert_eq!(a, b, "merging the identity changes nothing");
    let r = random_recovery(&mut rng);
    let mut acc = RecoveryStats::default();
    acc.merge(&r);
    assert_eq!(acc, r, "merge into identity is a copy");
}
