//! The big end-to-end property: **any** runnable program traced without
//! loss reconstructs its control flow exactly, through both execution
//! modes — the invariant the entire system hangs on.

use proptest::prelude::*;

use jportal_bytecode::builder::ProgramBuilder;
use jportal_bytecode::{CmpKind, Instruction as I, Program};
use jportal_core::JPortal;
use jportal_ipt::ThreadId;
use jportal_jvm::runtime::{Jvm, JvmConfig};

/// A random two-method program: `main` loops calling `f(i)` whose body
/// has a random branchy shape. Always terminates and verifies.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        1i64..30,                                 // loop iterations
        prop::collection::vec(any::<u8>(), 1..6), // f's block script
    )
        .prop_map(|(iters, script)| {
            let mut pb = ProgramBuilder::new();
            let c = pb.add_class("P", None, 0);
            let mut f = pb.method(c, "f", 1, true);
            let exit = f.label();
            let labels: Vec<_> = (0..script.len()).map(|_| f.label()).collect();
            for (bi, &b) in script.iter().enumerate() {
                f.bind(labels[bi]);
                match b % 4 {
                    0 => {
                        f.emit(I::Iload(0));
                        f.emit(I::Iconst(1 + i64::from(b % 5)));
                        f.emit(I::Iadd);
                        f.emit(I::Istore(0));
                    }
                    1 => {
                        f.emit(I::Iload(0));
                        f.emit(I::Iconst(2));
                        f.emit(I::Irem);
                        // Branch forward only.
                        let t = labels
                            .get(bi + 1 + (b as usize % 2))
                            .copied()
                            .unwrap_or(exit);
                        f.branch_if(CmpKind::Eq, t);
                    }
                    2 => {
                        f.emit(I::Iload(0));
                        f.emit(I::Ineg);
                        f.emit(I::Istore(0));
                    }
                    _ => {
                        let t = labels.get(bi + 2).copied().unwrap_or(exit);
                        f.jump(t);
                    }
                }
            }
            f.bind(exit);
            f.emit(I::Iload(0));
            f.emit(I::Ireturn);
            let fid = f.finish();

            let mut m = pb.method(c, "main", 0, false);
            m.reserve_locals(2);
            let head = m.label();
            let done = m.label();
            m.emit(I::Iconst(iters));
            m.emit(I::Istore(1));
            m.bind(head);
            m.emit(I::Iload(1));
            m.branch_if(CmpKind::Le, done);
            m.emit(I::Iload(1));
            m.emit(I::InvokeStatic(fid));
            m.emit(I::Pop);
            m.emit(I::Iinc(1, -1));
            m.jump(head);
            m.bind(done);
            m.emit(I::Return);
            let main = m.finish();
            pb.finish_with_entry(main)
                .expect("generated program verifies")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lossless tracing + full pipeline == ground truth, exactly, for
    /// arbitrary programs — interpreted-only configuration.
    #[test]
    fn interpreted_reconstruction_is_exact(program in arb_program()) {
        let r = Jvm::new(JvmConfig {
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        })
        .run(&program);
        prop_assert!(r.thread_errors.is_empty());
        let report = JPortal::new(&program).analyze(r.traces.as_ref().unwrap(), &r.archive);
        let truth = r.truth.trace(ThreadId(0));
        let entries = &report.threads[0].entries;
        prop_assert_eq!(entries.len(), truth.len());
        for (e, t) in entries.iter().zip(truth) {
            prop_assert_eq!(e.method, Some(t.method));
            prop_assert_eq!(e.bci, Some(t.bci));
        }
    }

    /// Same invariant with aggressive tiered compilation: mode switches,
    /// JIT metadata and inline decoding must not cost a single event.
    #[test]
    fn tiered_reconstruction_is_exact(program in arb_program()) {
        let r = Jvm::new(JvmConfig {
            c1_threshold: 2,
            c2_threshold: 5,
            ..JvmConfig::default()
        })
        .run(&program);
        prop_assert!(r.thread_errors.is_empty());
        let report = JPortal::new(&program).analyze(r.traces.as_ref().unwrap(), &r.archive);
        let truth = r.truth.trace(ThreadId(0));
        let entries = &report.threads[0].entries;
        prop_assert_eq!(entries.len(), truth.len());
        for (e, t) in entries.iter().zip(truth) {
            prop_assert_eq!(e.method, Some(t.method));
            prop_assert_eq!(e.bci, Some(t.bci));
        }
    }

    /// Under arbitrary buffer pressure the pipeline never fabricates
    /// timestamps out of range and provenance counts stay consistent.
    #[test]
    fn lossy_pipeline_invariants(program in arb_program(), buffer in 96usize..2048) {
        let r = Jvm::new(JvmConfig {
            pt_buffer_capacity: buffer,
            drain_bytes_per_kilocycle: 15,
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        })
        .run(&program);
        let report = JPortal::new(&program).analyze(r.traces.as_ref().unwrap(), &r.archive);
        let (d, rec, w) = report.provenance_counts();
        prop_assert_eq!(d + rec + w, report.total_entries());
        for t in &report.threads {
            for e in &t.entries {
                prop_assert!(e.ts <= r.wall_cycles);
                if let (Some(m), Some(b)) = (e.method, e.bci) {
                    // Location is a real instruction of the right kind.
                    prop_assert_eq!(program.method(m).insn(b).op_kind(), e.op);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallelism knob is invisible in the output: the legacy
    /// sequential path (`parallelism = Some(1)`), an explicit 4-worker
    /// fan-out and the all-cores default produce byte-identical reports
    /// on a lossy multi-threaded workload — serialized forms compared
    /// verbatim, so even statistics ordering cannot drift.
    #[test]
    fn parallel_analysis_is_deterministic(
        program in arb_program(),
        buffer in 256usize..2048,
        threads in 1usize..4,
    ) {
        use jportal_core::JPortalConfig;
        use jportal_jvm::runtime::ThreadSpec;

        let jvm = Jvm::new(JvmConfig {
            cores: 2,
            quantum: 700,
            pt_buffer_capacity: buffer,
            drain_bytes_per_kilocycle: 15,
            c1_threshold: u64::MAX,
            c2_threshold: u64::MAX,
            ..JvmConfig::default()
        });
        let entry = program.entry();
        let specs: Vec<ThreadSpec> = (0..threads)
            .map(|_| ThreadSpec { method: entry, args: vec![] })
            .collect();
        let r = jvm.run_threads(&program, &specs);
        let traces = r.traces.as_ref().unwrap();

        let run = |parallelism| {
            JPortal::with_config(&program, JPortalConfig { parallelism, ..JPortalConfig::default() })
                .analyze(traces, &r.archive)
        };
        let mut sequential = run(Some(1));
        let mut four_workers = run(Some(4));
        let mut default_workers = run(None);

        // Structural equality and serialized byte equality. The DFA
        // transition-cache counters are scheduling-dependent diagnostics
        // (two workers can both count a miss for the same key), so report
        // equality excludes them and the serialized comparison zeroes
        // them; everything else must match byte for byte.
        prop_assert_eq!(&sequential, &four_workers);
        prop_assert_eq!(&sequential, &default_workers);
        sequential.dfa_cache = Default::default();
        four_workers.dfa_cache = Default::default();
        default_workers.dfa_cache = Default::default();
        let ser_seq = format!("{sequential:?}");
        prop_assert_eq!(&ser_seq, &format!("{four_workers:?}"));
        prop_assert_eq!(&ser_seq, &format!("{default_workers:?}"));
    }
}
