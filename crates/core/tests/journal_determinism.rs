//! Flight-recorder guarantees: the decision journal is byte-identical
//! across worker counts, the bounded ring's drop counter is exact under
//! contention, and the per-fill confidence score actually predicts
//! ground-truth fill accuracy — the three contracts `jportal-inspect`
//! and `JPortalReport::quality` rest on.

use proptest::prelude::*;

use jportal_bytecode::builder::ProgramBuilder;
use jportal_bytecode::{CmpKind, Instruction as I, Program};
use jportal_core::accuracy::alignment_score;
use jportal_core::{JPortal, JPortalConfig, TraceOrigin};
use jportal_jvm::runtime::{Jvm, JvmConfig, ThreadSpec};
use jportal_obs::{Journal, JournalEvent};

/// Deterministic pseudo-random stream (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A seeded two-method program in the same branchy shape the end-to-end
/// property tests use: `main` loops calling `f(i)` whose body is a
/// random script of arithmetic, forward branches and jumps.
fn seeded_program(seed: u64) -> Program {
    let mut rng = Rng(seed);
    let iters = 40 + (rng.next() % 160) as i64;
    let script: Vec<u8> = (0..(2 + rng.next() % 5))
        .map(|_| (rng.next() % 256) as u8)
        .collect();

    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("P", None, 0);
    let mut f = pb.method(c, "f", 1, true);
    let exit = f.label();
    let labels: Vec<_> = (0..script.len()).map(|_| f.label()).collect();
    for (bi, &b) in script.iter().enumerate() {
        f.bind(labels[bi]);
        match b % 4 {
            0 => {
                f.emit(I::Iload(0));
                f.emit(I::Iconst(1 + i64::from(b % 5)));
                f.emit(I::Iadd);
                f.emit(I::Istore(0));
            }
            1 => {
                f.emit(I::Iload(0));
                f.emit(I::Iconst(2));
                f.emit(I::Irem);
                let t = labels
                    .get(bi + 1 + (b as usize % 2))
                    .copied()
                    .unwrap_or(exit);
                f.branch_if(CmpKind::Eq, t);
            }
            2 => {
                f.emit(I::Iload(0));
                f.emit(I::Ineg);
                f.emit(I::Istore(0));
            }
            _ => {
                let t = labels.get(bi + 2).copied().unwrap_or(exit);
                f.jump(t);
            }
        }
    }
    f.bind(exit);
    f.emit(I::Iload(0));
    f.emit(I::Ireturn);
    let fid = f.finish();

    let mut m = pb.method(c, "main", 0, false);
    m.reserve_locals(2);
    let head = m.label();
    let done = m.label();
    m.emit(I::Iconst(iters));
    m.emit(I::Istore(1));
    m.bind(head);
    m.emit(I::Iload(1));
    m.branch_if(CmpKind::Le, done);
    m.emit(I::Iload(1));
    m.emit(I::InvokeStatic(fid));
    m.emit(I::Pop);
    m.emit(I::Iinc(1, -1));
    m.jump(head);
    m.bind(done);
    m.emit(I::Return);
    let main = m.finish();
    pb.finish_with_entry(main).expect("seeded program verifies")
}

fn lossy_run(program: &Program, buffer: usize, threads: usize) -> jportal_jvm::RunResult {
    let jvm = Jvm::new(JvmConfig {
        cores: 2,
        quantum: 700,
        pt_buffer_capacity: buffer,
        drain_bytes_per_kilocycle: 60,
        c1_threshold: u64::MAX,
        c2_threshold: u64::MAX,
        ..JvmConfig::default()
    });
    let entry = program.entry();
    let specs: Vec<ThreadSpec> = (0..threads)
        .map(|_| ThreadSpec {
            method: entry,
            args: vec![],
        })
        .collect();
    jvm.run_threads(program, &specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The journal is part of the determinism contract: the same lossy
    /// run analyzed sequentially, with 4 workers and with the all-cores
    /// default serializes to byte-identical JSONL — events are keyed by
    /// (thread, segment, seq) and carry no timing, so worker scheduling
    /// cannot leak into the record.
    #[test]
    fn journal_is_byte_identical_across_parallelism(
        seed in 0u64..1u64 << 48,
        buffer in 800usize..2400,
        threads in 1usize..4,
    ) {
        let program = seeded_program(seed);
        let r = lossy_run(&program, buffer, threads);
        let traces = r.traces.as_ref().unwrap();

        let journal_of = |parallelism| {
            let jp = JPortal::with_config(
                &program,
                JPortalConfig { parallelism, ..JPortalConfig::default() },
            );
            jp.analyze(traces, &r.archive);
            let snap = jp.obs().journal_snapshot();
            prop_assert_eq!(snap.dropped, 0, "default capacity must not drop");
            Ok(snap.to_jsonl())
        };
        let sequential = journal_of(Some(1))?;
        let four_workers = journal_of(Some(4))?;
        let default_workers = journal_of(None)?;
        prop_assert_eq!(&sequential, &four_workers);
        prop_assert_eq!(&sequential, &default_workers);
    }
}

#[test]
fn ring_drop_counter_is_exact_sequentially() {
    let journal = Journal::with_capacity(64);
    let mut rec = Journal::recorder(Some(&journal), 0);
    for i in 0..200u32 {
        rec.set_segment(i);
        rec.emit(JournalEvent::HoleUnfilled { hole: i });
    }
    assert_eq!(journal.len(), 64);
    assert_eq!(journal.dropped(), 200 - 64);
    let snap = journal.snapshot();
    assert_eq!(snap.records.len(), 64);
    assert_eq!(snap.dropped, 200 - 64);
}

#[test]
fn ring_drop_counter_is_exact_under_contention() {
    // 8 threads × 50 events against a 100-slot ring: exactly 100 land
    // and exactly 300 are counted as dropped, for every interleaving —
    // the reservation scheme cannot lose or double-count a drop.
    let journal = Journal::with_capacity(100);
    std::thread::scope(|scope| {
        for t in 0..8u32 {
            let journal = &journal;
            scope.spawn(move || {
                let mut rec = Journal::recorder(Some(journal), t);
                for i in 0..50u32 {
                    rec.set_segment(i);
                    rec.emit(JournalEvent::HoleUnfilled { hole: i });
                }
            });
        }
    });
    assert_eq!(journal.len(), 100);
    assert_eq!(journal.dropped(), 8 * 50 - 100);
}

/// The acceptance bar for `Fill::confidence`: over a population of
/// seeded lossy runs, fills the scorer trusts more must actually align
/// better with the executor's ground truth. Compared as
/// mean-accuracy-of-top-half vs bottom-half when ranked by confidence
/// (everything here is simulated and seeded, so the split is exact and
/// reproducible, not statistical).
#[test]
fn confidence_correlates_with_ground_truth_accuracy() {
    let mut pairs: Vec<(f64, f64)> = Vec::new();

    for seed in 0..12u64 {
        let program = seeded_program(0xC0FFEE + seed * 7919);
        for buffer in [1200usize, 1600, 2000] {
            let r = lossy_run(&program, buffer, 2);
            let report = JPortal::new(&program).analyze(r.traces.as_ref().unwrap(), &r.archive);
            for (tr, tq) in report.threads.iter().zip(&report.quality.threads) {
                assert_eq!(tr.thread, tq.thread);
                assert_eq!(tr.holes.len(), tq.fills.len());
                let truth = r.truth.trace(tr.thread);
                for (i, &(a, b)) in tr.holes.iter().enumerate() {
                    let fill = &tq.fills[i];
                    assert_eq!(fill.hole, i + 1, "fills are in hole order");
                    let truth_window: Vec<_> = truth
                        .iter()
                        .filter(|e| a <= e.ts && e.ts <= b)
                        .copied()
                        .collect();
                    if truth_window.is_empty() {
                        continue;
                    }
                    let fill_entries: Vec<_> = tr
                        .entries
                        .iter()
                        .filter(|e| e.origin != TraceOrigin::Decoded && a <= e.ts && e.ts <= b)
                        .copied()
                        .collect();
                    let accuracy = alignment_score(&program, &truth_window, &fill_entries);
                    pairs.push((fill.confidence, accuracy));
                }
            }
        }
    }

    assert!(
        pairs.len() >= 40,
        "need a real population of fills, got {}",
        pairs.len()
    );
    pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
    let half = pairs.len() / 2;
    let mean = |s: &[(f64, f64)]| s.iter().map(|p| p.1).sum::<f64>() / s.len() as f64;
    let bottom = mean(&pairs[..half]);
    let top = mean(&pairs[half..]);
    assert!(
        top > bottom,
        "high-confidence fills must be more accurate: top-half mean {top:.3} \
         vs bottom-half mean {bottom:.3} over {} fills",
        pairs.len()
    );
}
