//! The per-core trace ring buffer and its exporter.
//!
//! Packets go directly into a bounded buffer (PT writes to physical memory,
//! bypassing caches); a software exporter drains it at a finite rate. When
//! packets arrive faster than the exporter drains — the paper measures PT
//! producing "hundreds of megabytes per CPU per second, faster than data
//! can be exported" — the buffer fills and whole packets are dropped.
//! Every dropped span becomes a [`LossRecord`] with the timestamps of the
//! first and last lost packets, mirroring `perf_record_aux` events with
//! the truncated flag that JPortal uses to localize data loss (§4).

use std::collections::VecDeque;

/// A contiguous span of lost trace data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossRecord {
    /// Offset in the *exported* byte stream at which the hole sits.
    pub stream_offset: u64,
    /// Timestamp of the first lost packet.
    pub first_ts: u64,
    /// Timestamp of the last lost packet.
    pub last_ts: u64,
    /// Bytes that were dropped.
    pub lost_bytes: u64,
    /// Packets that were dropped.
    pub lost_packets: u64,
}

/// A point-in-time occupancy reading of a [`RingBuffer`] — what the
/// live telemetry plane publishes per core while a run is collecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingSample {
    /// Bytes waiting to be exported.
    pub pending: usize,
    /// Buffer capacity in bytes.
    pub capacity: usize,
    /// Total bytes successfully written so far.
    pub total_written: u64,
    /// Total bytes dropped so far.
    pub total_lost_bytes: u64,
}

/// Bounded buffer with an exported output stream.
///
/// # Examples
///
/// ```
/// use jportal_ipt::RingBuffer;
///
/// let mut rb = RingBuffer::new(4);
/// assert!(rb.write(&[1, 2, 3], 100));
/// assert!(!rb.write(&[4, 5], 101)); // would overflow: dropped
/// rb.flush();
/// assert_eq!(rb.exported(), &[1, 2, 3]);
/// assert_eq!(rb.loss_records().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RingBuffer {
    capacity: usize,
    queue: VecDeque<u8>,
    exported: Vec<u8>,
    losses: Vec<LossRecord>,
    /// Open loss span, if currently dropping.
    open_loss: Option<LossRecord>,
    total_written: u64,
    total_lost_bytes: u64,
}

impl RingBuffer {
    /// Creates a buffer holding at most `capacity` bytes awaiting export.
    pub fn new(capacity: usize) -> RingBuffer {
        RingBuffer {
            capacity,
            ..RingBuffer::default()
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently waiting to be exported.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// `true` if the last write was dropped and the loss span is still
    /// open.
    pub fn in_loss(&self) -> bool {
        self.open_loss.is_some()
    }

    /// Writes one whole packet. Returns `false` (and records loss) if the
    /// buffer cannot take it — packets are never split.
    pub fn write(&mut self, packet_bytes: &[u8], ts: u64) -> bool {
        if self.queue.len() + packet_bytes.len() > self.capacity {
            let loss = self.open_loss.get_or_insert(LossRecord {
                stream_offset: self.total_written,
                first_ts: ts,
                last_ts: ts,
                lost_bytes: 0,
                lost_packets: 0,
            });
            loss.last_ts = ts;
            loss.lost_bytes += packet_bytes.len() as u64;
            loss.lost_packets += 1;
            self.total_lost_bytes += packet_bytes.len() as u64;
            return false;
        }
        if let Some(loss) = self.open_loss.take() {
            self.losses.push(loss);
        }
        self.queue.extend(packet_bytes.iter().copied());
        self.total_written += packet_bytes.len() as u64;
        true
    }

    /// Checks whether `len` more bytes would fit right now.
    pub fn would_fit(&self, len: usize) -> bool {
        self.queue.len() + len <= self.capacity
    }

    /// Records a packet as dropped without attempting to write it.
    ///
    /// The encoder uses this while a loss span is open and the recovery
    /// protocol (OVF + TSC + resync packet) does not fit yet: letting a
    /// small packet slip into the buffer mid-loss would put undecodable
    /// bytes on the wire.
    pub fn drop_packet(&mut self, len: usize, ts: u64) {
        let loss = self.open_loss.get_or_insert(LossRecord {
            stream_offset: self.total_written,
            first_ts: ts,
            last_ts: ts,
            lost_bytes: 0,
            lost_packets: 0,
        });
        loss.last_ts = ts;
        loss.lost_bytes += len as u64;
        loss.lost_packets += 1;
        self.total_lost_bytes += len as u64;
    }

    /// Exporter: moves up to `n` bytes from the buffer to the exported
    /// stream. Returns the number of bytes moved.
    pub fn drain(&mut self, n: usize) -> usize {
        let take = n.min(self.queue.len());
        for _ in 0..take {
            let b = self.queue.pop_front().expect("len checked");
            self.exported.push(b);
        }
        take
    }

    /// Flushes everything left in the buffer (end of run).
    pub fn flush(&mut self) {
        let rest = self.queue.len();
        self.drain(rest);
        if let Some(loss) = self.open_loss.take() {
            self.losses.push(loss);
        }
    }

    /// The exported byte stream (the "trace file").
    pub fn exported(&self) -> &[u8] {
        &self.exported
    }

    /// Loss records in stream order (closed spans only until
    /// [`RingBuffer::flush`]).
    pub fn loss_records(&self) -> &[LossRecord] {
        &self.losses
    }

    /// Total bytes successfully written (exported + still pending).
    pub fn total_written(&self) -> u64 {
        self.total_written
    }

    /// Total bytes dropped.
    pub fn total_lost_bytes(&self) -> u64 {
        self.total_lost_bytes
    }

    /// A point-in-time occupancy reading (for live telemetry gauges).
    pub fn sample(&self) -> RingSample {
        RingSample {
            pending: self.queue.len(),
            capacity: self.capacity,
            total_written: self.total_written,
            total_lost_bytes: self.total_lost_bytes,
        }
    }

    /// Fraction of produced bytes that were lost, in `[0, 1]`.
    pub fn loss_fraction(&self) -> f64 {
        let produced = self.total_written + self.total_lost_bytes;
        if produced == 0 {
            0.0
        } else {
            self.total_lost_bytes as f64 / produced as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_when_drained_fast_enough() {
        let mut rb = RingBuffer::new(8);
        for i in 0..100u64 {
            assert!(rb.write(&[i as u8; 4], i));
            rb.drain(4);
        }
        rb.flush();
        assert_eq!(rb.exported().len(), 400);
        assert!(rb.loss_records().is_empty());
        assert_eq!(rb.loss_fraction(), 0.0);
    }

    #[test]
    fn overflow_opens_and_closes_loss_spans() {
        let mut rb = RingBuffer::new(4);
        assert!(rb.write(&[1, 2, 3, 4], 10));
        assert!(!rb.write(&[5, 6], 11));
        assert!(!rb.write(&[7], 12));
        assert!(rb.in_loss());
        rb.drain(4);
        assert!(rb.write(&[8], 13)); // closes the span
        assert!(!rb.in_loss());
        rb.flush();
        let losses = rb.loss_records();
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].first_ts, 11);
        assert_eq!(losses[0].last_ts, 12);
        assert_eq!(losses[0].lost_bytes, 3);
        assert_eq!(losses[0].lost_packets, 2);
        assert_eq!(losses[0].stream_offset, 4);
        assert_eq!(rb.exported(), &[1, 2, 3, 4, 8]);
    }

    #[test]
    fn packets_are_never_split() {
        let mut rb = RingBuffer::new(5);
        assert!(rb.write(&[1, 2, 3], 1));
        // 3 used, 2 free: a 3-byte packet must be dropped whole.
        assert!(!rb.write(&[4, 5, 6], 2));
        assert_eq!(rb.pending(), 3);
    }

    #[test]
    fn flush_closes_open_loss() {
        let mut rb = RingBuffer::new(2);
        assert!(rb.write(&[1, 2], 1));
        assert!(!rb.write(&[3], 2));
        rb.flush();
        assert_eq!(rb.loss_records().len(), 1);
        assert!(!rb.in_loss());
    }

    #[test]
    fn loss_fraction_accounts_for_both_sides() {
        let mut rb = RingBuffer::new(2);
        assert!(rb.write(&[1, 2], 1));
        assert!(!rb.write(&[3, 4], 2));
        rb.flush();
        assert!((rb.loss_fraction() - 0.5).abs() < 1e-9);
    }
}
