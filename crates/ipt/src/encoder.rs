//! The PT hardware encoder.
//!
//! Consumes machine-level control-flow events from the simulated CPU and
//! produces the packet byte stream: TNT bits are accumulated six to a byte,
//! indirect-branch targets become TIP packets under last-IP compression,
//! timestamps are inserted at a configurable cadence, PSB synchronization
//! sequences appear every `psb_period` bytes, and instruction-pointer
//! filtering suppresses packets for code outside the configured range
//! (JPortal filters to the JVM code cache, §6).
//!
//! All packets flow through the bounded [`RingBuffer`]; when it overflows,
//! whole packets are dropped and, on recovery, an OVF packet plus a fresh
//! TSC and a full (uncompressed) next IP resynchronize the decoder —
//! exactly the loss phenomenology JPortal's offline component must repair.

use crate::lastip::LastIp;
use crate::packet::{Packet, PacketBytes, TntBits};
use crate::ring::{LossRecord, RingBuffer};

/// A machine-level control-flow event observed by the tracing hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwEvent {
    /// A conditional branch at `at` resolved as taken / not taken.
    Cond {
        /// IP of the branch instruction.
        at: u64,
        /// Whether it was taken.
        taken: bool,
    },
    /// An indirect transfer (indirect jump/call, `ret`) to `target`.
    Indirect {
        /// IP of the branching instruction.
        at: u64,
        /// Destination IP.
        target: u64,
    },
    /// An asynchronous event (interrupt, exception): FUP with the source,
    /// then TIP with the handler target.
    Async {
        /// IP at which the event interrupted execution.
        from: u64,
        /// Handler entry IP.
        to: u64,
    },
    /// Tracing explicitly enabled at an IP (TIP.PGE).
    Enable {
        /// Start IP.
        ip: u64,
    },
    /// Tracing explicitly disabled at an IP (TIP.PGD).
    Disable {
        /// Stop IP.
        ip: u64,
    },
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Ring-buffer capacity in bytes (the paper sweeps 64/128/256 MB;
    /// the simulation uses proportionally scaled values).
    pub buffer_capacity: usize,
    /// Only events whose IPs fall inside `[start, end)` generate packets.
    pub filter: Option<(u64, u64)>,
    /// Emit a TSC packet when at least this much simulated time passed
    /// since the last one.
    pub tsc_period: u64,
    /// Emit a PSB synchronization sequence every this many buffer bytes.
    pub psb_period: usize,
}

impl Default for EncoderConfig {
    fn default() -> EncoderConfig {
        EncoderConfig {
            buffer_capacity: 64 * 1024,
            filter: None,
            tsc_period: 256,
            psb_period: 4096,
        }
    }
}

/// The per-core PT encoder.
///
/// # Examples
///
/// ```
/// use jportal_ipt::{EncoderConfig, HwEvent, PtEncoder};
///
/// let mut enc = PtEncoder::new(EncoderConfig::default());
/// enc.set_time(100);
/// enc.event(HwEvent::Enable { ip: 0x1000 });
/// enc.event(HwEvent::Cond { at: 0x1004, taken: true });
/// enc.event(HwEvent::Indirect { at: 0x1010, target: 0x2000 });
/// let trace = enc.finish();
/// assert!(!trace.bytes.is_empty());
/// assert!(trace.losses.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PtEncoder {
    cfg: EncoderConfig,
    ring: RingBuffer,
    last_ip: LastIp,
    tnt: TntBits,
    now: u64,
    last_tsc: Option<u64>,
    bytes_since_psb: usize,
    events_seen: u64,
    events_traced: u64,
}

/// The finished per-core trace: exported bytes plus loss records.
#[derive(Debug, Clone, Default)]
pub struct PtTrace {
    /// The exported packet byte stream.
    pub bytes: Vec<u8>,
    /// Loss records in stream order.
    pub losses: Vec<LossRecord>,
}

impl PtEncoder {
    /// Creates an encoder with the given configuration.
    pub fn new(cfg: EncoderConfig) -> PtEncoder {
        PtEncoder {
            ring: RingBuffer::new(cfg.buffer_capacity),
            cfg,
            last_ip: LastIp::new(),
            tnt: TntBits::new(),
            now: 0,
            last_tsc: None,
            bytes_since_psb: 0,
            events_seen: 0,
            events_traced: 0,
        }
    }

    /// Advances the encoder's notion of time (cycles).
    pub fn set_time(&mut self, ts: u64) {
        self.now = ts;
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The exporter: drain up to `n` buffered bytes to the trace file.
    pub fn drain(&mut self, n: usize) -> usize {
        self.ring.drain(n)
    }

    /// Point-in-time ring occupancy (for live telemetry gauges).
    pub fn ring_sample(&self) -> crate::ring::RingSample {
        self.ring.sample()
    }

    /// Total events offered / events that generated packets (filter and
    /// enable-state effects).
    pub fn event_stats(&self) -> (u64, u64) {
        (self.events_seen, self.events_traced)
    }

    /// Fraction of produced bytes dropped so far.
    pub fn loss_fraction(&self) -> f64 {
        self.ring.loss_fraction()
    }

    fn in_filter(&self, ip: u64) -> bool {
        match self.cfg.filter {
            None => true,
            Some((lo, hi)) => ip >= lo && ip < hi,
        }
    }

    /// Feeds one hardware event.
    pub fn event(&mut self, ev: HwEvent) {
        self.events_seen += 1;
        match ev {
            HwEvent::Cond { at, taken } => {
                if !self.in_filter(at) {
                    return;
                }
                self.events_traced += 1;
                self.tnt.push(taken);
                if self.tnt.len() == 6 {
                    self.flush_tnt();
                }
            }
            HwEvent::Indirect { at, target } => {
                let src_in = self.in_filter(at);
                let dst_in = self.in_filter(target);
                match (src_in, dst_in) {
                    (true, true) => {
                        self.events_traced += 1;
                        self.flush_tnt();
                        self.emit_ip(target, IpPacketKind::Tip);
                    }
                    (true, false) => {
                        // Leaving the filter region: TIP.PGD.
                        self.events_traced += 1;
                        self.flush_tnt();
                        self.emit_ip(target, IpPacketKind::Pgd);
                    }
                    (false, true) => {
                        // Entering the filter region: TIP.PGE.
                        self.events_traced += 1;
                        self.emit_ip(target, IpPacketKind::Pge);
                    }
                    (false, false) => {}
                }
            }
            HwEvent::Async { from, to } => {
                if self.in_filter(from) || self.in_filter(to) {
                    self.events_traced += 1;
                    self.flush_tnt();
                    self.emit_ip(from, IpPacketKind::Fup);
                    self.emit_ip(to, IpPacketKind::Tip);
                }
            }
            HwEvent::Enable { ip } => {
                self.events_traced += 1;
                self.emit_ip(ip, IpPacketKind::Pge);
            }
            HwEvent::Disable { ip } => {
                self.events_traced += 1;
                self.flush_tnt();
                self.emit_ip(ip, IpPacketKind::Pgd);
            }
        }
    }

    /// Flushes pending TNT bits as a packet.
    pub fn flush_tnt(&mut self) {
        if self.tnt.is_empty() {
            return;
        }
        let bits = self.tnt.take();
        let p = Packet::Tnt { bits };
        self.write_packet(&p, false);
    }

    fn emit_ip(&mut self, ip: u64, kind: IpPacketKind) {
        self.maybe_tsc();
        // Choose compression against a scratch copy.
        let mut scratch = self.last_ip;
        let (compression, _raw) = scratch.compress(ip);
        let p = match kind {
            IpPacketKind::Tip => Packet::Tip { compression, ip },
            IpPacketKind::Pge => Packet::TipPge { compression, ip },
            IpPacketKind::Pgd => Packet::TipPgd { compression, ip },
            IpPacketKind::Fup => Packet::Fup { compression, ip },
        };
        // Commit *before* writing: if this very write crosses the PSB
        // threshold, the PSB lands after the packet in the stream and its
        // reset must win over the commit (committing afterwards would
        // clobber the reset and permanently desync the decoder). On a
        // dropped packet `write_packet` leaves the state untouched, so
        // rolling back restores the pre-packet state exactly; the
        // loss-recovery path manages the state itself and returns true.
        let saved = self.last_ip;
        self.last_ip = scratch;
        if !self.write_packet(&p, true) {
            self.last_ip = saved;
        }
    }

    fn maybe_tsc(&mut self) {
        let due = match self.last_tsc {
            None => true,
            Some(t) => self.now.saturating_sub(t) >= self.cfg.tsc_period,
        };
        if due {
            let p = Packet::Tsc { tsc: self.now };
            if self.write_packet(&p, false) {
                self.last_tsc = Some(self.now);
            }
        }
    }

    /// Writes a packet, handling loss recovery and periodic PSB.
    /// Returns `true` if the packet made it into the buffer.
    ///
    /// `ip_bearing` controls whether the raw bytes must be re-encoded when
    /// a loss span forces a full IP; callers handle that by committing the
    /// compression state only on success, and the OVF recovery path resets
    /// the state so the *next* IP packet is full.
    fn write_packet(&mut self, p: &Packet, ip_bearing: bool) -> bool {
        if self.ring.in_loss() {
            // Try to close the loss span: OVF + TSC must fit together with
            // the packet (re-encoded with a full IP if IP-bearing). TSC
            // packets need no re-send — the recovery TSC replaces them.
            let ovf = Packet::Ovf.encode_fixed();
            let tsc = Packet::Tsc { tsc: self.now }.encode_fixed();
            let is_tsc = matches!(p, Packet::Tsc { .. });
            let full_packet = if is_tsc {
                PacketBytes::default()
            } else if ip_bearing {
                force_full_ip(p).encode_fixed()
            } else {
                p.encode_fixed()
            };
            let need = ovf.len() + tsc.len() + full_packet.len();
            if !self.ring.would_fit(need) {
                // Still in loss: record the drop without touching the
                // buffer (partial packets mid-loss would be undecodable).
                self.ring.drop_packet(p.encoded_len(), self.now);
                return false;
            }
            self.ring.write(ovf.as_slice(), self.now);
            self.ring.write(tsc.as_slice(), self.now);
            self.last_tsc = Some(self.now);
            self.last_ip.reset();
            if !full_packet.is_empty() {
                let ok = self.ring.write(full_packet.as_slice(), self.now);
                debug_assert!(ok);
            }
            if ip_bearing {
                // Commit the full IP into the compression state.
                if let Some(ip) = p.ip() {
                    let _ = self.last_ip.compress(ip);
                }
            }
            self.bytes_since_psb += need;
            return true;
        }

        let bytes = p.encode_fixed();
        if !self.ring.write(bytes.as_slice(), self.now) {
            return false;
        }
        self.bytes_since_psb += bytes.len();
        if self.bytes_since_psb >= self.cfg.psb_period {
            self.bytes_since_psb = 0;
            let psb = Packet::Psb.encode_fixed();
            let tsc = Packet::Tsc { tsc: self.now }.encode_fixed();
            let end = Packet::PsbEnd.encode_fixed();
            if self.ring.would_fit(psb.len() + tsc.len() + end.len()) {
                self.ring.write(psb.as_slice(), self.now);
                self.ring.write(tsc.as_slice(), self.now);
                self.ring.write(end.as_slice(), self.now);
                self.last_tsc = Some(self.now);
                self.last_ip.reset();
            }
        }
        true
    }

    /// Flushes pending state and returns the finished trace.
    pub fn finish(mut self) -> PtTrace {
        self.flush_tnt();
        self.ring.flush();
        PtTrace {
            bytes: self.ring.exported().to_vec(),
            losses: self.ring.loss_records().to_vec(),
        }
    }

    /// Bytes produced so far (written + pending), for rate diagnostics.
    pub fn total_written(&self) -> u64 {
        self.ring.total_written()
    }
}

#[derive(Debug, Clone, Copy)]
enum IpPacketKind {
    Tip,
    Pge,
    Pgd,
    Fup,
}

fn force_full_ip(p: &Packet) -> Packet {
    use crate::packet::IpCompression::Full;
    match *p {
        Packet::Tip { ip, .. } => Packet::Tip {
            compression: Full,
            ip,
        },
        Packet::TipPge { ip, .. } => Packet::TipPge {
            compression: Full,
            ip,
        },
        Packet::TipPgd { ip, .. } => Packet::TipPgd {
            compression: Full,
            ip,
        },
        Packet::Fup { ip, .. } => Packet::Fup {
            compression: Full,
            ip,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::decode_packets;

    fn unlimited() -> EncoderConfig {
        EncoderConfig {
            buffer_capacity: 1 << 20,
            filter: None,
            tsc_period: 1 << 40,
            psb_period: 1 << 30,
        }
    }

    #[test]
    fn tnt_bits_pack_six_per_byte() {
        let mut enc = PtEncoder::new(unlimited());
        enc.event(HwEvent::Enable { ip: 0x1000 });
        for i in 0..12 {
            enc.event(HwEvent::Cond {
                at: 0x1000,
                taken: i % 2 == 0,
            });
        }
        let trace = enc.finish();
        let packets = decode_packets(&trace.bytes);
        let tnts: Vec<_> = packets
            .iter()
            .filter_map(|p| match &p.packet {
                Packet::Tnt { bits } => Some(bits.len()),
                _ => None,
            })
            .collect();
        assert_eq!(tnts, vec![6, 6]);
    }

    #[test]
    fn filter_suppresses_outside_events() {
        let mut cfg = unlimited();
        cfg.filter = Some((0x1000, 0x2000));
        let mut enc = PtEncoder::new(cfg);
        enc.event(HwEvent::Cond {
            at: 0x5000,
            taken: true,
        }); // outside: ignored
        enc.event(HwEvent::Indirect {
            at: 0x5000,
            target: 0x1000,
        }); // entering: PGE
        enc.event(HwEvent::Cond {
            at: 0x1004,
            taken: false,
        });
        enc.event(HwEvent::Indirect {
            at: 0x1010,
            target: 0x5000,
        }); // leaving: PGD
        let (seen, traced) = enc.event_stats();
        assert_eq!(seen, 4);
        assert_eq!(traced, 3);
        let trace = enc.finish();
        let packets = decode_packets(&trace.bytes);
        let kinds: Vec<&'static str> = packets
            .iter()
            .filter_map(|p| match &p.packet {
                Packet::TipPge { .. } => Some("PGE"),
                Packet::TipPgd { .. } => Some("PGD"),
                Packet::Tnt { .. } => Some("TNT"),
                Packet::Tip { .. } => Some("TIP"),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec!["PGE", "TNT", "PGD"]);
    }

    #[test]
    fn tsc_cadence() {
        let mut cfg = unlimited();
        cfg.tsc_period = 100;
        let mut enc = PtEncoder::new(cfg);
        enc.set_time(0);
        enc.event(HwEvent::Indirect {
            at: 0x10,
            target: 0x20,
        });
        enc.set_time(50);
        enc.event(HwEvent::Indirect {
            at: 0x20,
            target: 0x30,
        }); // too soon for another TSC
        enc.set_time(150);
        enc.event(HwEvent::Indirect {
            at: 0x30,
            target: 0x40,
        }); // TSC due
        let trace = enc.finish();
        let tscs: Vec<u64> = decode_packets(&trace.bytes)
            .iter()
            .filter_map(|p| match p.packet {
                Packet::Tsc { tsc } => Some(tsc),
                _ => None,
            })
            .collect();
        assert_eq!(tscs, vec![0, 150]);
    }

    #[test]
    fn overflow_emits_ovf_and_resyncs() {
        let cfg = EncoderConfig {
            buffer_capacity: 32,
            filter: None,
            tsc_period: 1 << 40,
            psb_period: 1 << 30,
        };
        let mut enc = PtEncoder::new(cfg);
        enc.set_time(1);
        // Fill the buffer without draining.
        for i in 0..20u64 {
            enc.set_time(1 + i);
            enc.event(HwEvent::Indirect {
                at: 0x1000 + i * 0x10,
                target: 0x2000 + i * 0x10,
            });
        }
        // Drain and send one more event: should close the loss with OVF.
        enc.drain(1 << 20);
        enc.set_time(100);
        enc.event(HwEvent::Indirect {
            at: 0x9000,
            target: 0xA000,
        });
        let trace = enc.finish();
        assert_eq!(trace.losses.len(), 1);
        let packets = decode_packets(&trace.bytes);
        let has_ovf = packets.iter().any(|p| p.packet == Packet::Ovf);
        assert!(has_ovf, "OVF packet must mark the recovery point");
        // The packet following OVF+TSC must carry a full IP.
        let idx = packets
            .iter()
            .position(|p| p.packet == Packet::Ovf)
            .unwrap();
        match &packets[idx + 2].packet {
            Packet::Tip { compression, ip } => {
                assert_eq!(*compression, crate::packet::IpCompression::Full);
                assert_eq!(*ip, 0xA000);
            }
            other => panic!("expected full TIP after OVF, got {other}"),
        }
    }

    #[test]
    fn psb_cadence_and_lastip_reset() {
        let mut cfg = unlimited();
        cfg.psb_period = 64;
        let mut enc = PtEncoder::new(cfg);
        for i in 0..40u64 {
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x2000 + i * 0x10,
            });
        }
        let trace = enc.finish();
        let packets = decode_packets(&trace.bytes);
        let psbs = packets.iter().filter(|p| p.packet == Packet::Psb).count();
        assert!(psbs >= 2, "expected periodic PSBs, got {psbs}");
        // Immediately after each PSB(+TSC+PSBEND), the next TIP is full.
        for (i, p) in packets.iter().enumerate() {
            if p.packet == Packet::Psb {
                let next_tip = packets[i + 1..].iter().find_map(|q| match &q.packet {
                    Packet::Tip { compression, .. } => Some(*compression),
                    _ => None,
                });
                if let Some(c) = next_tip {
                    assert_eq!(c, crate::packet::IpCompression::Full);
                }
            }
        }
    }

    #[test]
    fn async_event_is_fup_then_tip() {
        let mut enc = PtEncoder::new(unlimited());
        enc.event(HwEvent::Async {
            from: 0x1111,
            to: 0x2222,
        });
        let trace = enc.finish();
        let packets = decode_packets(&trace.bytes);
        let kinds: Vec<&'static str> = packets
            .iter()
            .filter_map(|p| match &p.packet {
                Packet::Fup { .. } => Some("FUP"),
                Packet::Tip { .. } => Some("TIP"),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec!["FUP", "TIP"]);
    }
}
