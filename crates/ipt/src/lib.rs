//! Simulated Intel Processor Trace.
//!
//! This crate stands in for the PT hardware and the perf kernel interface
//! used by JPortal's online component (paper §2, §6). It is byte-accurate
//! at the packet level: TNT packets pack up to six branches per byte with a
//! stop bit, TIP/FUP/TIP.PGE/TIP.PGD packets use last-IP compression with
//! the real compression codes, TSC packets carry 7-byte timestamps and PSB
//! packets provide synchronization points — so the decoder genuinely has to
//! fight the same compression and segmentation the paper's decoder does.
//!
//! The pieces:
//!
//! * [`packet`] — packet types and their byte-level codec,
//! * [`lastip`] — the last-IP compression state machine,
//! * [`encoder`] — the "hardware": consumes [`HwEvent`]s from the simulated
//!   CPU, applies instruction-pointer filtering (§6 "Filtering Out
//!   Irrelevant Data") and writes packets into a bounded ring buffer,
//! * [`ring`] — the per-core ring buffer with a finite-rate exporter;
//!   overflow drops packets and records `perf_record_aux`-style loss
//!   records with timestamps (the source of the paper's missing-data
//!   problem, §5),
//! * [`sideband`] — perf-style sideband records (loss, thread switches),
//! * [`decoder`] — bytes → packets, segmented at loss marks,
//! * [`session`] — a multi-core tracing session (one encoder per core).

pub mod decoder;
pub mod encoder;
pub mod lastip;
pub mod obs;
pub mod packet;
pub mod ring;
pub mod session;
pub mod sideband;

pub use decoder::{
    decode_packets, decode_packets_into, segment_stream, DecodeScratch, DecodeStats, PacketBuf,
    RawSegment, TimedPacket,
};
pub use encoder::{EncoderConfig, HwEvent, PtEncoder};
pub use obs::{CollectionStats, CoreCollection};
pub use packet::{IpCompression, Packet, TntBits};
pub use ring::{LossRecord, RingBuffer, RingSample};
pub use session::{CollectedTraces, CoreId, PtSession};
pub use sideband::{SidebandRecord, ThreadId};
