//! Packet-level trace decoding.
//!
//! Parses an exported byte stream back into packets, resolving last-IP
//! compression and attaching the most recent timestamp to every packet;
//! [`segment_stream`] then splits the packet sequence at the recorded loss
//! points, yielding the segmented trace JPortal's reconstruction works on
//! (each hole is a `⋄` of Definition 5.1).

use crate::lastip::LastIp;
use crate::packet::{decode_one, Packet};
use crate::ring::LossRecord;

/// A decoded packet with its stream offset and the prevailing timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPacket {
    /// The packet (IP-bearing packets carry fully reconstructed IPs).
    pub packet: Packet,
    /// Byte offset in the exported stream.
    pub offset: u64,
    /// Timestamp of the last TSC packet seen before this one (0 before
    /// any TSC).
    pub ts: u64,
}

/// Decodes a whole exported stream into timed packets.
///
/// Unknown or truncated bytes are skipped one at a time (decoder resync);
/// well-formed streams produced by [`crate::PtEncoder`] never need this.
///
/// # Examples
///
/// ```
/// use jportal_ipt::{decode_packets, EncoderConfig, HwEvent, PtEncoder};
///
/// let mut enc = PtEncoder::new(EncoderConfig::default());
/// enc.event(HwEvent::Indirect { at: 0x10, target: 0x7fa41901e9a0 });
/// let trace = enc.finish();
/// let packets = decode_packets(&trace.bytes);
/// assert!(packets.iter().any(|p| p.packet.ip() == Some(0x7fa41901e9a0)));
/// ```
pub fn decode_packets(bytes: &[u8]) -> Vec<TimedPacket> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut last_ip = LastIp::new();
    let mut ts = 0u64;
    while pos < bytes.len() {
        match decode_one(bytes, pos) {
            Some((packet, consumed)) => {
                let resolved = resolve(packet, &mut last_ip, &mut ts);
                if let Some(p) = resolved {
                    out.push(TimedPacket {
                        packet: p,
                        offset: pos as u64,
                        ts,
                    });
                }
                pos += consumed;
            }
            None => {
                pos += 1; // resync byte-by-byte
            }
        }
    }
    out
}

fn resolve(packet: Packet, last_ip: &mut LastIp, ts: &mut u64) -> Option<Packet> {
    match packet {
        Packet::Psb | Packet::Ovf => {
            last_ip.reset();
            Some(packet)
        }
        Packet::Tsc { tsc } => {
            *ts = tsc;
            Some(packet)
        }
        Packet::Tip { compression, ip } => last_ip
            .decode(compression, ip)
            .map(|ip| Packet::Tip { compression, ip }),
        Packet::TipPge { compression, ip } => last_ip
            .decode(compression, ip)
            .map(|ip| Packet::TipPge { compression, ip }),
        Packet::TipPgd { compression, ip } => last_ip
            .decode(compression, ip)
            .map(|ip| Packet::TipPgd { compression, ip }),
        Packet::Fup { compression, ip } => last_ip
            .decode(compression, ip)
            .map(|ip| Packet::Fup { compression, ip }),
        Packet::Pad => None,
        other => Some(other),
    }
}

/// One maximal packet run between data-loss points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawSegment {
    /// The packets of the segment, in order.
    pub packets: Vec<TimedPacket>,
    /// The loss record that precedes this segment (`None` for the first
    /// segment when the stream starts cleanly).
    pub loss_before: Option<LossRecord>,
    /// The physical core whose PT buffer produced these packets. Carried
    /// from the per-core drain path so downstream decoded segments keep
    /// their capture-core attribution.
    pub core: u32,
}

impl RawSegment {
    /// Timestamp of the segment's first packet (0 if empty).
    pub fn start_ts(&self) -> u64 {
        self.packets.first().map(|p| p.ts).unwrap_or(0)
    }

    /// Timestamp of the segment's last packet (0 if empty).
    pub fn end_ts(&self) -> u64 {
        self.packets.last().map(|p| p.ts).unwrap_or(0)
    }
}

/// Splits decoded packets into segments at the loss offsets, attributing
/// every segment to the capture core `core`.
///
/// Loss records must be in stream order (the [`crate::RingBuffer`]
/// produces them that way).
pub fn segment_stream(
    packets: Vec<TimedPacket>,
    losses: &[LossRecord],
    core: u32,
) -> Vec<RawSegment> {
    let mut segments = Vec::with_capacity(losses.len() + 1);
    let mut current = Vec::new();
    let mut loss_iter = losses.iter().peekable();
    let mut pending_loss: Option<LossRecord> = None;

    for p in packets {
        while let Some(&&loss) = loss_iter.peek() {
            if loss.stream_offset <= p.offset {
                loss_iter.next();
                segments.push(RawSegment {
                    packets: std::mem::take(&mut current),
                    loss_before: pending_loss.take(),
                    core,
                });
                pending_loss = Some(loss);
            } else {
                break;
            }
        }
        current.push(p);
    }
    // Trailing losses (e.g. loss at the very end of the stream).
    for &loss in loss_iter {
        segments.push(RawSegment {
            packets: std::mem::take(&mut current),
            loss_before: pending_loss.take(),
            core,
        });
        pending_loss = Some(loss);
    }
    segments.push(RawSegment {
        packets: current,
        loss_before: pending_loss,
        core,
    });
    // Drop leading empty no-loss segment artifacts.
    segments.retain(|s| !s.packets.is_empty() || s.loss_before.is_some());
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, HwEvent, PtEncoder};
    use crate::packet::IpCompression;

    #[test]
    fn round_trips_an_encoded_stream() {
        let mut enc = PtEncoder::new(EncoderConfig {
            buffer_capacity: 1 << 20,
            filter: None,
            tsc_period: 100,
            psb_period: 1 << 30,
        });
        let targets = [0x7fa4_1901_e9a0u64, 0x7fa4_1902_3ba0, 0x7fa4_1901_ea40];
        for (i, &t) in targets.iter().enumerate() {
            enc.set_time(i as u64 * 150);
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: t,
            });
        }
        let trace = enc.finish();
        let tips: Vec<u64> = decode_packets(&trace.bytes)
            .iter()
            .filter_map(|p| match p.packet {
                Packet::Tip { ip, .. } => Some(ip),
                _ => None,
            })
            .collect();
        assert_eq!(tips, targets);
    }

    #[test]
    fn timestamps_attach_to_following_packets() {
        let mut enc = PtEncoder::new(EncoderConfig {
            buffer_capacity: 1 << 20,
            filter: None,
            tsc_period: 10,
            psb_period: 1 << 30,
        });
        enc.set_time(1000);
        enc.event(HwEvent::Indirect {
            at: 0x10,
            target: 0x20,
        });
        let trace = enc.finish();
        let packets = decode_packets(&trace.bytes);
        let tip = packets
            .iter()
            .find(|p| matches!(p.packet, Packet::Tip { .. }))
            .unwrap();
        assert_eq!(tip.ts, 1000);
    }

    #[test]
    fn segmentation_splits_at_loss_offsets() {
        // Build a stream with an artificial loss between two packets.
        let mut bytes = Vec::new();
        Packet::Tip {
            compression: IpCompression::Full,
            ip: 0x1000,
        }
        .encode(&mut bytes);
        let cut = bytes.len() as u64;
        Packet::Tip {
            compression: IpCompression::Full,
            ip: 0x2000,
        }
        .encode(&mut bytes);
        let losses = [LossRecord {
            stream_offset: cut,
            first_ts: 5,
            last_ts: 9,
            lost_bytes: 100,
            lost_packets: 10,
        }];
        let packets = decode_packets(&bytes);
        assert_eq!(packets.len(), 2);
        let segments = segment_stream(packets, &losses, 0);
        assert_eq!(segments.len(), 2);
        assert!(segments[0].loss_before.is_none());
        assert_eq!(segments[0].packets.len(), 1);
        let loss = segments[1].loss_before.expect("loss recorded");
        assert_eq!(loss.first_ts, 5);
        assert_eq!(segments[1].packets.len(), 1);
    }

    #[test]
    fn end_to_end_overflow_yields_segments() {
        let mut enc = PtEncoder::new(EncoderConfig {
            buffer_capacity: 48,
            filter: None,
            tsc_period: 1 << 40,
            psb_period: 1 << 30,
        });
        // Phase 1: fits.
        for i in 0..4u64 {
            enc.set_time(i);
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x2000 + i * 0x100,
            });
        }
        // Phase 2: overflow (no drain).
        for i in 0..40u64 {
            enc.set_time(100 + i);
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x4000 + i * 0x100,
            });
        }
        // Phase 3: drain, then more events.
        enc.drain(1 << 20);
        for i in 0..4u64 {
            enc.set_time(500 + i);
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x8000 + i * 0x100,
            });
        }
        let trace = enc.finish();
        assert!(!trace.losses.is_empty());
        let packets = decode_packets(&trace.bytes);
        let segments = segment_stream(packets, &trace.losses, 0);
        assert!(segments.len() >= 2);
        let with_loss = segments.iter().filter(|s| s.loss_before.is_some()).count();
        assert!(with_loss >= 1);
        // All decoded TIP IPs must be exact (no desync after loss).
        for s in &segments {
            for p in &s.packets {
                if let Packet::Tip { ip, .. } = p.packet {
                    assert!(
                        (0x2000..0x2400).contains(&ip)
                            || (0x4000..0x6900).contains(&ip)
                            || (0x8000..0x8400).contains(&ip),
                        "resolved IP {ip:#x} is not one that was encoded"
                    );
                }
            }
        }
    }

    #[test]
    fn segment_timestamps() {
        let seg = RawSegment {
            packets: vec![
                TimedPacket {
                    packet: Packet::Ovf,
                    offset: 0,
                    ts: 11,
                },
                TimedPacket {
                    packet: Packet::Ovf,
                    offset: 2,
                    ts: 42,
                },
            ],
            loss_before: None,
            core: 0,
        };
        assert_eq!(seg.start_ts(), 11);
        assert_eq!(seg.end_ts(), 42);
    }

    #[test]
    fn garbage_bytes_are_skipped() {
        let mut bytes = vec![0xFF, 0xFF, 0x07];
        Packet::Tip {
            compression: IpCompression::Full,
            ip: 0xABCD,
        }
        .encode(&mut bytes);
        let packets = decode_packets(&bytes);
        assert!(packets
            .iter()
            .any(|p| matches!(p.packet, Packet::Tip { ip, .. } if ip == 0xABCD)));
    }
}
