//! Packet-level trace decoding.
//!
//! Parses an exported byte stream back into packets, resolving last-IP
//! compression and attaching the most recent timestamp to every packet;
//! [`segment_stream`] then splits the packet sequence at the recorded loss
//! points, yielding the segmented trace JPortal's reconstruction works on
//! (each hole is a `⋄` of Definition 5.1).
//!
//! The stream decoder is sink-based and allocation-free in steady state:
//! [`decode_packets_into`] appends into a caller-owned [`DecodeScratch`]
//! whose capacity carries across streams, packets are `Copy` end to end
//! (TNT payloads are packed `u64`s, see [`crate::packet::TntBits`]), and
//! the hot loop dispatches on the header byte through a 256-entry action
//! table instead of a nested match. Segmentation is zero-copy: a
//! [`RawSegment`] is an index range over one shared decoded buffer
//! ([`PacketBuf`]), never a re-vectored copy.

use crate::lastip::LastIp;
use crate::packet::{IpCompression, Packet, TntBits, TSC_MASK};
use crate::ring::LossRecord;
use std::ops::Range;
use std::sync::Arc;

/// A decoded packet with its stream offset and the prevailing timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedPacket {
    /// The packet (IP-bearing packets carry fully reconstructed IPs).
    pub packet: Packet,
    /// Byte offset in the exported stream.
    pub offset: u64,
    /// Timestamp of the last TSC packet seen before this one (0 before
    /// any TSC).
    pub ts: u64,
}

/// Cumulative stream-decode statistics (monotone across
/// [`decode_packets_into`] calls on the same scratch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Bytes skipped by the byte-by-byte resync path (unknown or
    /// truncated packet headers). Zero on well-formed streams.
    pub resync_bytes: u64,
    /// Packets decoded (after last-IP resolution; PAD bytes and packets
    /// dropped for missing compression context are not counted).
    pub packets: u64,
}

impl DecodeStats {
    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &DecodeStats) {
        self.resync_bytes += other.resync_bytes;
        self.packets += other.packets;
    }
}

/// Reusable sink for [`decode_packets_into`]: the packet buffer's
/// capacity carries across streams (the per-worker "arena" of the decode
/// fan-out), and decode statistics accumulate monotonically.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    packets: Vec<TimedPacket>,
    stats: DecodeStats,
    high_water: usize,
}

impl DecodeScratch {
    /// An empty scratch.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }

    /// The packets of the most recent decode.
    pub fn packets(&self) -> &[TimedPacket] {
        &self.packets
    }

    /// Cumulative decode statistics over every stream this scratch saw.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Largest packet count any single decode produced (capacity
    /// high-water mark, for the scratch-reuse gauges).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Moves the decoded packets out (the scratch keeps its statistics
    /// but gives up the buffer's capacity).
    pub fn take_packets(&mut self) -> Vec<TimedPacket> {
        std::mem::take(&mut self.packets)
    }

    /// Copies the decoded packets into a freshly allocated shared buffer
    /// sized exactly (one allocation per stream), keeping the scratch's
    /// capacity for the next stream.
    pub fn to_shared(&self) -> PacketBuf {
        PacketBuf::from(&self.packets[..])
    }
}

/// The shared decoded-packet buffer [`RawSegment`]s index into.
pub type PacketBuf = Arc<[TimedPacket]>;

/// Per-header-byte decode action, precomputed for all 256 byte values so
/// the stream decoder's hot loop is a single table load plus a short
/// per-kind tail instead of a nested match. Short-TNT entries carry the
/// fully decoded payload (the header byte *is* the packet); IP entries
/// carry the packet kind, wire compression code and payload width.
#[derive(Debug, Clone, Copy)]
enum ByteClass {
    /// Unknown header: resync by one byte.
    Invalid,
    /// 0x00 padding (consumed, no packet).
    Pad,
    /// 0x02 extension prefix (PSB/PSBEND/OVF/long TNT).
    Ext,
    /// 0x19 timestamp.
    Tsc,
    /// Short TNT, payload decoded at table-build time.
    ShortTnt(TntShape),
    /// IP-bearing packet (TIP/PGE/PGD/FUP).
    Ip(IpShape),
}

#[derive(Debug, Clone, Copy)]
struct TntShape {
    bits: u8,
    len: u8,
}

#[derive(Debug, Clone, Copy)]
struct IpShape {
    kind: IpKind,
    code: u8,
    plen: u8,
}

#[derive(Debug, Clone, Copy)]
enum IpKind {
    Tip,
    Pge,
    Pgd,
    Fup,
}

const fn classify(b: u8) -> ByteClass {
    match b {
        0x00 => ByteClass::Pad,
        0x02 => ByteClass::Ext,
        0x19 => ByteClass::Tsc,
        b if b & 1 == 0 => {
            // Short TNT: even header that is not PAD/0x02. The stop
            // bit's position gives the length; the payload sits above
            // the reserved bit 0.
            let stop = 7 - b.leading_zeros() as u8;
            if stop == 0 {
                return ByteClass::Invalid;
            }
            let len = stop - 1;
            ByteClass::ShortTnt(TntShape {
                bits: (b >> 1) & ((1 << len) - 1),
                len,
            })
        }
        b => {
            let code = (b >> 5) & 0x7;
            let plen = match code {
                0 => 0,
                1 => 2,
                2 => 4,
                4 => 6,
                6 => 8,
                _ => return ByteClass::Invalid,
            };
            let kind = match b & 0x1F {
                0x0D => IpKind::Tip,
                0x11 => IpKind::Pge,
                0x01 => IpKind::Pgd,
                0x1D => IpKind::Fup,
                _ => return ByteClass::Invalid,
            };
            ByteClass::Ip(IpShape { kind, code, plen })
        }
    }
}

/// The 256-entry header-byte dispatch table.
static DISPATCH: [ByteClass; 256] = {
    let mut t = [ByteClass::Invalid; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = classify(i as u8);
        i += 1;
    }
    t
};

/// Raw-payload mask by payload byte count (`plen` ∈ {0, 2, 4, 6, 8}).
const RAW_MASK: [u64; 9] = [
    0,
    0xFF,
    0xFFFF,
    0xFF_FFFF,
    0xFFFF_FFFF,
    0xFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF,
    0xFF_FFFF_FFFF_FFFF,
    u64::MAX,
];

/// Unaligned little-endian u64 load at `pos` (caller guarantees
/// `pos + 8 <= bytes.len()`).
#[inline]
fn load_u64(bytes: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap())
}

/// Little-endian load of the `n` bytes at `pos` (tail-safe slow path for
/// the last few stream bytes, where a full u64 load would run past the
/// end).
#[inline(never)]
fn load_tail(bytes: &[u8], pos: usize, n: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw[..n].copy_from_slice(&bytes[pos..pos + n]);
    u64::from_le_bytes(raw)
}

/// Decodes a whole exported stream into `scratch`, replacing its packet
/// contents (capacity is reused) and accumulating its statistics.
/// Returns the decoded packets.
///
/// Unknown or truncated bytes are skipped one at a time (decoder resync,
/// counted in [`DecodeStats::resync_bytes`]); well-formed streams
/// produced by [`crate::PtEncoder`] never need this. The loop allocates
/// nothing per packet: every [`Packet`] is `Copy` and the sink grows at
/// most to the stream's packet count, once.
pub fn decode_packets_into<'s>(bytes: &[u8], scratch: &'s mut DecodeScratch) -> &'s [TimedPacket] {
    scratch.packets.clear();
    let out = &mut scratch.packets;
    let n = bytes.len();
    let mut pos = 0usize;
    let mut last_ip = LastIp::new();
    let mut ts = 0u64;
    let mut resync = 0u64;

    while pos < n {
        let b = bytes[pos];
        match DISPATCH[b as usize] {
            ByteClass::Pad => pos += 1,
            ByteClass::ShortTnt(shape) => {
                out.push(TimedPacket {
                    packet: Packet::Tnt {
                        bits: TntBits::from_raw(shape.bits as u64, shape.len),
                    },
                    offset: pos as u64,
                    ts,
                });
                pos += 1;
            }
            ByteClass::Ip(shape) => {
                let plen = shape.plen as usize;
                if n - pos <= plen {
                    // Truncated payload: resync byte-by-byte.
                    pos += 1;
                    resync += 1;
                    continue;
                }
                let raw = if pos + 9 <= n {
                    load_u64(bytes, pos + 1) & RAW_MASK[plen]
                } else {
                    load_tail(bytes, pos + 1, plen)
                };
                if let Some(ip) = last_ip.decode_code(shape.code, raw) {
                    let compression = match shape.code {
                        1 => IpCompression::Update16,
                        2 => IpCompression::Update32,
                        4 => IpCompression::Update48,
                        _ => IpCompression::Full,
                    };
                    let packet = match shape.kind {
                        IpKind::Tip => Packet::Tip { compression, ip },
                        IpKind::Pge => Packet::TipPge { compression, ip },
                        IpKind::Pgd => Packet::TipPgd { compression, ip },
                        IpKind::Fup => Packet::Fup { compression, ip },
                    };
                    out.push(TimedPacket {
                        packet,
                        offset: pos as u64,
                        ts,
                    });
                }
                // A partial update with no context to extend is dropped
                // but still consumed — exactly the seed behavior.
                pos += 1 + plen;
            }
            ByteClass::Tsc => {
                if n - pos < 8 {
                    pos += 1;
                    resync += 1;
                    continue;
                }
                let tsc = if pos + 9 <= n {
                    load_u64(bytes, pos + 1) & TSC_MASK
                } else {
                    load_tail(bytes, pos + 1, 7)
                };
                ts = tsc;
                out.push(TimedPacket {
                    packet: Packet::Tsc { tsc },
                    offset: pos as u64,
                    ts,
                });
                pos += 8;
            }
            ByteClass::Ext => match bytes.get(pos + 1) {
                Some(0x82) => {
                    // PSB is 8 × [0x02, 0x82].
                    const PSB: [u8; 16] = [
                        0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x02, 0x82,
                        0x02, 0x82, 0x02, 0x82,
                    ];
                    if pos + 16 <= n && bytes[pos..pos + 16] == PSB {
                        last_ip.reset();
                        out.push(TimedPacket {
                            packet: Packet::Psb,
                            offset: pos as u64,
                            ts,
                        });
                        pos += 16;
                    } else {
                        pos += 1;
                        resync += 1;
                    }
                }
                Some(0x23) => {
                    out.push(TimedPacket {
                        packet: Packet::PsbEnd,
                        offset: pos as u64,
                        ts,
                    });
                    pos += 2;
                }
                Some(0xF3) => {
                    last_ip.reset();
                    out.push(TimedPacket {
                        packet: Packet::Ovf,
                        offset: pos as u64,
                        ts,
                    });
                    pos += 2;
                }
                Some(0xA3) => {
                    // Long TNT: single load of the 6 payload bytes;
                    // `leading_zeros` finds the stop bit, the payload
                    // below it is already in packed form.
                    if pos + 8 > n {
                        pos += 1;
                        resync += 1;
                        continue;
                    }
                    let v = if pos + 10 <= n {
                        load_u64(bytes, pos + 2) & RAW_MASK[6]
                    } else {
                        load_tail(bytes, pos + 2, 6)
                    };
                    if v == 0 {
                        pos += 1;
                        resync += 1;
                        continue;
                    }
                    let stop = 63 - v.leading_zeros();
                    out.push(TimedPacket {
                        packet: Packet::Tnt {
                            bits: TntBits::from_raw(v, stop as u8),
                        },
                        offset: pos as u64,
                        ts,
                    });
                    pos += 8;
                }
                _ => {
                    pos += 1;
                    resync += 1;
                }
            },
            ByteClass::Invalid => {
                pos += 1;
                resync += 1;
            }
        }
    }

    scratch.stats.resync_bytes += resync;
    scratch.stats.packets += scratch.packets.len() as u64;
    scratch.high_water = scratch.high_water.max(scratch.packets.len());
    &scratch.packets
}

/// Decodes a whole exported stream into timed packets (allocating
/// convenience wrapper over [`decode_packets_into`]).
///
/// # Examples
///
/// ```
/// use jportal_ipt::{decode_packets, EncoderConfig, HwEvent, PtEncoder};
///
/// let mut enc = PtEncoder::new(EncoderConfig::default());
/// enc.event(HwEvent::Indirect { at: 0x10, target: 0x7fa41901e9a0 });
/// let trace = enc.finish();
/// let packets = decode_packets(&trace.bytes);
/// assert!(packets.iter().any(|p| p.packet.ip() == Some(0x7fa41901e9a0)));
/// ```
pub fn decode_packets(bytes: &[u8]) -> Vec<TimedPacket> {
    let mut scratch = DecodeScratch::new();
    decode_packets_into(bytes, &mut scratch);
    scratch.take_packets()
}

/// One maximal packet run between data-loss points: an index range over
/// a shared decoded-packet buffer. Cloning or sub-slicing a segment is
/// O(1) — no packets move.
#[derive(Debug, Clone)]
pub struct RawSegment {
    /// The decoded stream the segment indexes into.
    buf: PacketBuf,
    /// The segment's packets as indices into `buf`.
    range: Range<u32>,
    /// The loss record that precedes this segment (`None` for the first
    /// segment when the stream starts cleanly).
    pub loss_before: Option<LossRecord>,
    /// The physical core whose PT buffer produced these packets. Carried
    /// from the per-core drain path so downstream decoded segments keep
    /// their capture-core attribution.
    pub core: u32,
}

impl RawSegment {
    /// A segment over `range` of `buf`.
    pub fn new(
        buf: PacketBuf,
        range: Range<u32>,
        loss_before: Option<LossRecord>,
        core: u32,
    ) -> RawSegment {
        debug_assert!(range.start <= range.end && range.end as usize <= buf.len());
        RawSegment {
            buf,
            range,
            loss_before,
            core,
        }
    }

    /// A whole-buffer segment owning freshly decoded packets (test and
    /// single-segment convenience; the pipeline shares one buffer across
    /// segments instead).
    pub fn from_packets(
        packets: Vec<TimedPacket>,
        loss_before: Option<LossRecord>,
        core: u32,
    ) -> RawSegment {
        let buf: PacketBuf = packets.into();
        let end = buf.len() as u32;
        RawSegment::new(buf, 0..end, loss_before, core)
    }

    /// The packets of the segment, in order.
    pub fn packets(&self) -> &[TimedPacket] {
        &self.buf[self.range.start as usize..self.range.end as usize]
    }

    /// Number of packets in the segment.
    pub fn len(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// Whether the segment holds no packets.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The segment's index range within its shared buffer.
    pub fn range(&self) -> Range<u32> {
        self.range.clone()
    }

    /// The shared buffer this segment indexes into.
    pub fn buffer(&self) -> &PacketBuf {
        &self.buf
    }

    /// A sub-segment over `[lo, hi)` *relative to this segment*, sharing
    /// the same buffer (zero-copy). The slice carries `loss_before` and
    /// the capture core as given.
    pub fn slice(&self, lo: usize, hi: usize, loss_before: Option<LossRecord>) -> RawSegment {
        debug_assert!(lo <= hi && hi <= self.len());
        RawSegment {
            buf: self.buf.clone(),
            range: self.range.start + lo as u32..self.range.start + hi as u32,
            loss_before,
            core: self.core,
        }
    }

    /// Timestamp of the segment's first packet (0 if empty).
    pub fn start_ts(&self) -> u64 {
        self.packets().first().map(|p| p.ts).unwrap_or(0)
    }

    /// Timestamp of the segment's last packet (0 if empty).
    pub fn end_ts(&self) -> u64 {
        self.packets().last().map(|p| p.ts).unwrap_or(0)
    }
}

/// Segments compare by content (packets, loss, core), not by buffer
/// identity: two segments with equal packets are equal even when they
/// index different buffers.
impl PartialEq for RawSegment {
    fn eq(&self, other: &RawSegment) -> bool {
        self.core == other.core
            && self.loss_before == other.loss_before
            && self.packets() == other.packets()
    }
}

impl Eq for RawSegment {}

/// Splits a decoded stream into segments at the loss offsets,
/// attributing every segment to the capture core `core`.
///
/// Zero-copy: the input becomes (or already is) one shared [`PacketBuf`]
/// and every returned segment is an index range over it — packet offsets
/// are nondecreasing, so each cut is a binary search, not a scan-and-move.
///
/// Loss records must be in stream order (the [`crate::RingBuffer`]
/// produces them that way).
pub fn segment_stream(
    packets: impl Into<PacketBuf>,
    losses: &[LossRecord],
    core: u32,
) -> Vec<RawSegment> {
    let buf: PacketBuf = packets.into();
    let n = buf.len();
    let mut segments = Vec::with_capacity(losses.len() + 1);
    let mut start = 0usize;
    let mut pending: Option<LossRecord> = None;
    for &loss in losses {
        // First packet at or past the loss point starts the next segment.
        let cut = start + buf[start..].partition_point(|p| p.offset < loss.stream_offset);
        segments.push(RawSegment::new(
            buf.clone(),
            start as u32..cut as u32,
            pending.take(),
            core,
        ));
        pending = Some(loss);
        start = cut;
    }
    segments.push(RawSegment::new(
        buf.clone(),
        start as u32..n as u32,
        pending,
        core,
    ));
    // Drop leading empty no-loss segment artifacts.
    segments.retain(|s| !s.is_empty() || s.loss_before.is_some());
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, HwEvent, PtEncoder};
    use crate::packet::IpCompression;

    #[test]
    fn round_trips_an_encoded_stream() {
        let mut enc = PtEncoder::new(EncoderConfig {
            buffer_capacity: 1 << 20,
            filter: None,
            tsc_period: 100,
            psb_period: 1 << 30,
        });
        let targets = [0x7fa4_1901_e9a0u64, 0x7fa4_1902_3ba0, 0x7fa4_1901_ea40];
        for (i, &t) in targets.iter().enumerate() {
            enc.set_time(i as u64 * 150);
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: t,
            });
        }
        let trace = enc.finish();
        let tips: Vec<u64> = decode_packets(&trace.bytes)
            .iter()
            .filter_map(|p| match p.packet {
                Packet::Tip { ip, .. } => Some(ip),
                _ => None,
            })
            .collect();
        assert_eq!(tips, targets);
    }

    #[test]
    fn timestamps_attach_to_following_packets() {
        let mut enc = PtEncoder::new(EncoderConfig {
            buffer_capacity: 1 << 20,
            filter: None,
            tsc_period: 10,
            psb_period: 1 << 30,
        });
        enc.set_time(1000);
        enc.event(HwEvent::Indirect {
            at: 0x10,
            target: 0x20,
        });
        let trace = enc.finish();
        let packets = decode_packets(&trace.bytes);
        let tip = packets
            .iter()
            .find(|p| matches!(p.packet, Packet::Tip { .. }))
            .unwrap();
        assert_eq!(tip.ts, 1000);
    }

    #[test]
    fn scratch_reuse_accumulates_stats_and_keeps_capacity() {
        let mut enc = PtEncoder::new(EncoderConfig::default());
        for i in 0..50u64 {
            enc.set_time(i * 10);
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x2000 + i * 0x40,
            });
        }
        let trace = enc.finish();
        let mut scratch = DecodeScratch::new();
        let first = decode_packets_into(&trace.bytes, &mut scratch).len();
        assert!(first > 0);
        let cap = scratch.packets.capacity();
        let second = decode_packets_into(&trace.bytes, &mut scratch).len();
        assert_eq!(first, second, "same stream, same packets");
        assert_eq!(scratch.packets.capacity(), cap, "capacity carried over");
        assert_eq!(scratch.stats().packets, (first + second) as u64);
        assert_eq!(scratch.stats().resync_bytes, 0, "well-formed stream");
        assert_eq!(scratch.high_water(), first);
    }

    #[test]
    fn segmentation_splits_at_loss_offsets() {
        // Build a stream with an artificial loss between two packets.
        let mut bytes = Vec::new();
        Packet::Tip {
            compression: IpCompression::Full,
            ip: 0x1000,
        }
        .encode(&mut bytes);
        let cut = bytes.len() as u64;
        Packet::Tip {
            compression: IpCompression::Full,
            ip: 0x2000,
        }
        .encode(&mut bytes);
        let losses = [LossRecord {
            stream_offset: cut,
            first_ts: 5,
            last_ts: 9,
            lost_bytes: 100,
            lost_packets: 10,
        }];
        let packets = decode_packets(&bytes);
        assert_eq!(packets.len(), 2);
        let segments = segment_stream(packets, &losses, 0);
        assert_eq!(segments.len(), 2);
        assert!(segments[0].loss_before.is_none());
        assert_eq!(segments[0].len(), 1);
        let loss = segments[1].loss_before.expect("loss recorded");
        assert_eq!(loss.first_ts, 5);
        assert_eq!(segments[1].len(), 1);
        // Zero-copy: both segments index the same shared buffer.
        assert!(Arc::ptr_eq(segments[0].buffer(), segments[1].buffer()));
    }

    #[test]
    fn end_to_end_overflow_yields_segments() {
        let mut enc = PtEncoder::new(EncoderConfig {
            buffer_capacity: 48,
            filter: None,
            tsc_period: 1 << 40,
            psb_period: 1 << 30,
        });
        // Phase 1: fits.
        for i in 0..4u64 {
            enc.set_time(i);
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x2000 + i * 0x100,
            });
        }
        // Phase 2: overflow (no drain).
        for i in 0..40u64 {
            enc.set_time(100 + i);
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x4000 + i * 0x100,
            });
        }
        // Phase 3: drain, then more events.
        enc.drain(1 << 20);
        for i in 0..4u64 {
            enc.set_time(500 + i);
            enc.event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x8000 + i * 0x100,
            });
        }
        let trace = enc.finish();
        assert!(!trace.losses.is_empty());
        let packets = decode_packets(&trace.bytes);
        let segments = segment_stream(packets, &trace.losses, 0);
        assert!(segments.len() >= 2);
        let with_loss = segments.iter().filter(|s| s.loss_before.is_some()).count();
        assert!(with_loss >= 1);
        // All decoded TIP IPs must be exact (no desync after loss).
        for s in &segments {
            for p in s.packets() {
                if let Packet::Tip { ip, .. } = p.packet {
                    assert!(
                        (0x2000..0x2400).contains(&ip)
                            || (0x4000..0x6900).contains(&ip)
                            || (0x8000..0x8400).contains(&ip),
                        "resolved IP {ip:#x} is not one that was encoded"
                    );
                }
            }
        }
    }

    #[test]
    fn segment_timestamps_and_slicing() {
        let seg = RawSegment::from_packets(
            vec![
                TimedPacket {
                    packet: Packet::Ovf,
                    offset: 0,
                    ts: 11,
                },
                TimedPacket {
                    packet: Packet::Ovf,
                    offset: 2,
                    ts: 42,
                },
            ],
            None,
            0,
        );
        assert_eq!(seg.start_ts(), 11);
        assert_eq!(seg.end_ts(), 42);
        let tail = seg.slice(1, 2, None);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail.start_ts(), 42);
        assert!(Arc::ptr_eq(seg.buffer(), tail.buffer()));
    }

    #[test]
    fn garbage_bytes_are_skipped_and_counted() {
        let mut bytes = vec![0xFF, 0xFF, 0x07];
        Packet::Tip {
            compression: IpCompression::Full,
            ip: 0xABCD,
        }
        .encode(&mut bytes);
        let mut scratch = DecodeScratch::new();
        let packets = decode_packets_into(&bytes, &mut scratch);
        assert!(packets
            .iter()
            .any(|p| matches!(p.packet, Packet::Tip { ip, .. } if ip == 0xABCD)));
        assert_eq!(scratch.stats().resync_bytes, 3, "three garbage bytes");
    }
}
