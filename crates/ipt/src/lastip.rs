//! Last-IP compression (Intel SDM: "IP Compression").
//!
//! PT compresses target addresses in IP-bearing packets against the last
//! IP it emitted: if the upper bytes match, only the changed low bytes are
//! transmitted. Encoder and decoder keep a symmetric [`LastIp`] state;
//! PSB and overflow events reset it, forcing the next packet to carry a
//! full IP.

use crate::packet::IpCompression;

/// The last-IP state machine, shared in shape by encoder and decoder.
///
/// # Examples
///
/// ```
/// use jportal_ipt::lastip::LastIp;
/// use jportal_ipt::IpCompression;
///
/// let mut enc = LastIp::new();
/// let mut dec = LastIp::new();
/// let (c1, raw1) = enc.compress(0x7fa4_1901_e9a0);
/// assert_eq!(c1, IpCompression::Full);
/// assert_eq!(dec.decode(c1, raw1), Some(0x7fa4_1901_e9a0));
/// // Same upper 48 bits: only 16 low bits travel.
/// let (c2, raw2) = enc.compress(0x7fa4_1901_ffff);
/// assert_eq!(c2, IpCompression::Update16);
/// assert_eq!(dec.decode(c2, raw2), Some(0x7fa4_1901_ffff));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LastIp {
    last: u64,
    valid: bool,
}

/// Payload mask per compression code (the three high header bits):
/// bits the wire payload contributes; the complement is kept from the
/// last IP. Invalid codes (3, 5, 7) and `Suppressed` map to 0, which the
/// decode path rejects before merging.
const PAYLOAD_MASK: [u64; 8] = [
    0,                // 0: Suppressed — no payload
    0xFFFF,           // 1: Update16
    0xFFFF_FFFF,      // 2: Update32
    0,                // 3: reserved
    0xFFFF_FFFF_FFFF, // 4: Update48
    0,                // 5: reserved
    u64::MAX,         // 6: Full
    0,                // 7: reserved
];

/// Compression mode by `(last ^ ip).leading_zeros() / 16`: 64 equal high
/// bits (identical IPs) down to fewer than 16 — one table index replaces
/// the three-way comparison cascade.
const MODE_BY_LZ16: [IpCompression; 5] = [
    IpCompression::Full,     // lz in 0..16: high 48 bits differ
    IpCompression::Update48, // lz in 16..32
    IpCompression::Update32, // lz in 32..48
    IpCompression::Update16, // lz in 48..64
    IpCompression::Update16, // lz == 64: identical
];

impl LastIp {
    /// Fresh state (next IP will be sent in full).
    pub fn new() -> LastIp {
        LastIp::default()
    }

    /// Resets the state (on PSB or overflow).
    pub fn reset(&mut self) {
        self.valid = false;
    }

    /// Chooses a compression mode for `ip` given the last emitted IP, and
    /// returns the raw payload to put on the wire. Updates the state.
    pub fn compress(&mut self, ip: u64) -> (IpCompression, u64) {
        let mode = if self.valid {
            MODE_BY_LZ16[(self.last ^ ip).leading_zeros() as usize / 16]
        } else {
            IpCompression::Full
        };
        self.last = ip;
        self.valid = true;
        (mode, ip & PAYLOAD_MASK[mode as usize])
    }

    /// Reconstructs the IP from a raw payload and compression mode.
    /// Updates the state. Returns `None` when a partial update arrives
    /// with no last IP to extend (decoder out of sync).
    pub fn decode(&mut self, mode: IpCompression, raw: u64) -> Option<u64> {
        self.decode_code(mode as u8, raw)
    }

    /// [`LastIp::decode`] keyed directly by the 3-bit wire code, so the
    /// stream decoder's dispatch table needs no enum round-trip. The
    /// merge is a mode-indexed mask/merge — `(last & !m) | (raw & m)` —
    /// with no per-mode branch; only the two rejection cases
    /// (suppressed/invalid code, partial update with no context) branch.
    #[inline]
    pub fn decode_code(&mut self, code: u8, raw: u64) -> Option<u64> {
        let mask = PAYLOAD_MASK[(code & 7) as usize];
        if mask == 0 {
            return None; // suppressed or reserved code
        }
        if mask != u64::MAX && !self.valid {
            return None; // partial update with nothing to extend
        }
        let ip = (self.last & !mask) | (raw & mask);
        self.last = ip;
        self.valid = true;
        Some(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_ip_is_full() {
        let mut s = LastIp::new();
        let (mode, raw) = s.compress(0xDEAD_BEEF);
        assert_eq!(mode, IpCompression::Full);
        assert_eq!(raw, 0xDEAD_BEEF);
    }

    #[test]
    fn nearby_ips_compress_to_16() {
        let mut s = LastIp::new();
        s.compress(0x7fa4_1901_e9a0);
        let (mode, raw) = s.compress(0x7fa4_1901_c880);
        assert_eq!(mode, IpCompression::Update16);
        assert_eq!(raw, 0xc880);
    }

    #[test]
    fn distant_ips_use_wider_updates() {
        let mut s = LastIp::new();
        s.compress(0x7fa4_1901_e9a0);
        let (mode, _) = s.compress(0x7fa4_2222_e9a0);
        assert_eq!(mode, IpCompression::Update32);
        let (mode, _) = s.compress(0x7fa9_2222_e9a0);
        assert_eq!(mode, IpCompression::Update48);
        let (mode, _) = s.compress(0x1234_2222_e9a0_0000);
        assert_eq!(mode, IpCompression::Full);
    }

    #[test]
    fn reset_forces_full() {
        let mut s = LastIp::new();
        s.compress(0x1000);
        s.reset();
        let (mode, _) = s.compress(0x1008);
        assert_eq!(mode, IpCompression::Full);
    }

    #[test]
    fn decoder_tracks_encoder_through_sequences() {
        let mut enc = LastIp::new();
        let mut dec = LastIp::new();
        let ips = [
            0x7fa4_1901_e9a0u64,
            0x7fa4_1902_3ba0,
            0x7fa4_1901_ea40,
            0x7fa4_1901_c9c0,
            0x7001_0000_0000,
            0x7001_0000_0040,
        ];
        for &ip in &ips {
            let (mode, raw) = enc.compress(ip);
            assert_eq!(dec.decode(mode, raw), Some(ip));
        }
    }

    #[test]
    fn partial_update_without_context_fails() {
        let mut dec = LastIp::new();
        assert_eq!(dec.decode(IpCompression::Update16, 0xAAAA), None);
        assert_eq!(dec.decode(IpCompression::Suppressed, 0), None);
    }
}
