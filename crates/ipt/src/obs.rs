//! Collection-side telemetry: per-core loss and drain statistics.
//!
//! The online component's loss information used to die inside this
//! crate — each [`crate::ring::RingBuffer`] tracked its drops, the
//! session folded them into sideband records, and nothing aggregate ever
//! reached the report. [`CollectionStats`] lifts it out: one summary per
//! core (exported bytes, lost bytes/packets, overflow spans, effective
//! drain rate) computed from a finished [`CollectedTraces`], ready to be
//! attached to the offline report and recorded into a metric registry.

use crate::session::CollectedTraces;
use jportal_obs::{ArgValue, MetricsRegistry, Obs};

/// Collection summary for one core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreCollection {
    /// The core.
    pub core: u32,
    /// Bytes successfully exported off the core's ring buffer.
    pub exported_bytes: u64,
    /// Bytes dropped in buffer overflows.
    pub lost_bytes: u64,
    /// Whole packets dropped in buffer overflows.
    pub lost_packets: u64,
    /// Number of distinct overflow (loss) spans.
    pub loss_spans: usize,
}

impl CoreCollection {
    /// Fraction of produced bytes that were lost, in `[0, 1]`.
    pub fn loss_fraction(&self) -> f64 {
        let produced = self.exported_bytes + self.lost_bytes;
        if produced == 0 {
            0.0
        } else {
            self.lost_bytes as f64 / produced as f64
        }
    }
}

/// Aggregated collection statistics over all cores of a session — the
/// §6 overflow-regime numbers (the paper measures 22–28% loss at full
/// load) made visible on the report instead of buried in the ipt crate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectionStats {
    /// Per-core summaries, indexed by core id.
    pub per_core: Vec<CoreCollection>,
    /// End-of-run timestamp (cycles); bounds the effective drain rate.
    pub end_ts: u64,
}

impl CollectionStats {
    /// Summarizes a finished session's traces.
    pub fn of(traces: &CollectedTraces) -> CollectionStats {
        CollectionStats {
            per_core: traces
                .per_core
                .iter()
                .enumerate()
                .map(|(i, t)| CoreCollection {
                    core: i as u32,
                    exported_bytes: t.bytes.len() as u64,
                    lost_bytes: t.losses.iter().map(|l| l.lost_bytes).sum(),
                    lost_packets: t.losses.iter().map(|l| l.lost_packets).sum(),
                    loss_spans: t.losses.len(),
                })
                .collect(),
            end_ts: traces.end_ts,
        }
    }

    /// Total bytes exported over all cores.
    pub fn total_exported_bytes(&self) -> u64 {
        self.per_core.iter().map(|c| c.exported_bytes).sum()
    }

    /// Total bytes lost over all cores.
    pub fn total_lost_bytes(&self) -> u64 {
        self.per_core.iter().map(|c| c.lost_bytes).sum()
    }

    /// Total packets lost over all cores.
    pub fn total_lost_packets(&self) -> u64 {
        self.per_core.iter().map(|c| c.lost_packets).sum()
    }

    /// Whole-session loss fraction in `[0, 1]`.
    pub fn loss_fraction(&self) -> f64 {
        let produced = self.total_exported_bytes() + self.total_lost_bytes();
        if produced == 0 {
            0.0
        } else {
            self.total_lost_bytes() as f64 / produced as f64
        }
    }

    /// Records the summary into `registry` under `ipt.*` names: totals
    /// as counters, per-core values and drain rates as gauges.
    pub fn record_into(&self, registry: &MetricsRegistry) {
        registry
            .counter("ipt.lost_bytes")
            .add(self.total_lost_bytes());
        registry
            .counter("ipt.lost_packets")
            .add(self.total_lost_packets());
        registry
            .counter("ipt.exported_bytes")
            .add(self.total_exported_bytes());
        registry
            .counter("ipt.loss_spans")
            .add(self.per_core.iter().map(|c| c.loss_spans as u64).sum());
        for c in &self.per_core {
            let core = c.core;
            registry
                .gauge(&format!("ipt.core{core}.exported_bytes"))
                .set(c.exported_bytes);
            registry
                .gauge(&format!("ipt.core{core}.lost_bytes"))
                .set(c.lost_bytes);
            registry
                .gauge(&format!("ipt.core{core}.lost_packets"))
                .set(c.lost_packets);
            // Effective exporter throughput: bytes drained per kilocycle
            // of session time (the knob JvmConfig tunes, measured).
            if let Some(rate) = (c.exported_bytes * 1000).checked_div(self.end_ts) {
                registry
                    .gauge(&format!("ipt.core{core}.drain_bytes_per_kilocycle"))
                    .set(rate);
            }
        }
    }

    /// Emits one simulated-time span per overflow window (category
    /// `collect`, one lane per core), so the holes the offline pipeline
    /// must recover across are visible next to its wall-time stage spans
    /// in the Chrome trace.
    pub fn emit_overflow_spans(traces: &CollectedTraces, obs: &Obs) {
        for (i, t) in traces.per_core.iter().enumerate() {
            for loss in &t.losses {
                obs.sim_event(
                    "collect",
                    "overflow",
                    i as u32,
                    loss.first_ts,
                    (loss.last_ts - loss.first_ts).max(1),
                    vec![
                        ("core", ArgValue::Int(i as i64)),
                        ("lost_bytes", ArgValue::Int(loss.lost_bytes as i64)),
                        ("lost_packets", ArgValue::Int(loss.lost_packets as i64)),
                        ("stream_offset", ArgValue::Int(loss.stream_offset as i64)),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, HwEvent};
    use crate::session::{CoreId, PtSession};

    fn lossy_traces() -> CollectedTraces {
        let mut s = PtSession::new(
            2,
            EncoderConfig {
                buffer_capacity: 16,
                ..EncoderConfig::default()
            },
        );
        for i in 0..20u64 {
            s.core_mut(CoreId(0)).set_time(i);
            s.core_mut(CoreId(0)).event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x2000 + 0x1000 * i,
            });
        }
        s.finish(100)
    }

    #[test]
    fn stats_aggregate_per_core_losses() {
        let traces = lossy_traces();
        let stats = CollectionStats::of(&traces);
        assert_eq!(stats.per_core.len(), 2);
        assert!(stats.per_core[0].lost_bytes > 0, "core 0 must overflow");
        assert!(stats.per_core[0].lost_packets > 0);
        assert!(stats.per_core[0].loss_spans >= 1);
        assert_eq!(stats.per_core[1].lost_bytes, 0, "core 1 idle");
        assert_eq!(stats.total_lost_bytes(), stats.per_core[0].lost_bytes);
        assert!(stats.loss_fraction() > 0.0 && stats.loss_fraction() < 1.0);
        assert_eq!(stats.end_ts, 100);
    }

    #[test]
    fn stats_match_the_sum_of_loss_records() {
        let traces = lossy_traces();
        let stats = CollectionStats::of(&traces);
        let raw_bytes: u64 = traces.per_core[0].losses.iter().map(|l| l.lost_bytes).sum();
        let raw_packets: u64 = traces.per_core[0]
            .losses
            .iter()
            .map(|l| l.lost_packets)
            .sum();
        assert_eq!(stats.total_lost_bytes(), raw_bytes);
        assert_eq!(stats.total_lost_packets(), raw_packets);
        assert_eq!(
            stats.per_core[0].exported_bytes,
            traces.per_core[0].bytes.len() as u64
        );
    }

    #[test]
    fn record_into_registry_and_spans() {
        let traces = lossy_traces();
        let stats = CollectionStats::of(&traces);
        let obs = Obs::new(true);
        stats.record_into(obs.registry());
        CollectionStats::emit_overflow_spans(&traces, &obs);
        let report = obs.telemetry();
        assert_eq!(
            report.metrics.counter("ipt.lost_bytes"),
            Some(stats.total_lost_bytes())
        );
        assert_eq!(
            report.metrics.gauge("ipt.core0.lost_packets"),
            Some(stats.per_core[0].lost_packets)
        );
        assert!(report
            .metrics
            .gauge("ipt.core0.drain_bytes_per_kilocycle")
            .is_some());
        let overflows = report.spans.iter().filter(|s| s.name == "overflow").count();
        assert_eq!(overflows, stats.per_core[0].loss_spans);
        assert!(report.span_categories().contains("collect"));
    }

    #[test]
    fn clean_session_has_zero_loss() {
        let mut s = PtSession::new(1, EncoderConfig::default());
        s.core_mut(CoreId(0)).event(HwEvent::Indirect {
            at: 0x10,
            target: 0x20,
        });
        let traces = s.finish(10);
        let stats = CollectionStats::of(&traces);
        assert_eq!(stats.total_lost_bytes(), 0);
        assert_eq!(stats.loss_fraction(), 0.0);
        assert!(stats.total_exported_bytes() > 0);
    }
}
