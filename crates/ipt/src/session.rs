//! Multi-core tracing sessions.
//!
//! PT records each physical core separately (§6 "Multi-Cores and
//! Multi-Threads"); a [`PtSession`] owns one encoder per core plus the
//! shared sideband stream, and hands the per-core traces and sideband
//! records to the offline pipeline at the end of a run.

use crate::encoder::{EncoderConfig, PtEncoder, PtTrace};
use crate::sideband::{SidebandRecord, ThreadId};
use jportal_obs::{ContentionCounter, Gauge, TelemetryPlane};
use std::sync::Arc;

/// Identifier of a simulated CPU core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CoreId(pub u32);

impl CoreId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A whole-machine tracing session: one PT encoder per core plus sideband.
///
/// # Examples
///
/// ```
/// use jportal_ipt::{CoreId, EncoderConfig, HwEvent, PtSession, ThreadId};
///
/// let mut session = PtSession::new(2, EncoderConfig::default());
/// session.record_switch_in(CoreId(0), ThreadId(1), 0);
/// session.core_mut(CoreId(0)).set_time(5);
/// session.core_mut(CoreId(0)).event(HwEvent::Indirect { at: 0x10, target: 0x20 });
/// let collected = session.finish(100);
/// assert_eq!(collected.per_core.len(), 2);
/// ```
#[derive(Debug)]
pub struct PtSession {
    cores: Vec<PtEncoder>,
    sideband: Vec<SidebandRecord>,
    /// Exporter rate: bytes drained per call to [`PtSession::drain_all`].
    drain_quantum: usize,
    /// Live telemetry: the plane, pre-registered per-core ring gauges
    /// (so the drain path never formats a metric name), and contention
    /// accounting over the plane-offer latency (`lock.ipt.drain_tick`).
    telemetry: Option<(Arc<TelemetryPlane>, Vec<CoreGauges>, ContentionCounter)>,
}

/// Per-core ring-occupancy gauges, registered once at attach time.
#[derive(Debug)]
struct CoreGauges {
    pending: Gauge,
    written: Gauge,
    lost: Gauge,
}

/// Everything collected by a finished session.
#[derive(Debug, Clone, Default)]
pub struct CollectedTraces {
    /// Per-core exported traces, indexed by core.
    pub per_core: Vec<PtTrace>,
    /// All sideband records (loss + thread switches), time-ordered.
    pub sideband: Vec<SidebandRecord>,
    /// End-of-run timestamp (closes open schedule intervals).
    pub end_ts: u64,
}

impl PtSession {
    /// Creates a session over `n_cores` cores, each with its own encoder
    /// configured from `cfg`.
    pub fn new(n_cores: usize, cfg: EncoderConfig) -> PtSession {
        PtSession {
            cores: (0..n_cores).map(|_| PtEncoder::new(cfg)).collect(),
            sideband: Vec::new(),
            drain_quantum: 512,
            telemetry: None,
        }
    }

    /// Attaches a live telemetry plane: per-core ring occupancy gauges
    /// (`ipt.core<i>.ring_{pending,written,lost}_bytes`) update on every
    /// [`PtSession::drain_core`], which also offers the plane a
    /// sim-time tick. Without a plane the drain path is untouched.
    pub fn set_telemetry(&mut self, plane: Arc<TelemetryPlane>) {
        let reg = plane.obs().registry();
        let gauges = (0..self.cores.len())
            .map(|i| CoreGauges {
                pending: reg.gauge(&format!("ipt.core{i}.ring_pending_bytes")),
                written: reg.gauge(&format!("ipt.core{i}.ring_written_bytes")),
                lost: reg.gauge(&format!("ipt.core{i}.ring_lost_bytes")),
            })
            .collect();
        // The plane's producer mutex lives behind `tick_sim`; from the
        // drain's point of view the whole offer is the critical
        // section, so it is timed as one, not re-locked here.
        let tick_cc = ContentionCounter::register(reg, "lock.ipt.drain_tick");
        self.telemetry = Some((plane, gauges, tick_cc));
    }

    /// Drains up to `n` bytes from one core's ring (the per-core version
    /// of [`PtSession::drain_all`]). With telemetry attached, updates
    /// that core's ring gauges and offers the plane a sim tick stamped
    /// `now` (simulation cycles); the plane throttles acceptance, so
    /// calling this every drain quantum is fine. Returns bytes drained.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn drain_core(&mut self, core: CoreId, n: usize, now: u64) -> usize {
        let drained = self.cores[core.index()].drain(n);
        if let Some((plane, gauges, tick_cc)) = &self.telemetry {
            let s = self.cores[core.index()].ring_sample();
            let g = &gauges[core.index()];
            g.pending.set(s.pending as u64);
            g.written.set(s.total_written);
            g.lost.set(s.total_lost_bytes);
            tick_cc.timed(|| plane.tick_sim(now));
        }
        drained
    }

    /// Sets how many bytes each core's exporter drains per
    /// [`PtSession::drain_all`] call.
    pub fn set_drain_quantum(&mut self, bytes: usize) {
        self.drain_quantum = bytes;
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Mutable access to a core's encoder.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn core_mut(&mut self, core: CoreId) -> &mut PtEncoder {
        &mut self.cores[core.index()]
    }

    /// Records a thread being scheduled onto a core.
    pub fn record_switch_in(&mut self, core: CoreId, thread: ThreadId, ts: u64) {
        self.sideband.push(SidebandRecord::SwitchIn {
            core: core.0,
            thread,
            ts,
        });
    }

    /// Records a thread being descheduled from a core.
    pub fn record_switch_out(&mut self, core: CoreId, thread: ThreadId, ts: u64) {
        self.sideband.push(SidebandRecord::SwitchOut {
            core: core.0,
            thread,
            ts,
        });
    }

    /// Runs every core's exporter for one quantum (the periodic dump of
    /// trace buffers to files, §3).
    pub fn drain_all(&mut self) {
        for enc in &mut self.cores {
            enc.drain(self.drain_quantum);
        }
    }

    /// Finishes the session: flushes all encoders, converts loss records
    /// into sideband records, and returns everything the offline pipeline
    /// needs.
    pub fn finish(self, end_ts: u64) -> CollectedTraces {
        let mut sideband = self.sideband;
        let mut per_core = Vec::with_capacity(self.cores.len());
        for (i, enc) in self.cores.into_iter().enumerate() {
            let trace = enc.finish();
            for &loss in &trace.losses {
                sideband.push(SidebandRecord::AuxLost {
                    core: i as u32,
                    loss,
                });
            }
            per_core.push(trace);
        }
        sideband.sort_by_key(SidebandRecord::ts);
        CollectedTraces {
            per_core,
            sideband,
            end_ts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::HwEvent;
    use crate::sideband::schedule_intervals;

    #[test]
    fn per_core_traces_are_independent() {
        let mut s = PtSession::new(2, EncoderConfig::default());
        s.core_mut(CoreId(0)).event(HwEvent::Indirect {
            at: 0x10,
            target: 0x1000,
        });
        s.core_mut(CoreId(1)).event(HwEvent::Indirect {
            at: 0x10,
            target: 0x2000,
        });
        let c = s.finish(10);
        assert_eq!(c.per_core.len(), 2);
        assert!(!c.per_core[0].bytes.is_empty());
        assert!(!c.per_core[1].bytes.is_empty());
        assert_ne!(c.per_core[0].bytes, c.per_core[1].bytes);
    }

    #[test]
    fn sideband_merges_switches_and_losses_in_time_order() {
        let mut s = PtSession::new(
            1,
            EncoderConfig {
                buffer_capacity: 16,
                ..EncoderConfig::default()
            },
        );
        s.record_switch_in(CoreId(0), ThreadId(7), 1);
        // Overflow the tiny buffer to force a loss record.
        for i in 0..10u64 {
            s.core_mut(CoreId(0)).set_time(10 + i);
            s.core_mut(CoreId(0)).event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x2000 + 0x1000 * i,
            });
        }
        s.record_switch_out(CoreId(0), ThreadId(7), 100);
        let c = s.finish(100);
        assert!(c
            .sideband
            .iter()
            .any(|r| matches!(r, SidebandRecord::AuxLost { .. })));
        let ts: Vec<u64> = c.sideband.iter().map(SidebandRecord::ts).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted);
        let intervals = schedule_intervals(&c.sideband, 0, 100);
        assert_eq!(intervals, vec![(ThreadId(7), 1, 100)]);
    }

    #[test]
    fn drain_all_prevents_loss() {
        let cfg = EncoderConfig {
            buffer_capacity: 64,
            ..EncoderConfig::default()
        };
        let mut s = PtSession::new(1, cfg);
        s.set_drain_quantum(1 << 12);
        for i in 0..100u64 {
            s.core_mut(CoreId(0)).set_time(i);
            s.core_mut(CoreId(0)).event(HwEvent::Indirect {
                at: 0x1000,
                target: 0x2000 + 0x10 * i,
            });
            s.drain_all();
        }
        let c = s.finish(100);
        assert!(c.per_core[0].losses.is_empty());
    }
}
