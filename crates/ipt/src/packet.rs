//! PT packet types and their byte-level codec.
//!
//! Encodings follow the Intel SDM (Vol. 3, ch. 35) formats used by the
//! paper: short/long TNT, TIP/TIP.PGE/TIP.PGD/FUP with last-IP compression
//! codes in the three high header bits, 7-byte TSC, 16-byte PSB, PSBEND,
//! OVF and PAD.

use std::fmt;

/// IP compression mode of an IP-bearing packet (TIP/FUP/PGE/PGD).
///
/// The code occupies the three high bits of the header byte and tells the
/// decoder how many payload bytes follow and how to combine them with the
/// last decoded IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum IpCompression {
    /// IP suppressed; no payload bytes.
    Suppressed = 0,
    /// Low 16 bits updated; 2 payload bytes.
    Update16 = 1,
    /// Low 32 bits updated; 4 payload bytes.
    Update32 = 2,
    /// Low 48 bits updated; 6 payload bytes.
    Update48 = 4,
    /// Full 64-bit IP; 8 payload bytes.
    Full = 6,
}

impl IpCompression {
    /// Number of payload bytes for this mode.
    pub fn payload_len(self) -> usize {
        match self {
            IpCompression::Suppressed => 0,
            IpCompression::Update16 => 2,
            IpCompression::Update32 => 4,
            IpCompression::Update48 => 6,
            IpCompression::Full => 8,
        }
    }

    /// Decodes the mode from the three high header bits.
    pub fn from_code(code: u8) -> Option<IpCompression> {
        match code {
            0 => Some(IpCompression::Suppressed),
            1 => Some(IpCompression::Update16),
            2 => Some(IpCompression::Update32),
            4 => Some(IpCompression::Update48),
            6 => Some(IpCompression::Full),
            _ => None,
        }
    }
}

/// A packed run of taken/not-taken bits — the payload of a TNT packet.
///
/// A TNT/branch-map payload is at most 47 bits (long TNT: six payload
/// bytes minus the stop bit), so the whole thing *is* a `u64`: branch
/// `j` (oldest = 0) of an `n`-bit run lives at bit `n - 1 - j`, exactly
/// the wire layout of the long-TNT payload below its stop bit. Encode
/// and decode are therefore single shift/mask operations instead of
/// per-bit loops, and the packet type as a whole is `Copy` — no heap
/// allocation anywhere on the decode path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TntBits {
    bits: u64,
    len: u8,
}

impl TntBits {
    /// Maximum branches a single TNT packet can carry (long form).
    pub const MAX: usize = 47;

    /// An empty run.
    pub fn new() -> TntBits {
        TntBits::default()
    }

    /// Builds a run from a packed payload: branch `j` of `len` at bit
    /// `len - 1 - j`. Bits above `len` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `len > 47`.
    pub fn from_raw(bits: u64, len: u8) -> TntBits {
        assert!(len as usize <= TntBits::MAX, "TNT over 47 bits");
        TntBits {
            bits: bits & mask(len),
            len,
        }
    }

    /// Builds a run from outcomes in oldest-first order.
    ///
    /// # Panics
    ///
    /// Panics if more than 47 outcomes are given.
    pub fn from_bools(outcomes: &[bool]) -> TntBits {
        let mut t = TntBits::new();
        for &b in outcomes {
            t.push(b);
        }
        t
    }

    /// Appends one branch outcome (the newest).
    ///
    /// # Panics
    ///
    /// Panics if the run is already full (47 bits).
    pub fn push(&mut self, taken: bool) {
        assert!((self.len as usize) < TntBits::MAX, "TNT over 47 bits");
        self.bits = (self.bits << 1) | taken as u64;
        self.len += 1;
    }

    /// Number of branches in the run.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the run holds no branches.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Outcome of branch `i` (oldest first).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len as usize);
        (self.bits >> (self.len as usize - 1 - i)) & 1 != 0
    }

    /// The packed payload (branch `j` at bit `len - 1 - j`).
    pub fn raw(&self) -> u64 {
        self.bits
    }

    /// Iterates outcomes oldest-first.
    pub fn iter(&self) -> TntIter {
        TntIter {
            bits: self.bits,
            remaining: self.len,
        }
    }

    /// Takes the run, leaving an empty one behind.
    pub fn take(&mut self) -> TntBits {
        std::mem::take(self)
    }
}

#[inline]
fn mask(len: u8) -> u64 {
    // len <= 47 everywhere this is used, so the shift never overflows.
    (1u64 << len) - 1
}

impl FromIterator<bool> for TntBits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> TntBits {
        let mut t = TntBits::new();
        for b in iter {
            t.push(b);
        }
        t
    }
}

/// Oldest-first iterator over a [`TntBits`] run.
#[derive(Debug, Clone)]
pub struct TntIter {
    bits: u64,
    remaining: u8,
}

impl Iterator for TntIter {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some((self.bits >> self.remaining) & 1 != 0)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for TntIter {}

impl IntoIterator for TntBits {
    type Item = bool;
    type IntoIter = TntIter;
    fn into_iter(self) -> TntIter {
        self.iter()
    }
}

impl IntoIterator for &TntBits {
    type Item = bool;
    type IntoIter = TntIter;
    fn into_iter(self) -> TntIter {
        self.iter()
    }
}

impl fmt::Display for TntBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

/// Number of bits in a TSC payload (seven wire bytes).
pub const TSC_BITS: u32 = 56;

/// Mask selecting the TSC payload bits: timestamps are carried modulo
/// `2^56`; the encoder masks and the value is documented to wrap.
pub const TSC_MASK: u64 = (1 << TSC_BITS) - 1;

/// A PT trace packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packet {
    /// Padding byte (0x00).
    Pad,
    /// Packet stream boundary: decoder synchronization point.
    Psb,
    /// End of PSB+ header sequence.
    PsbEnd,
    /// Taken/not-taken bits for up to 47 conditional branches
    /// (first branch = oldest bit). Short form holds ≤ 6.
    Tnt {
        /// Branch outcomes, oldest first, packed into a `u64`.
        bits: TntBits,
    },
    /// Target IP of an indirect branch.
    Tip {
        /// Compression mode used on the wire.
        compression: IpCompression,
        /// The (already reconstructed) target IP.
        ip: u64,
    },
    /// Packet generation enabled (tracing resumes) at IP.
    TipPge {
        /// Compression mode used on the wire.
        compression: IpCompression,
        /// Resume IP.
        ip: u64,
    },
    /// Packet generation disabled (tracing pauses) at IP.
    TipPgd {
        /// Compression mode used on the wire.
        compression: IpCompression,
        /// Pause IP.
        ip: u64,
    },
    /// Flow update: source IP of an asynchronous event.
    Fup {
        /// Compression mode used on the wire.
        compression: IpCompression,
        /// Source IP of the event.
        ip: u64,
    },
    /// Time-stamp counter. The wire payload is seven bytes, so only the
    /// low 56 bits ([`TSC_MASK`]) travel: the encoder masks the value
    /// (with a `debug_assert` that nothing was above the mask) and a
    /// decoded timestamp is always `< 2^56`.
    Tsc {
        /// Timestamp value (low 56 bits).
        tsc: u64,
    },
    /// Internal buffer overflow: packets were dropped by the hardware.
    Ovf,
}

impl Packet {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Packet::Pad => 1,
            Packet::Psb => 16,
            Packet::PsbEnd => 2,
            Packet::Tnt { bits } => {
                if bits.len() <= 6 {
                    1
                } else {
                    2 + 6
                }
            }
            Packet::Tip { compression, .. }
            | Packet::TipPge { compression, .. }
            | Packet::TipPgd { compression, .. }
            | Packet::Fup { compression, .. } => 1 + compression.payload_len(),
            Packet::Tsc { .. } => 8,
            Packet::Ovf => 2,
        }
    }

    /// Appends the wire encoding of this packet to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a TNT packet carries zero bits.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let fixed = self.encode_fixed();
        out.extend_from_slice(fixed.as_slice());
    }

    /// Encodes into a fixed stack buffer (every packet is ≤ 16 bytes),
    /// so the encoder's hot path never touches the heap.
    ///
    /// # Panics
    ///
    /// Panics if a TNT packet carries zero bits.
    pub fn encode_fixed(&self) -> PacketBytes {
        let mut out = PacketBytes::new();
        match self {
            Packet::Pad => out.push(0x00),
            Packet::Psb => {
                for _ in 0..8 {
                    out.extend(&[0x02, 0x82]);
                }
            }
            Packet::PsbEnd => out.extend(&[0x02, 0x23]),
            Packet::Ovf => out.extend(&[0x02, 0xF3]),
            Packet::Tnt { bits } => {
                assert!(!bits.is_empty(), "empty TNT");
                let n = bits.len();
                if n <= 6 {
                    // Short TNT: header bit0 = 0, payload shifted up one
                    // (oldest branch highest), stop bit just above — the
                    // packed representation is already the wire layout.
                    out.push(((1u64 << (n + 1)) | (bits.raw() << 1)) as u8);
                } else {
                    // Long TNT: 0x02 0xA3 + 6 payload bytes; the payload
                    // *is* the packed u64 with a stop bit on top.
                    out.extend(&[0x02, 0xA3]);
                    let payload: u64 = (1 << n) | bits.raw();
                    out.extend(&payload.to_le_bytes()[..6]);
                }
            }
            Packet::Tip { compression, ip } => encode_ip_packet(&mut out, 0x0D, *compression, *ip),
            Packet::TipPge { compression, ip } => {
                encode_ip_packet(&mut out, 0x11, *compression, *ip)
            }
            Packet::TipPgd { compression, ip } => {
                encode_ip_packet(&mut out, 0x01, *compression, *ip)
            }
            Packet::Fup { compression, ip } => encode_ip_packet(&mut out, 0x1D, *compression, *ip),
            Packet::Tsc { tsc } => {
                // Only 56 bits travel; higher bits would be silently
                // dropped on the wire, so drop them loudly here instead.
                debug_assert!(
                    *tsc <= TSC_MASK,
                    "TSC {tsc:#x} exceeds the 56-bit wire payload"
                );
                out.push(0x19);
                out.extend(&(tsc & TSC_MASK).to_le_bytes()[..7]);
            }
        }
        out
    }

    /// Convenience: the IP carried by an IP-bearing packet.
    pub fn ip(&self) -> Option<u64> {
        match self {
            Packet::Tip { ip, .. }
            | Packet::TipPge { ip, .. }
            | Packet::TipPgd { ip, .. }
            | Packet::Fup { ip, .. } => Some(*ip),
            _ => None,
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Packet::Pad => write!(f, "PAD"),
            Packet::Psb => write!(f, "PSB"),
            Packet::PsbEnd => write!(f, "PSBEND"),
            Packet::Tnt { bits } => write!(f, "TNT({bits})"),
            Packet::Tip { ip, .. } => write!(f, "TIP({ip:#018x})"),
            Packet::TipPge { ip, .. } => write!(f, "TIP.PGE({ip:#018x})"),
            Packet::TipPgd { ip, .. } => write!(f, "TIP.PGD({ip:#018x})"),
            Packet::Fup { ip, .. } => write!(f, "FUP({ip:#018x})"),
            Packet::Tsc { tsc } => write!(f, "TSC({tsc})"),
            Packet::Ovf => write!(f, "OVF"),
        }
    }
}

/// A fixed-capacity encode buffer: no packet encoding exceeds 16 bytes
/// (PSB), so the encoder never needs a heap allocation per packet.
#[derive(Debug, Clone, Copy, Default)]
pub struct PacketBytes {
    buf: [u8; 16],
    len: u8,
}

impl PacketBytes {
    fn new() -> PacketBytes {
        PacketBytes::default()
    }

    fn push(&mut self, b: u8) {
        self.buf[self.len as usize] = b;
        self.len += 1;
    }

    fn extend(&mut self, bytes: &[u8]) {
        self.buf[self.len as usize..self.len as usize + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len() as u8;
    }

    /// The encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }

    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

fn encode_ip_packet(out: &mut PacketBytes, low5: u8, compression: IpCompression, ip: u64) {
    let header = low5 | ((compression as u8) << 5);
    out.push(header);
    let bytes = ip.to_le_bytes();
    out.extend(&bytes[..compression.payload_len().min(8)]);
}

/// Decodes one packet at `bytes[pos..]`, returning the packet, the payload
/// IP bits still compressed (resolved by the caller's last-IP state for
/// IP-bearing packets), and the bytes consumed.
///
/// Returns `None` on truncated or unrecognized input.
///
/// IP-bearing packets come back with the *raw* payload in `ip`; callers
/// must pass them through [`crate::lastip::LastIp::decode`].
pub fn decode_one(bytes: &[u8], pos: usize) -> Option<(Packet, usize)> {
    let b0 = *bytes.get(pos)?;
    match b0 {
        0x00 => Some((Packet::Pad, 1)),
        0x02 => {
            let b1 = *bytes.get(pos + 1)?;
            match b1 {
                0x82 => {
                    // PSB is 8 × [0x02, 0x82].
                    for i in 0..8 {
                        if bytes.get(pos + 2 * i) != Some(&0x02)
                            || bytes.get(pos + 2 * i + 1) != Some(&0x82)
                        {
                            return None;
                        }
                    }
                    Some((Packet::Psb, 16))
                }
                0x23 => Some((Packet::PsbEnd, 2)),
                0xF3 => Some((Packet::Ovf, 2)),
                0xA3 => {
                    // Long TNT: one u64 load, `leading_zeros` strips the
                    // stop bit, the rest is the payload verbatim.
                    if bytes.len() < pos + 8 {
                        return None;
                    }
                    let mut payload = [0u8; 8];
                    payload[..6].copy_from_slice(&bytes[pos + 2..pos + 8]);
                    let v = u64::from_le_bytes(payload);
                    if v == 0 {
                        return None;
                    }
                    let stop = 63 - v.leading_zeros();
                    Some((
                        Packet::Tnt {
                            bits: TntBits::from_raw(v, stop as u8),
                        },
                        8,
                    ))
                }
                _ => None,
            }
        }
        0x19 => {
            if bytes.len() < pos + 8 {
                return None;
            }
            let mut payload = [0u8; 8];
            payload[..7].copy_from_slice(&bytes[pos + 1..pos + 8]);
            Some((
                Packet::Tsc {
                    tsc: u64::from_le_bytes(payload),
                },
                8,
            ))
        }
        b if b & 1 == 0 => {
            // Short TNT: even header byte that is not PAD/0x02/TSC.
            // Header → payload is a shift and a mask: the stop bit's
            // position gives the length, the bits below it (above the
            // reserved bit 0) are the payload.
            if b == 0 {
                return None;
            }
            let stop = 7 - b.leading_zeros() as usize;
            if stop == 0 {
                return None;
            }
            let n = (stop - 1) as u8;
            Some((
                Packet::Tnt {
                    bits: TntBits::from_raw((b >> 1) as u64, n),
                },
                1,
            ))
        }
        b => {
            // IP-bearing packets: low 5 bits select the type.
            let low5 = b & 0x1F;
            let code = (b >> 5) & 0x7;
            let compression = IpCompression::from_code(code)?;
            let plen = compression.payload_len();
            if bytes.len() < pos + 1 + plen {
                return None;
            }
            let mut raw = [0u8; 8];
            raw[..plen].copy_from_slice(&bytes[pos + 1..pos + 1 + plen]);
            let raw_ip = u64::from_le_bytes(raw);
            let make = |ctor: fn(IpCompression, u64) -> Packet| {
                Some((ctor(compression, raw_ip), 1 + plen))
            };
            match low5 {
                0x0D => make(|c, ip| Packet::Tip { compression: c, ip }),
                0x11 => make(|c, ip| Packet::TipPge { compression: c, ip }),
                0x01 => make(|c, ip| Packet::TipPgd { compression: c, ip }),
                0x1D => make(|c, ip| Packet::Fup { compression: c, ip }),
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(p: &Packet) -> Packet {
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), p.encoded_len(), "encoded_len mismatch for {p}");
        let (q, consumed) = decode_one(&buf, 0).expect("decodes");
        assert_eq!(consumed, buf.len());
        q
    }

    #[test]
    fn pad_psb_ovf_round_trip() {
        assert_eq!(round_trip(&Packet::Pad), Packet::Pad);
        assert_eq!(round_trip(&Packet::Psb), Packet::Psb);
        assert_eq!(round_trip(&Packet::PsbEnd), Packet::PsbEnd);
        assert_eq!(round_trip(&Packet::Ovf), Packet::Ovf);
    }

    #[test]
    fn short_tnt_round_trip() {
        for n in 1..=6usize {
            for pattern in 0..(1u8 << n) {
                let bits: TntBits = (0..n).map(|i| pattern & (1 << i) != 0).collect();
                let p = Packet::Tnt { bits };
                assert_eq!(round_trip(&p), p, "n={n} pattern={pattern:#b}");
            }
        }
    }

    #[test]
    fn long_tnt_round_trip() {
        for n in [7usize, 13, 32, 47] {
            let bits: TntBits = (0..n).map(|i| i % 3 == 0).collect();
            let p = Packet::Tnt { bits };
            assert_eq!(round_trip(&p), p, "n={n}");
        }
    }

    #[test]
    fn paper_example_tnt_single_bit() {
        // Figure 2(d): TNT(0) — one not-taken bit is a single byte.
        let p = Packet::Tnt {
            bits: TntBits::from_bools(&[false]),
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0], 0b0000_0100); // stop at bit 2, payload bit 1 = 0
    }

    #[test]
    fn tnt_bits_accessors() {
        let t = TntBits::from_bools(&[true, false, true, true]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert!(t.get(0));
        assert!(!t.get(1));
        assert_eq!(t.raw(), 0b1011);
        let back: Vec<bool> = t.iter().collect();
        assert_eq!(back, vec![true, false, true, true]);
        assert_eq!(t.to_string(), "1011");
        let mut m = t;
        let taken = m.take();
        assert_eq!(taken, t);
        assert!(m.is_empty());
    }

    #[test]
    fn tsc_round_trip_56_bits() {
        let p = Packet::Tsc {
            tsc: 0x00AB_CDEF_0123_4567,
        };
        assert_eq!(round_trip(&p), p);
    }

    #[test]
    fn tsc_round_trips_at_the_width_boundary() {
        // The widest timestamp the 7-byte payload can carry.
        let p = Packet::Tsc { tsc: TSC_MASK };
        assert_eq!(round_trip(&p), p);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds the 56-bit wire payload")]
    fn tsc_above_the_width_boundary_asserts() {
        // 2^56 would silently lose its high bit on the wire; the encoder
        // refuses (debug builds) instead of truncating quietly.
        let mut buf = Vec::new();
        Packet::Tsc { tsc: TSC_MASK + 1 }.encode(&mut buf);
    }

    #[test]
    fn ip_packets_carry_raw_payload() {
        // Full IPs round-trip exactly even without last-IP context.
        for ctor in [
            |ip| Packet::Tip {
                compression: IpCompression::Full,
                ip,
            },
            |ip| Packet::TipPge {
                compression: IpCompression::Full,
                ip,
            },
            |ip| Packet::TipPgd {
                compression: IpCompression::Full,
                ip,
            },
            |ip| Packet::Fup {
                compression: IpCompression::Full,
                ip,
            },
        ] {
            let p = ctor(0x7fa4_1901_e9a0);
            assert_eq!(round_trip(&p), p);
        }
    }

    #[test]
    fn update16_payload_is_two_bytes() {
        let p = Packet::Tip {
            compression: IpCompression::Update16,
            ip: 0xBEEF,
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), 3);
        let (q, _) = decode_one(&buf, 0).unwrap();
        match q {
            Packet::Tip { compression, ip } => {
                assert_eq!(compression, IpCompression::Update16);
                assert_eq!(ip, 0xBEEF); // raw payload; caller resolves
            }
            other => panic!("expected TIP, got {other:?}"),
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let p = Packet::Tsc { tsc: 42 };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        buf.pop();
        assert!(decode_one(&buf, 0).is_none());
        assert!(decode_one(&[], 0).is_none());
        assert!(decode_one(&[0x02], 0).is_none());
    }

    #[test]
    fn display_forms_match_paper_notation() {
        let tip = Packet::Tip {
            compression: IpCompression::Full,
            ip: 0x7fa41901e9a0,
        };
        assert_eq!(tip.to_string(), "TIP(0x00007fa41901e9a0)");
        let tnt = Packet::Tnt {
            bits: TntBits::from_bools(&[false, true, true, false]),
        };
        assert_eq!(tnt.to_string(), "TNT(0110)");
    }

    #[test]
    fn compression_payload_lengths() {
        assert_eq!(IpCompression::Suppressed.payload_len(), 0);
        assert_eq!(IpCompression::Update16.payload_len(), 2);
        assert_eq!(IpCompression::Update32.payload_len(), 4);
        assert_eq!(IpCompression::Update48.payload_len(), 6);
        assert_eq!(IpCompression::Full.payload_len(), 8);
        assert_eq!(IpCompression::from_code(3), None);
        assert_eq!(IpCompression::from_code(7), None);
    }
}
