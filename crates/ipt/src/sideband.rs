//! Perf-style sideband records.
//!
//! Besides the PT byte stream itself, a `perf_event_open` session delivers
//! sideband records: aux-data loss notifications and context-switch events
//! with timestamps. JPortal uses the loss records to localize missing data
//! (§4) and the switch records to segregate per-core traces into
//! per-thread traces (§6 "Multi-Cores and Multi-Threads").

use std::fmt;

use crate::ring::LossRecord;

/// Identifier of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One sideband record, tagged with the core it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SidebandRecord {
    /// Aux data was lost (`PERF_RECORD_AUX` with the truncated flag).
    AuxLost {
        /// Core whose buffer overflowed.
        core: u32,
        /// The loss span.
        loss: LossRecord,
    },
    /// A thread was scheduled onto a core at a timestamp
    /// (`PERF_RECORD_SWITCH`).
    SwitchIn {
        /// Core the thread runs on.
        core: u32,
        /// The scheduled thread.
        thread: ThreadId,
        /// Schedule-in timestamp.
        ts: u64,
    },
    /// A thread was descheduled from a core at a timestamp.
    SwitchOut {
        /// Core the thread ran on.
        core: u32,
        /// The descheduled thread.
        thread: ThreadId,
        /// Schedule-out timestamp.
        ts: u64,
    },
}

impl SidebandRecord {
    /// The record's timestamp (loss records use their first lost ts).
    pub fn ts(&self) -> u64 {
        match self {
            SidebandRecord::AuxLost { loss, .. } => loss.first_ts,
            SidebandRecord::SwitchIn { ts, .. } | SidebandRecord::SwitchOut { ts, .. } => *ts,
        }
    }

    /// The core the record belongs to.
    pub fn core(&self) -> u32 {
        match self {
            SidebandRecord::AuxLost { core, .. }
            | SidebandRecord::SwitchIn { core, .. }
            | SidebandRecord::SwitchOut { core, .. } => *core,
        }
    }
}

/// Extracts, for one core, the time-ordered intervals during which each
/// thread ran: `(thread, start_ts, end_ts)`. An interval still open at the
/// end of the records is closed at `end_of_time`.
pub fn schedule_intervals(
    records: &[SidebandRecord],
    core: u32,
    end_of_time: u64,
) -> Vec<(ThreadId, u64, u64)> {
    let mut out = Vec::new();
    let mut open: Option<(ThreadId, u64)> = None;
    let mut sorted: Vec<&SidebandRecord> = records.iter().filter(|r| r.core() == core).collect();
    sorted.sort_by_key(|r| r.ts());
    for r in sorted {
        match *r {
            SidebandRecord::SwitchIn { thread, ts, .. } => {
                if let Some((t, start)) = open.take() {
                    out.push((t, start, ts));
                }
                open = Some((thread, ts));
            }
            SidebandRecord::SwitchOut { thread, ts, .. } => {
                if let Some((t, start)) = open.take() {
                    if t == thread {
                        out.push((t, start, ts));
                    } else {
                        // Mismatched out-record: close what was open.
                        out.push((t, start, ts));
                    }
                }
            }
            SidebandRecord::AuxLost { .. } => {}
        }
    }
    if let Some((t, start)) = open {
        out.push((t, start, end_of_time));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw_in(core: u32, t: u32, ts: u64) -> SidebandRecord {
        SidebandRecord::SwitchIn {
            core,
            thread: ThreadId(t),
            ts,
        }
    }

    fn sw_out(core: u32, t: u32, ts: u64) -> SidebandRecord {
        SidebandRecord::SwitchOut {
            core,
            thread: ThreadId(t),
            ts,
        }
    }

    #[test]
    fn intervals_from_alternating_switches() {
        let recs = vec![
            sw_in(0, 1, 10),
            sw_out(0, 1, 20),
            sw_in(0, 2, 20),
            sw_out(0, 2, 35),
            sw_in(0, 1, 35),
        ];
        let iv = schedule_intervals(&recs, 0, 100);
        assert_eq!(
            iv,
            vec![
                (ThreadId(1), 10, 20),
                (ThreadId(2), 20, 35),
                (ThreadId(1), 35, 100),
            ]
        );
    }

    #[test]
    fn intervals_filter_by_core() {
        let recs = vec![sw_in(0, 1, 10), sw_in(1, 2, 12), sw_out(0, 1, 20)];
        let iv0 = schedule_intervals(&recs, 0, 50);
        assert_eq!(iv0, vec![(ThreadId(1), 10, 20)]);
        let iv1 = schedule_intervals(&recs, 1, 50);
        assert_eq!(iv1, vec![(ThreadId(2), 12, 50)]);
    }

    #[test]
    fn implicit_switch_without_out_record() {
        // A switch-in while another thread is running closes the previous
        // interval at the new timestamp.
        let recs = vec![sw_in(0, 1, 5), sw_in(0, 2, 9)];
        let iv = schedule_intervals(&recs, 0, 20);
        assert_eq!(iv, vec![(ThreadId(1), 5, 9), (ThreadId(2), 9, 20)]);
    }

    #[test]
    fn record_accessors() {
        let loss = LossRecord {
            stream_offset: 0,
            first_ts: 7,
            last_ts: 9,
            lost_bytes: 10,
            lost_packets: 2,
        };
        let r = SidebandRecord::AuxLost { core: 3, loss };
        assert_eq!(r.ts(), 7);
        assert_eq!(r.core(), 3);
        assert_eq!(ThreadId(4).to_string(), "t4");
    }
}
