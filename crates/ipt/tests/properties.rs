//! Property-based tests for the PT simulation's core invariants.

use proptest::prelude::*;

use jportal_ipt::lastip::LastIp;
use jportal_ipt::packet::{decode_one, Packet, TntBits};
use jportal_ipt::{decode_packets, EncoderConfig, HwEvent, IpCompression, PtEncoder, RingBuffer};

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        Just(Packet::Pad),
        Just(Packet::Psb),
        Just(Packet::PsbEnd),
        Just(Packet::Ovf),
        prop::collection::vec(any::<bool>(), 1..=47).prop_map(|bits| Packet::Tnt {
            bits: TntBits::from_bools(&bits),
        }),
        any::<u64>().prop_map(|ip| Packet::Tip {
            compression: IpCompression::Full,
            ip,
        }),
        any::<u64>().prop_map(|ip| Packet::Fup {
            compression: IpCompression::Full,
            ip,
        }),
        (0u64..(1 << 56)).prop_map(|tsc| Packet::Tsc { tsc }),
    ]
}

proptest! {
    /// Any packet round-trips through its byte encoding, and the encoded
    /// length matches `encoded_len`.
    #[test]
    fn packet_roundtrip(p in arb_packet()) {
        let mut buf = Vec::new();
        p.encode(&mut buf);
        prop_assert_eq!(buf.len(), p.encoded_len());
        let (q, consumed) = decode_one(&buf, 0).expect("decodes");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(q, p);
    }

    /// Concatenated packet streams parse back to the same packet list
    /// (framing never desyncs).
    #[test]
    fn stream_framing(ps in prop::collection::vec(arb_packet(), 0..40)) {
        let mut bytes = Vec::new();
        for p in &ps {
            p.encode(&mut bytes);
        }
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < bytes.len() {
            let (p, n) = decode_one(&bytes, pos).expect("in-sync");
            pos += n;
            out.push(p);
        }
        prop_assert_eq!(out, ps);
    }

    /// Last-IP compression is lossless for any IP sequence: a decoder
    /// fed the (mode, payload) pairs reconstructs every IP exactly.
    #[test]
    fn lastip_symmetry(ips in prop::collection::vec(any::<u64>(), 1..100)) {
        let mut enc = LastIp::new();
        let mut dec = LastIp::new();
        for &ip in &ips {
            let (mode, raw) = enc.compress(ip);
            prop_assert_eq!(dec.decode(mode, raw), Some(ip));
        }
    }

    /// Ring-buffer conservation: every produced byte is either exported
    /// or recorded as lost; loss records never overlap in stream offset.
    #[test]
    fn ring_conservation(
        capacity in 4usize..64,
        writes in prop::collection::vec((1usize..16, 0usize..8), 0..80),
    ) {
        let mut rb = RingBuffer::new(capacity);
        let mut produced = 0u64;
        for (i, &(len, drain)) in writes.iter().enumerate() {
            let data = vec![i as u8; len];
            rb.write(&data, i as u64);
            produced += len as u64;
            rb.drain(drain);
        }
        rb.flush();
        let lost: u64 = rb.loss_records().iter().map(|l| l.lost_bytes).sum();
        prop_assert_eq!(rb.exported().len() as u64 + lost, produced);
        // Loss records are in nondecreasing stream order.
        let offs: Vec<u64> = rb.loss_records().iter().map(|l| l.stream_offset).collect();
        let mut sorted = offs.clone();
        sorted.sort();
        prop_assert_eq!(offs, sorted);
    }

    /// Whatever events we feed the encoder, the exported stream parses
    /// cleanly and every resolved TIP target is one of the inputs.
    #[test]
    fn encoder_stream_always_parses(
        events in prop::collection::vec(
            prop_oneof![
                any::<bool>().prop_map(|taken| HwEvent::Cond { at: 0x1000, taken }),
                (0x1000u64..0x9000).prop_map(|t| HwEvent::Indirect { at: 0x1000, target: t }),
            ],
            0..200,
        ),
        capacity in 32usize..256,
    ) {
        let mut enc = PtEncoder::new(EncoderConfig {
            buffer_capacity: capacity,
            filter: None,
            tsc_period: 64,
            psb_period: 128,
        });
        let mut targets = std::collections::HashSet::new();
        for (i, &e) in events.iter().enumerate() {
            enc.set_time(i as u64 * 7);
            if let HwEvent::Indirect { target, .. } = e {
                targets.insert(target);
            }
            enc.event(e);
            if i % 3 == 0 {
                enc.drain(8);
            }
        }
        let trace = enc.finish();
        for tp in decode_packets(&trace.bytes) {
            if let Packet::Tip { ip, .. } = tp.packet {
                prop_assert!(targets.contains(&ip), "resolved TIP {ip:#x} was never emitted");
            }
        }
    }
}
