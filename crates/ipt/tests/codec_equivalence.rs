//! Equivalence suite for the table-driven stream decoder.
//!
//! The packed SWAR decode path (`decode_packets_into`, the 256-entry
//! header-byte dispatch table) is pinned against a reference decoder
//! built from the one-packet-at-a-time codec (`decode_one` + explicit
//! last-IP resolution) — the seed's stream-decode structure. The two
//! must produce byte-identical packet sequences, identical resync
//! behavior, and identical segmentation on every input: well-formed
//! encoder output, arbitrary garbage, and adversarial mixtures.

use proptest::prelude::*;

use jportal_ipt::lastip::LastIp;
use jportal_ipt::packet::{decode_one, Packet, TntBits};
use jportal_ipt::ring::LossRecord;
use jportal_ipt::{
    decode_packets, decode_packets_into, segment_stream, DecodeScratch, EncoderConfig, HwEvent,
    IpCompression, PtEncoder, TimedPacket,
};

/// Reference stream decoder: the seed's loop, byte-for-byte — one
/// `decode_one` per packet, explicit last-IP resolution, one-byte
/// resync on anything unrecognized. Returns the packets and the number
/// of resync bytes skipped.
fn reference_decode(bytes: &[u8]) -> (Vec<TimedPacket>, u64) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut last_ip = LastIp::new();
    let mut ts = 0u64;
    let mut resync = 0u64;
    while pos < bytes.len() {
        match decode_one(bytes, pos) {
            Some((packet, consumed)) => {
                let resolved = match packet {
                    Packet::Psb | Packet::Ovf => {
                        last_ip.reset();
                        Some(packet)
                    }
                    Packet::Tsc { tsc } => {
                        ts = tsc;
                        Some(packet)
                    }
                    Packet::Tip { compression, ip } => last_ip
                        .decode(compression, ip)
                        .map(|ip| Packet::Tip { compression, ip }),
                    Packet::TipPge { compression, ip } => last_ip
                        .decode(compression, ip)
                        .map(|ip| Packet::TipPge { compression, ip }),
                    Packet::TipPgd { compression, ip } => last_ip
                        .decode(compression, ip)
                        .map(|ip| Packet::TipPgd { compression, ip }),
                    Packet::Fup { compression, ip } => last_ip
                        .decode(compression, ip)
                        .map(|ip| Packet::Fup { compression, ip }),
                    Packet::Pad => None,
                    other => Some(other),
                };
                if let Some(p) = resolved {
                    out.push(TimedPacket {
                        packet: p,
                        offset: pos as u64,
                        ts,
                    });
                }
                pos += consumed;
            }
            None => {
                pos += 1;
                resync += 1;
            }
        }
    }
    (out, resync)
}

fn assert_equivalent(bytes: &[u8]) {
    let (expected, expected_resync) = reference_decode(bytes);
    let mut scratch = DecodeScratch::new();
    let got = decode_packets_into(bytes, &mut scratch);
    assert_eq!(got, &expected[..], "packet sequences must be identical");
    assert_eq!(
        scratch.stats().resync_bytes,
        expected_resync,
        "resync byte counts must agree"
    );
    assert_eq!(scratch.stats().packets, expected.len() as u64);
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        Just(Packet::Pad),
        Just(Packet::Psb),
        Just(Packet::PsbEnd),
        Just(Packet::Ovf),
        prop::collection::vec(any::<bool>(), 1..=47).prop_map(|bits| Packet::Tnt {
            bits: TntBits::from_bools(&bits),
        }),
        any::<u64>().prop_map(|ip| Packet::Tip {
            compression: IpCompression::Full,
            ip,
        }),
        any::<u64>().prop_map(|ip| Packet::Fup {
            compression: IpCompression::Full,
            ip,
        }),
        (0u64..(1 << 56)).prop_map(|tsc| Packet::Tsc { tsc }),
    ]
}

proptest! {
    /// On concatenated well-formed packets, the table decoder and the
    /// reference produce identical sequences.
    #[test]
    fn equivalent_on_packet_streams(ps in prop::collection::vec(arb_packet(), 0..60)) {
        let mut bytes = Vec::new();
        for p in &ps {
            p.encode(&mut bytes);
        }
        assert_equivalent(&bytes);
    }

    /// On arbitrary garbage, both decoders terminate, never panic, and
    /// agree on every packet and every resynced byte.
    #[test]
    fn equivalent_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        assert_equivalent(&bytes);
    }

    /// On garbage biased toward packet headers (so the stream is a dense
    /// mix of near-valid packets and resyncs), the decoders still agree.
    #[test]
    fn equivalent_on_header_biased_bytes(
        bytes in prop::collection::vec(
            prop_oneof![
                Just(0x02u8), Just(0x19), Just(0x0D), Just(0x2D), Just(0x4D),
                Just(0x8D), Just(0xCD), Just(0x82), Just(0xA3), Just(0xF3),
                Just(0x23), Just(0x00), any::<u8>(),
            ],
            0..256,
        )
    ) {
        assert_equivalent(&bytes);
    }

    /// Real encoder output (with overflow losses, PSB cadence, TSC
    /// cadence and filtering in play) decodes identically.
    #[test]
    fn equivalent_on_encoder_streams(
        events in prop::collection::vec(
            prop_oneof![
                any::<bool>().prop_map(|taken| HwEvent::Cond { at: 0x1000, taken }),
                (0x1000u64..0x9000).prop_map(|t| HwEvent::Indirect { at: 0x1000, target: t }),
                (0x1000u64..0x9000).prop_map(|t| HwEvent::Async { from: 0x1000, to: t }),
            ],
            0..200,
        ),
        capacity in 32usize..256,
    ) {
        let mut enc = PtEncoder::new(EncoderConfig {
            buffer_capacity: capacity,
            filter: None,
            tsc_period: 64,
            psb_period: 128,
        });
        for (i, &e) in events.iter().enumerate() {
            enc.set_time(i as u64 * 7);
            enc.event(e);
            if i % 3 == 0 {
                enc.drain(8);
            }
        }
        let trace = enc.finish();
        assert_equivalent(&trace.bytes);
    }

    /// A scratch reused across decodes of different streams gives the
    /// same packets as a fresh one (capacity reuse never leaks state).
    #[test]
    fn scratch_reuse_is_stateless(
        streams in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..128), 1..6)
    ) {
        let mut reused = DecodeScratch::new();
        for bytes in &streams {
            let got: Vec<TimedPacket> = decode_packets_into(bytes, &mut reused).to_vec();
            let fresh = decode_packets(bytes);
            prop_assert_eq!(got, fresh);
        }
    }

    /// Segmentation over the shared buffer matches a reference split of
    /// the same packet list at the same loss offsets.
    #[test]
    fn segmentation_matches_reference_split(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        cuts in prop::collection::vec(0u64..300, 0..5),
    ) {
        let mut cuts = cuts;
        cuts.sort_unstable();
        let losses: Vec<LossRecord> = cuts
            .iter()
            .map(|&off| LossRecord {
                stream_offset: off,
                first_ts: off,
                last_ts: off + 1,
                lost_bytes: 10,
                lost_packets: 1,
            })
            .collect();
        let (packets, _) = reference_decode(&bytes);

        // Reference split: walk the packets, cutting at each loss.
        let mut expected: Vec<(Vec<TimedPacket>, Option<LossRecord>)> = Vec::new();
        let mut current = Vec::new();
        let mut pending: Option<LossRecord> = None;
        let mut loss_iter = losses.iter().peekable();
        for p in &packets {
            while let Some(&&loss) = loss_iter.peek() {
                if loss.stream_offset <= p.offset {
                    loss_iter.next();
                    expected.push((std::mem::take(&mut current), pending.take()));
                    pending = Some(loss);
                } else {
                    break;
                }
            }
            current.push(*p);
        }
        for &loss in loss_iter {
            expected.push((std::mem::take(&mut current), pending.take()));
            pending = Some(loss);
        }
        expected.push((current, pending));
        expected.retain(|(ps, loss)| !ps.is_empty() || loss.is_some());

        let segments = segment_stream(decode_packets(&bytes), &losses, 7);
        prop_assert_eq!(segments.len(), expected.len());
        for (seg, (ps, loss)) in segments.iter().zip(&expected) {
            prop_assert_eq!(seg.packets(), &ps[..]);
            prop_assert_eq!(&seg.loss_before, loss);
            prop_assert_eq!(seg.core, 7);
        }
    }
}

/// Exhaustive packed-TNT round-trips: every length 1..=47, several bit
/// patterns per length, through both the packet codec (which picks the
/// short encoding for ≤6 bits and long otherwise) and an explicitly
/// constructed encoding of the other width where representable.
#[test]
fn tnt_round_trips_every_length_and_both_encodings() {
    for len in 1..=TntBits::MAX {
        let patterns: [u64; 4] = [
            0,
            (1u64 << len) - 1,
            0xAAAA_AAAA_AAAA_AAAA & ((1u64 << len) - 1),
            0x5A5A_5A5A_5A5A_5A5A & ((1u64 << len) - 1),
        ];
        for &bits in &patterns {
            let tnt = TntBits::from_raw(bits, len as u8);
            let p = Packet::Tnt { bits: tnt };

            // Codec-chosen encoding (short for ≤6, long otherwise).
            let mut buf = Vec::new();
            p.encode(&mut buf);
            let (q, consumed) = decode_one(&buf, 0).expect("round-trip decodes");
            assert_eq!(consumed, buf.len());
            assert_eq!(q, p, "len {len} bits {bits:#x}");

            // The stream decoder agrees.
            let packets = decode_packets(&buf);
            assert_eq!(packets.len(), 1);
            assert_eq!(packets[0].packet, p);

            // Explicit long encoding is valid for every length ≤ 47.
            let payload = (1u64 << len) | bits;
            let mut long = vec![0x02, 0xA3];
            long.extend_from_slice(&payload.to_le_bytes()[..6]);
            let decoded = decode_packets(&long);
            assert_eq!(decoded.len(), 1);
            assert_eq!(decoded[0].packet, p, "long encoding, len {len}");
            assert_equivalent(&long);

            // Explicit short encoding exists only for ≤ 6 bits.
            if len <= 6 {
                let header = ((1u64 << (len + 1)) | (bits << 1)) as u8;
                let short = [header];
                let decoded = decode_packets(&short);
                assert_eq!(decoded.len(), 1);
                assert_eq!(decoded[0].packet, p, "short encoding, len {len}");
                assert_equivalent(&short);
            }
        }
    }
}

/// The boundary structure of truncated packets: every prefix of every
/// packet encoding decodes equivalently (exercises all tail paths of the
/// unaligned-load fast loop).
#[test]
fn truncated_packet_prefixes_are_equivalent() {
    let packets = [
        Packet::Psb,
        Packet::Tsc {
            tsc: 0x00AB_CDEF_0123_4567,
        },
        Packet::Tnt {
            bits: TntBits::from_raw(0x7FFF_FFFF_FFFF, 46),
        },
        Packet::Tip {
            compression: IpCompression::Full,
            ip: 0xDEAD_BEEF_CAFE,
        },
    ];
    for p in &packets {
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        for cut in 0..=bytes.len() {
            assert_equivalent(&bytes[..cut]);
        }
    }
}
