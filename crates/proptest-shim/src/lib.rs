//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements exactly the slice of proptest's API that JPortal's property
//! tests use: the [`Strategy`] trait with `prop_map`, range / tuple /
//! collection / sample / option strategies, `any::<T>()`, the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros, and a deterministic per-test RNG.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its seed and case number;
//!   re-running is deterministic, so the case is reproducible as-is.
//! - **Fixed derivation.** Values are drawn from a SplitMix64 stream
//!   seeded from the test name, so failures do not flake across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name and case index, deterministically.
    pub fn deterministic(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test-data purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Error carried out of a failing property body.
pub type TestCaseError = String;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range strategy");
                let span = (b as i128 - a as i128 + 1) as u64;
                (a as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Length specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// `Vec` of values from `element`, length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.max - self.len.min).max(1) as u64;
            let n = self.len.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::*;

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    /// Strategy produced by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// `None` about a third of the time, otherwise `Some` of the inner
    /// strategy (mirrors proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy produced by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` paths used under `use proptest::prelude::*`.
pub mod prop {
    pub use super::collection;
    pub use super::option;
    pub use super::sample;
}

/// Everything the tests import.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Property-test entry macro: runs each body over `cases` generated
/// inputs with a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $(let $arg = $strat;)+
            for __case in 0..__cfg.cases as u64 {
                let mut __rng =
                    $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)), __case);
                $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), __case, __cfg.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}", format!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($a), stringify!($b), __a, __b, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}\n  left: {:?}\n right: {:?} at {}:{}",
                format!($($fmt)*), __a, __b, file!(), line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = super::TestRng::deterministic("t", 3);
        let mut b = super::TestRng::deterministic("t", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::TestRng::deterministic("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_plumbing_works(xs in prop::collection::vec(any::<u8>(), 1..10), k in 0usize..4) {
            prop_assert!(!xs.is_empty());
            prop_assert!(k < 4);
            let doubled: Vec<u16> = xs.iter().map(|&x| x as u16 * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
        }

        #[test]
        fn oneof_and_select(v in prop_oneof![Just(1u32), Just(2u32), 5u32..8]) {
            prop_assert!(v == 1 || v == 2 || (5..8).contains(&v));
        }
    }
}
