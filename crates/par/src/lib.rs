//! Minimal data-parallel executor for the offline pipeline.
//!
//! A rayon-style fan-out built on `std::thread::scope`: a shared atomic
//! cursor hands out item indices to a fixed set of workers (dynamic load
//! balancing, so one slow item does not idle the other workers), and the
//! results are reassembled in item order, making the output **independent
//! of scheduling**. With `workers <= 1` (or one item) everything runs
//! inline on the caller's stack — the exact legacy sequential path, with
//! no threads spawned and no synchronization.
//!
//! The executor is deliberately tiny: no pools are kept alive between
//! calls, no task graph, no nested-scheduling policy. JPortal's offline
//! phases are long, coarse-grained and embarrassingly parallel (decode a
//! segment, score a candidate), so scoped threads per phase are cheap
//! relative to the work they carry.

use jportal_obs::{ContentionCounter, Gauge, MetricsRegistry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Telemetry handles for one fan-out call site: a queue-depth gauge
/// over the not-yet-claimed items (`par.queue.pending`) and contention
/// accounting over the shared result-collection mutex
/// (`lock.par.collect.*`). The plain [`par_map`] family uses a noop
/// set; the pipeline passes a registered set through the `_metered`
/// variants at its fan-outs.
#[derive(Debug, Clone, Default)]
pub struct ParMetrics {
    pending: Gauge,
    collect: ContentionCounter,
}

impl ParMetrics {
    /// Handles that record nothing.
    pub fn noop() -> ParMetrics {
        ParMetrics::default()
    }

    /// Registers `par.queue.pending` and `lock.par.collect.*` (noop
    /// handles when the registry is disabled).
    pub fn register(reg: &MetricsRegistry) -> ParMetrics {
        ParMetrics {
            pending: reg.gauge("par.queue.pending"),
            collect: ContentionCounter::register(reg, "lock.par.collect"),
        }
    }
}

/// Number of workers the machine can usefully run.
pub fn max_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a parallelism request: `None` means "all cores",
/// `Some(n)` is clamped to at least 1.
pub fn effective_workers(requested: Option<usize>) -> usize {
    match requested {
        None => max_parallelism(),
        Some(n) => n.max(1),
    }
}

/// Applies `f` to every item, fanning out over at most `workers` threads,
/// and returns the results **in item order**.
///
/// `f` receives `(index, &item)`. Output order — and therefore anything
/// the caller folds over the output — is deterministic regardless of the
/// worker count or scheduling. A panic in any worker propagates.
///
/// # Examples
///
/// ```
/// let squares = jportal_par::par_map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// // workers = 1 is the inline sequential path, same result.
/// assert_eq!(jportal_par::par_map(1, &[1u64, 2, 3, 4], |_, &x| x * x), squares);
/// ```
pub fn par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_metered(workers, items, &ParMetrics::noop(), f)
}

/// [`par_map`] with queue-depth and collection-lock telemetry: the
/// `par.queue.pending` gauge tracks how many items remain unclaimed
/// (updated at every claim, so a scrape mid-fan-out sees the live
/// backlog) and the result-collection mutex is accounted through
/// `lock.par.collect.*`. With noop metrics this is exactly [`par_map`].
pub fn par_map_metered<T, R, F>(workers: usize, items: &[T], metrics: &ParMetrics, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    metrics.pending.set(n as u64);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    metrics.pending.set((n - i - 1) as u64);
                    local.push((i, f(i, &items[i])));
                }
                if !local.is_empty() {
                    metrics.collect.lock(&collected).extend(local);
                }
            });
        }
    });
    metrics.pending.set(0);

    // Reassemble in item order.
    let mut tagged = collected.into_inner().unwrap();
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Like [`par_map`] but consumes the items, handing each worker ownership
/// of the elements it claims. Results are returned in item order.
pub fn par_map_owned<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_owned_metered(workers, items, &ParMetrics::noop(), f)
}

/// [`par_map_owned`] with the same telemetry as [`par_map_metered`].
pub fn par_map_owned_metered<T, R, F>(
    workers: usize,
    items: Vec<T>,
    metrics: &ParMetrics,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    metrics.pending.set(n as u64);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    metrics.pending.set((n - i - 1) as u64);
                    let item = slots[i].lock().unwrap().take().expect("item claimed once");
                    local.push((i, f(i, item)));
                }
                if !local.is_empty() {
                    metrics.collect.lock(&collected).extend(local);
                }
            });
        }
    });
    metrics.pending.set(0);
    let mut tagged = collected.into_inner().unwrap();
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Like [`par_map`] over the index range `0..n` without materializing a
/// slice of inputs.
pub fn par_map_range<R, F>(workers: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // A unit slice of length n would do; avoid the allocation with a
    // cursor loop mirroring par_map.
    let workers = workers.min(n).max(1);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                if !local.is_empty() {
                    collected.lock().unwrap().extend(local);
                }
            });
        }
    });
    let mut tagged = collected.into_inner().unwrap();
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_worker_count() {
        let items: Vec<usize> = (0..1000).collect();
        let seq = par_map(1, &items, |i, &x| i * 31 + x);
        for workers in [2, 3, 4, 8, 16] {
            assert_eq!(par_map(workers, &items, |i, &x| i * 31 + x), seq);
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn owned_variant_preserves_order_and_moves() {
        let items: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let seq = par_map_owned(1, items.clone(), |i, s| format!("{i}:{s}"));
        for workers in [2, 4, 8] {
            assert_eq!(
                par_map_owned(workers, items.clone(), |i, s| format!("{i}:{s}")),
                seq
            );
        }
    }

    #[test]
    fn range_variant_matches() {
        let a = par_map_range(4, 257, |i| i * i);
        let b: Vec<usize> = (0..257).map(|i| i * i).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn effective_workers_resolution() {
        assert_eq!(effective_workers(Some(1)), 1);
        assert_eq!(effective_workers(Some(0)), 1);
        assert_eq!(effective_workers(Some(6)), 6);
        assert!(effective_workers(None) >= 1);
    }

    #[test]
    fn metered_fanout_records_queue_and_collect_lock() {
        let reg = MetricsRegistry::new(true);
        let metrics = ParMetrics::register(&reg);
        let items: Vec<usize> = (0..512).collect();
        let out = par_map_metered(4, &items, &metrics, |i, &x| i + x);
        assert_eq!(out, par_map(1, &items, |i, &x| i + x));
        let owned = par_map_owned_metered(4, (0..64u64).collect(), &metrics, |_, x| x * 2);
        assert_eq!(owned, (0..64u64).map(|x| x * 2).collect::<Vec<_>>());
        let snap = reg.snapshot();
        let gauge = snap
            .gauges
            .iter()
            .find(|(name, _)| name == "par.queue.pending")
            .expect("queue gauge registered");
        assert_eq!(gauge.1, 0, "gauge returns to zero after the fan-out");
        let acquires = snap
            .counters
            .iter()
            .find(|(name, _)| name == "lock.par.collect.acquires")
            .expect("collect lock accounted");
        // Each worker with a non-empty local batch takes the lock once
        // per fan-out; two fan-outs at 4 workers bound it to 8.
        assert!(acquires.1 >= 2 && acquires.1 <= 8);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map(4, &items, |_, &x| {
            assert!(x < 10, "boom");
            x
        });
    }
}
