//! Per-method abstract-interpretation summaries.
//!
//! One intra-method fixpoint pass over each method's bytecode computes a
//! [`MethodSummary`]: the operation-kind alphabet of the method, feasible
//! entry/exit op-bigrams, the operand-stack depth interval, and branches
//! whose polarity is statically forced. The pass runs **once, offline**,
//! from the [`Program`] alone; [`crate::interproc::SummaryTable`] then
//! lifts the per-method facts interprocedurally (callee reach, call
//! depth, summary-equality classes) for the §4 matcher, §5 recovery and
//! the trace-feasibility linter to consume.
//!
//! # The abstract domain
//!
//! The operand stack is modeled as a vector of [`AbsVal`] values — the
//! flat lattice `⊥ < {Const(v), Null, NonNull} < Top` per slot, with
//! equal-or-Top join. Locals are **not** tracked (`iload`/`aload` push
//! `Top`), which keeps the pass linear and makes forced-branch facts
//! depend only on literally `iconst`-fed comparisons — exactly the shape
//! the bytecode generators emit for guard branches. A join that
//! disagrees on stack *depth* (impossible in verified bytecode, but the
//! pass must not trust its input) abandons abstraction and falls back to
//! purely syntactic facts, never to wrong ones.

use jportal_bytecode::{Bci, Instruction, MethodId, OpKind, Program};
use jportal_cfg::{BranchDir, Sym, Tier};

// Dense per-op bitsets rely on every kind fitting one machine word.
const _: () = assert!(OpKind::ALL.len() <= 64);

/// A set of [`OpKind`]s as a 64-bit bitset.
///
/// # Examples
///
/// ```
/// use jportal_analysis::OpSet;
/// use jportal_bytecode::OpKind;
///
/// let mut s = OpSet::EMPTY;
/// s.insert(OpKind::Iadd);
/// s.insert(OpKind::Ireturn);
/// assert!(s.contains(OpKind::Iadd));
/// let mut sub = OpSet::EMPTY;
/// sub.insert(OpKind::Iadd);
/// assert!(s.contains_all(sub));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpSet(u64);

impl OpSet {
    /// The empty set.
    pub const EMPTY: OpSet = OpSet(0);

    /// Adds an operation kind.
    pub fn insert(&mut self, op: OpKind) {
        self.0 |= 1u64 << op.index();
    }

    /// `true` if `op` is in the set.
    pub fn contains(self, op: OpKind) -> bool {
        self.0 & (1u64 << op.index()) != 0
    }

    /// `true` if every kind of `other` is also in `self`.
    pub fn contains_all(self, other: OpSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set union.
    pub fn union(self, other: OpSet) -> OpSet {
        OpSet(self.0 | other.0)
    }

    /// Number of kinds in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// `true` if executing one occurrence of `op` can leave the current
/// method's frame as the executing context: calls enter a callee,
/// returns leave, and throwing instructions may unwind to a handler in
/// a caller.
///
/// The complement bounds where a concrete trace window can travel: in a
/// window that starts inside method `m`, every symbol up to and
/// including the first may-exit symbol is an instruction of `m`.
pub fn op_may_exit_method(op: OpKind) -> bool {
    matches!(
        op,
        OpKind::InvokeStatic
            | OpKind::InvokeVirtual
            | OpKind::Ireturn
            | OpKind::Areturn
            | OpKind::Return
            | OpKind::Athrow
            | OpKind::Idiv
            | OpKind::Irem
            | OpKind::GetField
            | OpKind::PutField
            | OpKind::ArrayLoad
            | OpKind::ArrayStore
            | OpKind::ArrayLength
    )
}

/// The control-tier operation kinds an abstract-NFA run from a start
/// state inside one method is guaranteed to consume **at nodes of that
/// method**: the window's control ops after the first symbol, up to and
/// including the first call-structure op or `athrow`.
///
/// The guarantee mirrors exactly what the abstract automaton
/// (Definition 4.3) can do. ε-transitions only pass through non-control
/// nodes, so the run cannot leave the method without *consuming* a call,
/// return, or `athrow` symbol — except through an exception edge out of a
/// non-control throwing node, which is why a candidate in a method with a
/// silent escape (see `SummaryTable::eps_escapes` in
/// [`crate::interproc`]) must never be pruned by this set. For escape-free
/// methods, a candidate whose [`MethodSummary::ops`] does not cover this
/// set is abstractly rejected — pruning it cannot change any match.
pub fn required_window_ops(window: &[Sym]) -> OpSet {
    let mut req = OpSet::EMPTY;
    for (k, s) in window.iter().enumerate() {
        let tier = Tier::of_op(s.op);
        if tier == Tier::Concrete {
            // ε-skipped by the abstraction; constrains nothing.
            continue;
        }
        if k > 0 {
            req.insert(s.op);
        }
        if tier == Tier::CallStructure || s.op == OpKind::Athrow {
            // Consuming this symbol may move the run to another method;
            // everything after it is unconstrained.
            break;
        }
    }
    req
}

/// One abstract operand-stack slot: the flat lattice over what the pass
/// can prove about a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Nothing known.
    Top,
    /// A known integer constant.
    Const(i64),
    /// The null reference.
    Null,
    /// A freshly allocated (definitely non-null) reference.
    NonNull,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::Top
        }
    }
}

/// Summary of one method, computed by abstract interpretation (or the
/// syntactic fallback — see [`MethodSummary::precise`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSummary {
    /// Operation kinds of **every** instruction in the method's code
    /// array (syntactic, not reachability-filtered: matcher candidates
    /// can sit anywhere in the method, including code the entry never
    /// reaches, and the pruning proofs need the full alphabet).
    pub ops: OpSet,
    /// Operation kind of the entry instruction (bci 0).
    pub entry_op: OpKind,
    /// Feasible second ops: kinds of the entry instruction's successors
    /// (the entry side of the method's op-bigrams).
    pub entry_next: OpSet,
    /// Kinds of reachable exit instructions: returns, plus `athrow`
    /// occurrences no handler in the method covers.
    pub exit_ops: OpSet,
    /// Kinds of reachable instructions with a direct successor that is
    /// an exit instruction (the exit side of the method's op-bigrams).
    pub exit_prev: OpSet,
    /// Minimum operand-stack depth at any reachable instruction entry.
    pub stack_min: u32,
    /// Maximum operand-stack depth at any reachable instruction entry.
    pub stack_max: u32,
    /// Reachable conditional branches whose direction is the same on
    /// every path (sorted by bci). A traced occurrence contradicting the
    /// forced direction is infeasible.
    pub forced: Vec<(Bci, BranchDir)>,
    /// `true` when the abstract pass converged; `false` means the
    /// syntactic fallback ran and `stack_min`/`stack_max`/`forced` are
    /// the trivial over-approximations.
    pub precise: bool,
}

impl MethodSummary {
    /// Computes the summary of `method` in `program`.
    pub fn compute(program: &Program, method: MethodId) -> MethodSummary {
        let m = program.method(method);
        if m.code.is_empty() {
            // Verified programs never have empty methods; degrade
            // gracefully anyway rather than trusting the input.
            return MethodSummary {
                ops: OpSet::EMPTY,
                entry_op: OpKind::Nop,
                entry_next: OpSet::EMPTY,
                exit_ops: OpSet::EMPTY,
                exit_prev: OpSet::EMPTY,
                stack_min: 0,
                stack_max: 0,
                forced: Vec::new(),
                precise: false,
            };
        }
        abstract_pass(program, method).unwrap_or_else(|| syntactic_fallback(program, m))
    }

    /// The statically forced direction of the conditional branch at
    /// `bci`, if the pass proved one.
    pub fn forced_dir(&self, bci: Bci) -> Option<BranchDir> {
        self.forced
            .binary_search_by_key(&bci, |&(b, _)| b)
            .ok()
            .map(|i| self.forced[i].1)
    }
}

/// Pops/pushes of `insn` in `method`-context, with call effects sized
/// from the callee's signature. `None` when a virtual site has no
/// targets (the abstract pass then bails).
fn sized_stack_effect(program: &Program, insn: &Instruction) -> Option<(u16, u16)> {
    match insn {
        Instruction::InvokeStatic(callee) => {
            let c = program.method(*callee);
            Some(insn.stack_effect(c.n_args, c.returns_value))
        }
        Instruction::InvokeVirtual { declared_in, slot } => {
            let targets = program.virtual_targets(*declared_in, *slot);
            let c = program.method(*targets.first()?);
            Some(insn.stack_effect(c.n_args, c.returns_value))
        }
        _ => Some(insn.stack_effect(0, false)),
    }
}

/// Normal-flow successors of `bci` (fall-through plus explicit branch
/// targets; exception edges are handled separately by the caller).
fn normal_successors(insn: &Instruction, bci: Bci) -> Vec<Bci> {
    let mut out = insn.branch_targets();
    if !insn.is_terminator() {
        out.push(bci.next());
    }
    out
}

fn transfer(insn: &Instruction, stack: &mut Vec<AbsVal>, effect: (u16, u16)) -> bool {
    let (pops, pushes) = effect;
    if stack.len() < pops as usize {
        return false;
    }
    // Value-precise cases first; everything else pops/pushes Top.
    match insn {
        Instruction::Iconst(v) => stack.push(AbsVal::Const(*v)),
        Instruction::AconstNull => stack.push(AbsVal::Null),
        Instruction::New(_) | Instruction::NewArray => {
            for _ in 0..pops {
                stack.pop();
            }
            stack.push(AbsVal::NonNull);
        }
        Instruction::Dup => {
            let top = *stack.last().expect("depth checked");
            stack.push(top);
        }
        Instruction::Swap => {
            let n = stack.len();
            stack.swap(n - 1, n - 2);
        }
        _ => {
            for _ in 0..pops {
                stack.pop();
            }
            for _ in 0..pushes {
                stack.push(AbsVal::Top);
            }
        }
    }
    true
}

/// The worklist fixpoint. Returns `None` when the pass cannot trust its
/// own result (operand underflow, depth-mismatched join, or an
/// unsizable call) — callers fall back to [`syntactic_fallback`].
fn abstract_pass(program: &Program, method: MethodId) -> Option<MethodSummary> {
    let m = program.method(method);
    let n = m.code.len();
    let mut states: Vec<Option<Vec<AbsVal>>> = vec![None; n];
    states[0] = Some(Vec::new());
    let mut worklist = vec![Bci(0)];
    let mut on_list = vec![false; n];
    on_list[0] = true;

    let join_into = |states: &mut Vec<Option<Vec<AbsVal>>>,
                     worklist: &mut Vec<Bci>,
                     on_list: &mut Vec<bool>,
                     to: Bci,
                     incoming: &[AbsVal]|
     -> Option<()> {
        if to.index() >= n {
            return None;
        }
        let slot = &mut states[to.index()];
        let changed = match slot {
            None => {
                *slot = Some(incoming.to_vec());
                true
            }
            Some(existing) => {
                if existing.len() != incoming.len() {
                    return None;
                }
                let mut any = false;
                for (e, &i) in existing.iter_mut().zip(incoming) {
                    let j = e.join(i);
                    if j != *e {
                        *e = j;
                        any = true;
                    }
                }
                any
            }
        };
        if changed && !on_list[to.index()] {
            on_list[to.index()] = true;
            worklist.push(to);
        }
        Some(())
    };

    while let Some(bci) = worklist.pop() {
        on_list[bci.index()] = false;
        let insn = &m.code[bci.index()];
        let mut stack = states[bci.index()].clone().expect("on worklist ⇒ seeded");
        let effect = sized_stack_effect(program, insn)?;
        if !transfer(insn, &mut stack, effect) {
            return None;
        }
        for succ in normal_successors(insn, bci) {
            join_into(&mut states, &mut worklist, &mut on_list, succ, &stack)?;
        }
        if insn.can_throw() {
            // Exception entry clears the operand stack to the thrown
            // reference alone; the catch-class filter is ignored — a
            // handler the filter would skip just stays conservatively
            // reachable.
            let thrown = [AbsVal::Top];
            for h in m.handlers.iter().filter(|h| h.covers(bci)) {
                join_into(&mut states, &mut worklist, &mut on_list, h.handler, &thrown)?;
            }
        }
    }

    let mut ops = OpSet::EMPTY;
    let mut exit_ops = OpSet::EMPTY;
    let mut exit_prev = OpSet::EMPTY;
    let mut forced = Vec::new();
    let mut stack_min = u32::MAX;
    let mut stack_max = 0u32;
    let is_exit = |bci: Bci, insn: &Instruction| {
        insn.is_return()
            || (matches!(insn, Instruction::Athrow) && !m.handlers.iter().any(|h| h.covers(bci)))
    };
    // The alphabet is syntactic over the whole code array (see
    // `MethodSummary::ops`); everything else below is reachable-only.
    for insn in &m.code {
        ops.insert(insn.op_kind());
    }
    for (i, state) in states.iter().enumerate() {
        let Some(stack) = state else { continue };
        let bci = Bci(i as u32);
        let insn = &m.code[i];
        let op = insn.op_kind();
        stack_min = stack_min.min(stack.len() as u32);
        stack_max = stack_max.max(stack.len() as u32);
        if is_exit(bci, insn) {
            exit_ops.insert(op);
        }
        for succ in normal_successors(insn, bci) {
            if succ.index() < n && is_exit(succ, &m.code[succ.index()]) {
                exit_prev.insert(op);
            }
        }
        if let Some(dir) = forced_direction(insn, stack) {
            forced.push((bci, dir));
        }
    }
    let entry_next = entry_successor_ops(m, &states);
    Some(MethodSummary {
        ops,
        entry_op: m.code[0].op_kind(),
        entry_next,
        exit_ops,
        exit_prev,
        stack_min: if stack_min == u32::MAX { 0 } else { stack_min },
        stack_max,
        forced,
        precise: true,
    })
}

/// The forced polarity of a reachable conditional branch, given its
/// converged entry state. `None` when the operands are not definite.
fn forced_direction(insn: &Instruction, stack: &[AbsVal]) -> Option<BranchDir> {
    match insn {
        Instruction::If(k, _) => match stack.last()? {
            AbsVal::Const(v) => Some(BranchDir::from_taken(k.eval(*v, 0))),
            _ => None,
        },
        Instruction::IfICmp(k, _) => {
            if stack.len() < 2 {
                return None;
            }
            match (&stack[stack.len() - 2], &stack[stack.len() - 1]) {
                (AbsVal::Const(a), AbsVal::Const(b)) => Some(BranchDir::from_taken(k.eval(*a, *b))),
                _ => None,
            }
        }
        Instruction::IfNull(_) => match stack.last()? {
            AbsVal::Null => Some(BranchDir::Taken),
            AbsVal::NonNull => Some(BranchDir::NotTaken),
            _ => None,
        },
        _ => None,
    }
}

fn entry_successor_ops(m: &jportal_bytecode::Method, states: &[Option<Vec<AbsVal>>]) -> OpSet {
    let mut next = OpSet::EMPTY;
    let entry = &m.code[0];
    for succ in normal_successors(entry, Bci(0)) {
        if succ.index() < m.code.len() && states[succ.index()].is_some() {
            next.insert(m.code[succ.index()].op_kind());
        }
    }
    if entry.can_throw() {
        for h in m.handlers.iter().filter(|h| h.covers(Bci(0))) {
            if states[h.handler.index()].is_some() {
                next.insert(m.code[h.handler.index()].op_kind());
            }
        }
    }
    next
}

/// The trivial over-approximation used when the abstract pass bails:
/// every instruction counts as reachable, the stack interval spans all
/// depths the code could possibly produce, and no branch is forced.
fn syntactic_fallback(_program: &Program, m: &jportal_bytecode::Method) -> MethodSummary {
    let mut ops = OpSet::EMPTY;
    let mut exit_ops = OpSet::EMPTY;
    let mut exit_prev = OpSet::EMPTY;
    let is_exit = |bci: Bci, insn: &Instruction| {
        insn.is_return()
            || (matches!(insn, Instruction::Athrow) && !m.handlers.iter().any(|h| h.covers(bci)))
    };
    for (i, insn) in m.code.iter().enumerate() {
        let bci = Bci(i as u32);
        ops.insert(insn.op_kind());
        if is_exit(bci, insn) {
            exit_ops.insert(insn.op_kind());
        }
        for succ in normal_successors(insn, bci) {
            if succ.index() < m.code.len() && is_exit(succ, &m.code[succ.index()]) {
                exit_prev.insert(insn.op_kind());
            }
        }
    }
    let mut entry_next = OpSet::EMPTY;
    for succ in normal_successors(&m.code[0], Bci(0)) {
        if succ.index() < m.code.len() {
            entry_next.insert(m.code[succ.index()].op_kind());
        }
    }
    MethodSummary {
        ops,
        entry_op: m.code[0].op_kind(),
        entry_next,
        exit_ops,
        exit_prev,
        stack_min: 0,
        // Every instruction pushes at most two slots.
        stack_max: (m.code.len() as u32).saturating_mul(2),
        forced: Vec::new(),
        precise: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};

    fn single(program: &Program) -> MethodSummary {
        MethodSummary::compute(program, program.entry())
    }

    #[test]
    fn opset_algebra() {
        let mut a = OpSet::EMPTY;
        assert!(a.is_empty());
        a.insert(OpKind::Iadd);
        a.insert(OpKind::Probe);
        assert_eq!(a.len(), 2);
        assert!(a.contains(OpKind::Probe), "highest discriminant fits");
        let mut b = OpSet::EMPTY;
        b.insert(OpKind::Iadd);
        assert!(a.contains_all(b));
        assert!(!b.contains_all(a));
        assert_eq!(a.union(b), a);
    }

    #[test]
    fn straight_line_summary() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::Iconst(1)); // 0: depth 0
        m.emit(I::Iconst(2)); // 1: depth 1
        m.emit(I::Iadd); // 2: depth 2
        m.emit(I::Pop); // 3: depth 1
        m.emit(I::Return); // 4: depth 0
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let s = single(&p);
        assert!(s.precise);
        assert_eq!(s.entry_op, OpKind::Iconst);
        assert!(s.entry_next.contains(OpKind::Iconst));
        assert_eq!(s.entry_next.len(), 1);
        assert!(s.exit_ops.contains(OpKind::Return));
        assert!(s.exit_prev.contains(OpKind::Pop));
        assert_eq!((s.stack_min, s.stack_max), (0, 2));
        assert_eq!(s.ops.len(), 4);
        assert!(s.forced.is_empty());
    }

    #[test]
    fn forced_branch_from_constant() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let skip = m.label();
        m.emit(I::Iconst(0)); // 0
        m.branch_if(CmpKind::Eq, skip); // 1: always taken (0 == 0)
        m.emit(I::Nop); // 2: unreachable in the concrete world
        m.bind(skip);
        m.emit(I::Return); // 3
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let s = single(&p);
        assert!(s.precise);
        assert_eq!(s.forced_dir(Bci(1)), Some(BranchDir::Taken));
        assert_eq!(s.forced_dir(Bci(0)), None);
        // Both arms still count as reachable (polarity is recorded, the
        // frontier is not pruned), so `nop` stays in the alphabet.
        assert!(s.ops.contains(OpKind::Nop));
    }

    #[test]
    fn data_dependent_branch_is_not_forced() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "cond", 1, false);
        let skip = m.label();
        m.emit(I::Iload(0)); // 0: unknown value
        m.branch_if(CmpKind::Eq, skip); // 1
        m.emit(I::Nop); // 2
        m.bind(skip);
        m.emit(I::Return); // 3
        let cond = m.finish();
        let mut e = pb.method(c, "main", 0, false);
        e.emit(I::Iconst(5));
        e.emit(I::InvokeStatic(cond));
        e.emit(I::Return);
        let main = e.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let s = MethodSummary::compute(&p, cond);
        assert!(s.precise);
        assert!(s.forced.is_empty());
    }

    #[test]
    fn join_widens_conflicting_constants() {
        // Two paths push different constants into the same branch: the
        // joined operand is Top, so the branch must not be forced.
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "cond", 1, false);
        let other = m.label();
        let join = m.label();
        let out = m.label();
        m.emit(I::Iload(0)); // 0
        m.branch_if(CmpKind::Eq, other); // 1
        m.emit(I::Iconst(0)); // 2
        m.jump(join); // 3
        m.bind(other);
        m.emit(I::Iconst(1)); // 4
        m.bind(join);
        m.branch_if(CmpKind::Eq, out); // 5: operand joins to Top
        m.emit(I::Nop); // 6
        m.bind(out);
        m.emit(I::Return); // 7
        let cond = m.finish();
        let mut e = pb.method(c, "main", 0, false);
        e.emit(I::Iconst(5));
        e.emit(I::InvokeStatic(cond));
        e.emit(I::Return);
        let main = e.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let s = MethodSummary::compute(&p, cond);
        assert!(s.precise);
        assert_eq!(s.forced_dir(Bci(5)), None);
    }

    #[test]
    fn handler_entry_is_reachable_with_unit_stack() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let t = pb.add_class("Boom", None, 0);
        let mut m = pb.method(c, "div", 2, false);
        let handler = m.label();
        m.emit(I::Iload(0)); // 0
        m.emit(I::Iload(1)); // 1
        m.emit(I::Idiv); // 2: may throw
        m.emit(I::Pop); // 3
        m.emit(I::Return); // 4
        m.bind(handler);
        m.emit(I::Pop); // 5: pops the thrown ref
        m.emit(I::Return); // 6
        m.add_handler(Bci(2), Bci(3), handler, Some(t));
        let div = m.finish();
        let mut e = pb.method(c, "main", 0, false);
        e.emit(I::Iconst(8));
        e.emit(I::Iconst(2));
        e.emit(I::InvokeStatic(div));
        e.emit(I::Return);
        let main = e.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let s = MethodSummary::compute(&p, div);
        assert!(s.precise);
        // The handler body is reachable via the exception edge even
        // though no normal edge leads there.
        assert!(s.ops.contains(OpKind::Pop));
        assert_eq!((s.stack_min, s.stack_max), (0, 2));
    }

    #[test]
    fn uncaught_athrow_is_an_exit() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "boom", 0, false);
        m.emit(I::New(c)); // 0
        m.emit(I::Athrow); // 1
        let boom = m.finish();
        let p = pb.finish_with_entry(boom).unwrap();
        let s = single(&p);
        assert!(s.exit_ops.contains(OpKind::Athrow));
        assert!(s.exit_prev.contains(OpKind::New));
    }

    #[test]
    fn ifnull_polarity_from_allocation() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let taken = m.label();
        m.emit(I::New(c)); // 0: NonNull
        m.branch_if_null(taken); // 1: never taken
        m.emit(I::Nop); // 2
        m.bind(taken);
        m.emit(I::Return); // 3
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let s = single(&p);
        assert_eq!(s.forced_dir(Bci(1)), Some(BranchDir::NotTaken));
    }

    #[test]
    fn required_window_is_control_only_and_stops_at_call_structure() {
        let w = [
            Sym::plain(OpKind::Iload),
            Sym::branch(OpKind::Ifeq, true),
            Sym::plain(OpKind::Iconst),
            Sym::plain(OpKind::Goto),
            Sym::plain(OpKind::InvokeStatic),
            Sym::plain(OpKind::Ifne), // may run in the callee
        ];
        let req = required_window_ops(&w);
        // Concrete-tier ops are ε-skipped by the abstraction.
        assert!(!req.contains(OpKind::Iload));
        assert!(!req.contains(OpKind::Iconst));
        assert!(req.contains(OpKind::Ifeq));
        assert!(req.contains(OpKind::Goto));
        // The first call-structure op is still consumed in-method...
        assert!(req.contains(OpKind::InvokeStatic));
        // ...but nothing after it is.
        assert!(!req.contains(OpKind::Ifne));
        assert!(required_window_ops(&[]).is_empty());
        // A window *starting* on a call or throw constrains nothing: the
        // very first consumption may already leave the method.
        assert!(required_window_ops(&[
            Sym::plain(OpKind::InvokeVirtual),
            Sym::plain(OpKind::Ifeq),
        ])
        .is_empty());
        assert!(
            required_window_ops(&[Sym::plain(OpKind::Athrow), Sym::plain(OpKind::Ifeq),])
                .is_empty()
        );
        // An athrow mid-window is required, then the scan stops.
        let t = required_window_ops(&[
            Sym::plain(OpKind::Nop),
            Sym::plain(OpKind::Athrow),
            Sym::plain(OpKind::Ifeq),
        ]);
        assert!(t.contains(OpKind::Athrow));
        assert!(!t.contains(OpKind::Ifeq));
    }
}
