//! Interprocedural lifting of per-method summaries.
//!
//! [`SummaryTable`] combines the intra-method facts of
//! [`crate::summary`] with the ICFG's call edges (already RTA-refined
//! when the pipeline devirtualizes) into whole-program queries:
//!
//! * **callee reach** — which methods can (transitively) be on the call
//!   stack below a frame of `m`;
//! * **call depth** — how much deeper than `m`'s own frame the stack
//!   can grow (`None` for recursive call chains);
//! * **summary-equality classes** — methods whose instruction streams
//!   are op-kind-identical are indistinguishable to the opcode-granular
//!   decoder, so every consumer that asks "could the trace be in `m`?"
//!   must accept any member of `m`'s class. Queries here are therefore
//!   phrased over classes, never raw ids, which is what makes the
//!   pruning **empirically lossless**: a pruned candidate can never be
//!   one the opcode-blind matcher might have picked.
//!
//! The table is deterministic (fixed iteration orders, first-seen class
//! numbering) and immutable after [`SummaryTable::build`]; the pipeline
//! builds it once and shares it across workers behind an `Arc`, like
//! the ANFA caches.

use crate::summary::MethodSummary;
use jportal_bytecode::{Bci, MethodId, OpKind, Program};
use jportal_cfg::{BranchDir, EdgeKind, Icfg};
use std::collections::HashMap;

/// A dense bit matrix: one fixed-width bitset row per method.
#[derive(Debug, Clone)]
struct BitRows {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitRows {
    fn new(rows: usize, width: usize) -> BitRows {
        let words_per_row = width.div_ceil(64);
        BitRows {
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    fn set(&mut self, row: usize, bit: usize) {
        self.bits[row * self.words_per_row + bit / 64] |= 1u64 << (bit % 64);
    }

    fn get(&self, row: usize, bit: usize) -> bool {
        self.bits[row * self.words_per_row + bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// `row |= other_row`; returns `true` if `row` changed.
    fn union_row(&mut self, row: usize, other: usize) -> bool {
        if row == other {
            return false;
        }
        let w = self.words_per_row;
        let mut changed = false;
        for k in 0..w {
            let v = self.bits[other * w + k];
            let dst = &mut self.bits[row * w + k];
            let next = *dst | v;
            if next != *dst {
                *dst = next;
                changed = true;
            }
        }
        changed
    }
}

/// Whole-program summary table: per-method summaries plus the
/// interprocedural closure over the ICFG's call edges.
#[derive(Debug, Clone)]
pub struct SummaryTable {
    summaries: Vec<MethodSummary>,
    callees: Vec<Vec<MethodId>>,
    /// Transitive callee reach, non-reflexive, over method ids.
    reach: BitRows,
    /// Summary-equality class per method (first-seen numbering).
    class_of: Vec<u32>,
    /// Per-method class closure: bit `c` set iff some method of class
    /// `c` is in `{m} ∪ reach(m)`.
    class_reach: BitRows,
    /// Members per summary-equality class.
    class_size: Vec<u32>,
    call_depth: Vec<Option<u32>>,
    /// Per-method: `true` when the ICFG has an edge out of the method
    /// from a **non-control** node (an exception edge escaping to a
    /// caller's handler). Such an edge is an ε-transition of the
    /// abstract NFA — a run can leave the method without consuming any
    /// call/return/throw symbol, so op-alphabet pruning is unsound there.
    eps_escape: Vec<bool>,
}

impl SummaryTable {
    /// Builds the table: one abstract-interpretation pass per method,
    /// then the interprocedural fixpoints over `icfg`'s call edges.
    pub fn build(program: &Program, icfg: &Icfg) -> SummaryTable {
        let n = program.method_count();
        let summaries: Vec<MethodSummary> = (0..n)
            .map(|i| MethodSummary::compute(program, MethodId(i as u32)))
            .collect();

        // Direct callees from the (possibly RTA-refined) ICFG.
        let mut callees: Vec<Vec<MethodId>> = vec![Vec::new(); n];
        for node in icfg.nodes() {
            for e in icfg.edges(node) {
                if e.kind == EdgeKind::Call {
                    callees[icfg.method_of(node).index()].push(icfg.method_of(e.to));
                }
            }
        }
        for c in &mut callees {
            c.sort_unstable();
            c.dedup();
        }

        // Transitive (non-reflexive) reach: reach(m) ⊇ {c} ∪ reach(c)
        // for every direct callee c. Plain round-robin fixpoint; the
        // call graphs here are small and shallow.
        let mut reach = BitRows::new(n, n);
        for (m, cs) in callees.iter().enumerate() {
            for c in cs {
                reach.set(m, c.index());
            }
        }
        loop {
            let mut changed = false;
            for (m, cs) in callees.iter().enumerate() {
                for c in cs {
                    if reach.union_row(m, c.index()) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Summary-equality classes: methods with identical op-kind
        // streams are indistinguishable to the opcode-granular decoder.
        let mut class_of = vec![0u32; n];
        let mut interned: HashMap<Vec<OpKind>, u32> = HashMap::new();
        for (i, slot) in class_of.iter_mut().enumerate() {
            let key: Vec<OpKind> = program
                .method(MethodId(i as u32))
                .code
                .iter()
                .map(|insn| insn.op_kind())
                .collect();
            let next = interned.len() as u32;
            *slot = *interned.entry(key).or_insert(next);
        }
        let n_classes = interned.len();
        let mut class_size = vec![0u32; n_classes];
        for &c in &class_of {
            class_size[c as usize] += 1;
        }

        let mut class_reach = BitRows::new(n, n_classes);
        for m in 0..n {
            class_reach.set(m, class_of[m] as usize);
            for (r, &c) in class_of.iter().enumerate() {
                if reach.get(m, r) {
                    class_reach.set(m, c as usize);
                }
            }
        }

        let mut call_depth = vec![DepthMark::Unvisited; n];
        let mut depths = vec![None; n];
        for m in 0..n {
            depth_of(m, &callees, &mut call_depth, &mut depths);
        }

        // Silent ε-escapes: inter-method edges out of non-control nodes
        // (escaping exception edges). Control-node departures always
        // consume a call/return/throw symbol, so they are visible to the
        // window analysis; these are not.
        let mut eps_escape = vec![false; n];
        for node in icfg.nodes() {
            let (m, bci) = icfg.location(node);
            let op = program.method(m).insn(bci).op_kind();
            if jportal_cfg::Tier::of_op(op) != jportal_cfg::Tier::Concrete {
                continue;
            }
            if icfg.edges(node).iter().any(|e| icfg.method_of(e.to) != m) {
                eps_escape[m.index()] = true;
            }
        }

        SummaryTable {
            summaries,
            callees,
            reach,
            class_of,
            class_reach,
            class_size,
            call_depth: depths,
            eps_escape,
        }
    }

    /// The per-method summary of `m`.
    pub fn summary(&self, m: MethodId) -> &MethodSummary {
        &self.summaries[m.index()]
    }

    /// Direct callees of `m` (sorted, deduplicated).
    pub fn callees(&self, m: MethodId) -> &[MethodId] {
        &self.callees[m.index()]
    }

    /// `true` if `a` and `b` are the same method or op-kind-identical
    /// (the opcode-granular decoder cannot tell them apart).
    pub fn compatible(&self, a: MethodId, b: MethodId) -> bool {
        a == b || self.class_of[a.index()] == self.class_of[b.index()]
    }

    /// `true` if a frame of `from` can transitively have a frame of
    /// `to` below it (non-reflexive unless `from` is recursive).
    pub fn reaches(&self, from: MethodId, to: MethodId) -> bool {
        self.reach.get(from.index(), to.index())
    }

    /// Class-level reach: `true` if `{from} ∪ reach(from)` contains a
    /// method op-kind-identical to `to`. This is the query consumers
    /// use — it stays `true` for every method the decoder might have
    /// confused with a genuinely reachable one.
    pub fn class_reaches(&self, from: MethodId, to: MethodId) -> bool {
        self.class_reach
            .get(from.index(), self.class_of[to.index()] as usize)
    }

    /// `true` if no *other* method shares `m`'s op-kind stream — the
    /// opcode-granular decoder cannot have relocated a window of `m`
    /// into a twin, so method-level facts (e.g. forced branch
    /// polarities, which depend on operand values twins may differ in)
    /// are safe to assert against located steps.
    pub fn class_is_singleton(&self, m: MethodId) -> bool {
        self.class_size[self.class_of[m.index()] as usize] == 1
    }

    /// Maximum call-stack growth below a frame of `m`: `Some(0)` for a
    /// leaf, `1 + max(callee depths)` otherwise, `None` when a
    /// recursive cycle makes the depth unbounded.
    pub fn call_depth(&self, m: MethodId) -> Option<u32> {
        self.call_depth[m.index()]
    }

    /// The statically forced direction of the conditional branch at
    /// `(m, bci)`, if the intra-method pass proved one.
    pub fn forced_dir(&self, m: MethodId, bci: Bci) -> Option<BranchDir> {
        self.summaries[m.index()].forced_dir(bci)
    }

    /// `true` when an abstract-NFA run can leave `m` without consuming a
    /// call/return/throw symbol (an escaping exception edge out of a
    /// non-control node). Candidates in such methods must never be
    /// pruned by [`crate::summary::required_window_ops`].
    pub fn eps_escapes(&self, m: MethodId) -> bool {
        self.eps_escape[m.index()]
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum DepthMark {
    Unvisited,
    OnStack,
    Done,
}

fn depth_of(
    m: usize,
    callees: &[Vec<MethodId>],
    marks: &mut Vec<DepthMark>,
    depths: &mut Vec<Option<u32>>,
) -> Option<u32> {
    match marks[m] {
        DepthMark::Done => return depths[m],
        // A back edge: the chain through `m` is unbounded.
        DepthMark::OnStack => return None,
        DepthMark::Unvisited => {}
    }
    marks[m] = DepthMark::OnStack;
    let mut depth = Some(0u32);
    for c in &callees[m] {
        match depth_of(c.index(), callees, marks, depths) {
            None => depth = None,
            Some(d) => {
                if let Some(cur) = depth {
                    depth = Some(cur.max(d + 1));
                }
            }
        }
    }
    marks[m] = DepthMark::Done;
    depths[m] = depth;
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::Instruction as I;

    /// leaf ← mid ← main, plus a `twin` that is op-kind-identical to
    /// `leaf` but never called.
    fn diamond() -> (Program, Icfg, [MethodId; 4]) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut f = pb.method(c, "leaf", 0, true);
        f.emit(I::Iconst(7));
        f.emit(I::Ireturn);
        let leaf = f.finish();
        let mut t = pb.method(c, "twin", 0, true);
        t.emit(I::Iconst(9)); // different operand, same op kinds
        t.emit(I::Ireturn);
        let twin = t.finish();
        let mut g = pb.method(c, "mid", 0, true);
        g.emit(I::InvokeStatic(leaf));
        g.emit(I::Ireturn);
        let mid = g.finish();
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::InvokeStatic(mid));
        m.emit(I::Pop);
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let icfg = Icfg::build(&p);
        (p, icfg, [leaf, twin, mid, main])
    }

    #[test]
    fn reach_is_transitive_and_non_reflexive() {
        let (p, icfg, [leaf, twin, mid, main]) = diamond();
        let t = SummaryTable::build(&p, &icfg);
        assert!(t.reaches(main, mid));
        assert!(t.reaches(main, leaf), "transitive");
        assert!(t.reaches(mid, leaf));
        assert!(!t.reaches(leaf, main));
        assert!(!t.reaches(main, main), "non-reflexive without recursion");
        assert!(!t.reaches(main, twin), "twin is never called");
        assert_eq!(t.callees(main), &[mid]);
    }

    #[test]
    fn class_reach_accepts_op_identical_twins() {
        let (p, icfg, [leaf, twin, _mid, main]) = diamond();
        let t = SummaryTable::build(&p, &icfg);
        assert!(t.compatible(leaf, twin), "same op-kind stream");
        assert!(!t.compatible(leaf, main));
        // `twin` is unreachable from main, but the decoder cannot tell
        // it from `leaf`, so the class query must keep it feasible.
        assert!(t.class_reaches(main, twin));
        assert!(t.class_reaches(main, leaf));
        assert!(t.class_reaches(main, main), "reflexive at class level");
        assert!(!t.class_reaches(leaf, main));
    }

    #[test]
    fn call_depth_counts_chain_height() {
        let (p, icfg, [leaf, twin, mid, main]) = diamond();
        let t = SummaryTable::build(&p, &icfg);
        assert_eq!(t.call_depth(leaf), Some(0));
        assert_eq!(t.call_depth(twin), Some(0));
        assert_eq!(t.call_depth(mid), Some(1));
        assert_eq!(t.call_depth(main), Some(2));
    }

    #[test]
    fn recursion_is_unbounded_depth_and_reflexive_reach() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut r = pb.method(c, "rec", 1, false);
        let out = r.label();
        r.emit(I::Iload(0)); // 0
        r.branch_if(jportal_bytecode::CmpKind::Le, out); // 1
        r.emit(I::Iload(0)); // 2
        r.emit(I::InvokeStatic(r.id())); // 3
        r.bind(out);
        r.emit(I::Return); // 4
        let rec = r.finish();
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::Iconst(3));
        m.emit(I::InvokeStatic(rec));
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        assert_eq!(t.call_depth(rec), None);
        assert_eq!(t.call_depth(main), None, "recursion below propagates");
        assert!(t.reaches(rec, rec), "self-loop makes reach reflexive");
        assert!(t.reaches(main, rec));
    }

    #[test]
    fn eps_escape_flags_uncaught_division_with_caller_handler() {
        // `div` divides without a local handler; `main` wraps the call
        // site in one, so the ICFG routes the division's exception edge
        // out of `div` into `main` — a silent ε-escape for `div`.
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let boom = pb.add_class("Boom", None, 0);
        let mut d = pb.method(c, "div", 2, true);
        d.emit(I::Iload(0)); // 0
        d.emit(I::Iload(1)); // 1
        d.emit(I::Idiv); // 2: may throw, uncaught here
        d.emit(I::Ireturn); // 3
        let div = d.finish();
        let mut m = pb.method(c, "main", 0, false);
        let handler = m.label();
        m.emit(I::Iconst(8)); // 0
        m.emit(I::Iconst(0)); // 1
        m.emit(I::InvokeStatic(div)); // 2
        m.emit(I::Pop); // 3
        m.emit(I::Return); // 4
        m.bind(handler);
        m.emit(I::Pop); // 5
        m.emit(I::Return); // 6
        m.add_handler(Bci(2), Bci(3), handler, Some(boom));
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        assert!(t.eps_escapes(div));
        assert!(!t.eps_escapes(main));
    }

    #[test]
    fn diamond_has_no_eps_escapes() {
        let (p, icfg, [leaf, twin, mid, main]) = diamond();
        let t = SummaryTable::build(&p, &icfg);
        for m in [leaf, twin, mid, main] {
            assert!(!t.eps_escapes(m));
        }
    }

    #[test]
    fn table_is_deterministic() {
        let (p, icfg, _) = diamond();
        let a = SummaryTable::build(&p, &icfg);
        let b = SummaryTable::build(&p, &icfg);
        assert_eq!(a.class_of, b.class_of);
        assert_eq!(a.callees, b.callees);
        assert_eq!(a.call_depth, b.call_depth);
        assert_eq!(a.summaries, b.summaries);
    }
}
