//! Static dataflow layer for JPortal.
//!
//! Everything here is computed **once, offline, before any trace is
//! decoded**, from the program alone — the facts then prune and audit the
//! dynamic reconstruction of §4/§5 of the paper:
//!
//! * [`rta`] — rapid-type-analysis devirtualization. Shrinks the CHA call
//!   edges fed to [`jportal_cfg::Icfg::build_with_targets`], which in turn
//!   shrinks NFA nondeterminism during projection and the recovery search
//!   space.
//! * [`dom`] — per-method dominators, post-dominators and natural-loop
//!   nesting over the basic-block CFGs. Used to rank recovery anchors
//!   (an anchor whose instructions dominate the hole's resume point is a
//!   stronger witness than one that merely shares a suffix).
//! * [`lint`] — the trace-feasibility linter: replays reconstructed
//!   sequences against the ICFG plus a call-stack abstraction and reports
//!   structural violations as diagnostics.
//! * [`summary`] / [`interproc`] — per-method abstract-interpretation
//!   summaries (op alphabets, stack intervals, forced branch polarities)
//!   lifted to a whole-program [`SummaryTable`] (callee reach, call depth,
//!   op-kind equality classes). Consumed by the §4 matcher and §5 recovery
//!   as candidate prefilters and by the linter for interprocedural
//!   stack-balance checking.
//!
//! # Determinism contract
//!
//! All facts are pure functions of the [`Program`]: recomputing them in
//! any order, on any thread, yields identical results (target lists are
//! in class-id order, loops in header order). Consumers running under
//! `parallelism > 1` must compute facts **before** fanning out and share
//! them immutably; the pipeline in `jportal-core` does exactly that, so
//! reports are bit-identical at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod interproc;
pub mod lint;
pub mod rta;
pub mod summary;

pub use dom::{Dominators, LoopNest, NaturalLoop, PostDominators};
pub use interproc::SummaryTable;
pub use lint::{
    lint_steps, lint_steps_journaled, lint_steps_observed, lint_steps_summarized, LintDiagnostic,
    LintKind, LintStep, LintSummary,
};
pub use rta::Rta;
pub use summary::{op_may_exit_method, required_window_ops, MethodSummary, OpSet};

use jportal_bytecode::{Bci, MethodId, Program};
use jportal_cfg::Cfg;

/// All per-method facts for one method.
#[derive(Debug, Clone)]
pub struct MethodFacts {
    /// The basic-block CFG the facts are computed over.
    pub cfg: Cfg,
    /// Dominator tree.
    pub doms: Dominators,
    /// Post-dominator tree.
    pub postdoms: PostDominators,
    /// Natural-loop nesting.
    pub loops: LoopNest,
}

/// Program-wide index of per-method static facts.
///
/// Built once up front; lookups are O(1) per method. See the crate docs
/// for the determinism contract.
#[derive(Debug, Clone)]
pub struct AnalysisIndex {
    per_method: Vec<MethodFacts>,
}

impl AnalysisIndex {
    /// Computes facts for every method of `program`.
    pub fn build(program: &Program) -> AnalysisIndex {
        let per_method = program
            .methods()
            .map(|(_, m)| {
                let cfg = Cfg::build(m);
                let doms = Dominators::compute(&cfg);
                let postdoms = PostDominators::compute(&cfg);
                let loops = LoopNest::compute(&cfg, &doms);
                MethodFacts {
                    cfg,
                    doms,
                    postdoms,
                    loops,
                }
            })
            .collect();
        AnalysisIndex { per_method }
    }

    /// The facts of one method.
    pub fn facts(&self, method: MethodId) -> &MethodFacts {
        &self.per_method[method.index()]
    }

    /// `true` if instruction `a` dominates instruction `b` within
    /// `method`: every path from the method entry to `b` executes `a`
    /// first. Within one basic block this is instruction order.
    pub fn bci_dominates(&self, method: MethodId, a: Bci, b: Bci) -> bool {
        let f = &self.per_method[method.index()];
        let ba = f.cfg.block_of(a);
        let bb = f.cfg.block_of(b);
        if ba == bb {
            a.0 <= b.0
        } else {
            f.doms.dominates(ba, bb)
        }
    }

    /// Loop-nesting depth of the block containing `bci` in `method`.
    pub fn loop_depth(&self, method: MethodId, bci: Bci) -> u32 {
        let f = &self.per_method[method.index()];
        f.loops.depth(f.cfg.block_of(bci))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};

    #[test]
    fn index_covers_every_method_and_bci_dominance_works() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut f = pb.method(c, "leaf", 0, false);
        f.emit(I::Return);
        let leaf = f.finish();
        let mut m = pb.method(c, "main", 0, false);
        let skip = m.label();
        m.emit(I::Iconst(0)); // 0
        m.branch_if(CmpKind::Eq, skip); // 1
        m.emit(I::InvokeStatic(leaf)); // 2
        m.bind(skip);
        m.emit(I::Return); // 3
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();

        let index = AnalysisIndex::build(&p);
        assert_eq!(index.facts(leaf).cfg.block_count(), 1);
        // Entry dominates everything; the conditional arm does not
        // dominate the join.
        assert!(index.bci_dominates(main, Bci(0), Bci(3)));
        assert!(index.bci_dominates(main, Bci(0), Bci(1)), "same block");
        assert!(!index.bci_dominates(main, Bci(1), Bci(0)), "order matters");
        assert!(!index.bci_dominates(main, Bci(2), Bci(3)));
        assert_eq!(index.loop_depth(main, Bci(0)), 0);
    }
}
