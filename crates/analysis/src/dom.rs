//! Dominators, post-dominators and loop nesting per method.
//!
//! Iterative dataflow in the Cooper–Harvey–Kennedy style over the
//! basic-block CFGs of `jportal-cfg`: immediate dominators are computed
//! by intersecting predecessor dominators in reverse post-order until a
//! fixpoint (a handful of passes on reducible bytecode CFGs).
//! Post-dominators run the same engine on the reversed graph with a
//! materialized virtual exit joining every exit block. Natural loops are
//! derived from back edges `u → h` where `h` dominates `u`, with bodies
//! collected by the classic backward walk and per-block nesting depth.

use jportal_cfg::{BlockId, Cfg};

/// Generic iterative immediate-dominator computation.
///
/// `n` nodes, one `root`, successor lists per node. Returns
/// `idom[v]` (`idom[root] == root`); nodes unreachable from the root get
/// `None`.
fn compute_idoms(n: usize, root: usize, succs: &[Vec<usize>]) -> Vec<Option<usize>> {
    // Reverse post-order from the root.
    let mut rpo: Vec<usize> = Vec::with_capacity(n);
    {
        let mut visited = vec![false; n];
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        visited[root] = true;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < succs[v].len() {
                let s = succs[v][*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                rpo.push(v);
                stack.pop();
            }
        }
        rpo.reverse();
    }
    let mut order = vec![usize::MAX; n];
    for (i, &v) in rpo.iter().enumerate() {
        order[v] = i;
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &v in &rpo {
        for &s in &succs[v] {
            if order[s] != usize::MAX {
                preds[s].push(v);
            }
        }
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);
    let intersect = |idom: &[Option<usize>], order: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while order[a] > order[b] {
                a = idom[a].expect("processed node");
            }
            while order[b] > order[a] {
                b = idom[b].expect("processed node");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &v in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[v] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &order, cur, p),
                });
            }
            if new_idom.is_some() && idom[v] != new_idom {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Immediate-dominator tree of one method's CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]`: immediate dominator (entry maps to itself); `None` for
    /// blocks unreachable from the entry.
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Computes dominators over `cfg`'s entry-rooted graph.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.block_count();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, block) in cfg.blocks() {
            for &(s, _) in &block.succs {
                if !succs[id.index()].contains(&s.index()) {
                    succs[id.index()].push(s.index());
                }
            }
        }
        let idom = compute_idoms(n, cfg.entry().index(), &succs);
        Dominators {
            idom: idom.iter().map(|o| o.map(|i| BlockId(i as u32))).collect(),
        }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// `true` if `a` dominates `b` (reflexively). Unreachable blocks are
    /// dominated by nothing and dominate nothing (except themselves).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        let mut cur = b;
        while let Some(d) = self.idom[cur.index()] {
            if d == cur {
                return false; // reached the entry
            }
            if d == a {
                return true;
            }
            cur = d;
        }
        false
    }

    /// `true` if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }
}

/// Immediate post-dominator tree (dominators of the reversed CFG rooted
/// at a virtual exit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostDominators {
    /// `ipdom[b]`: immediate post-dominator; `None` when the virtual exit
    /// is the immediate post-dominator (exit blocks) **or** the block
    /// cannot reach any exit.
    ipdom: Vec<Option<BlockId>>,
    /// Whether each block reaches an exit at all.
    reaches_exit: Vec<bool>,
}

impl PostDominators {
    /// Computes post-dominators over `cfg`.
    pub fn compute(cfg: &Cfg) -> PostDominators {
        let n = cfg.block_count();
        // Virtual exit node: index n on the reversed graph, where
        // succ'(v) = preds(v) and succ'(exit) = the exit blocks.
        let exit = n;
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (id, block) in cfg.blocks() {
            for &p in &block.preds {
                if !succs[id.index()].contains(&p.index()) {
                    succs[id.index()].push(p.index());
                }
            }
            if block.succs.is_empty() {
                succs[exit].push(id.index());
            }
        }
        let idom = compute_idoms(n + 1, exit, &succs);
        PostDominators {
            ipdom: idom[..n]
                .iter()
                .map(|o| match o {
                    Some(i) if *i < n => Some(BlockId(*i as u32)),
                    _ => None,
                })
                .collect(),
            reaches_exit: idom[..n].iter().map(|o| o.is_some()).collect(),
        }
    }

    /// The immediate post-dominator of `b`, when it is a real block.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }

    /// `true` if `a` post-dominates `b` (reflexively): every path from
    /// `b` to an exit passes through `a`.
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        if !self.reaches_exit[b.index()] {
            return false;
        }
        let mut cur = b;
        while let Some(d) = self.ipdom[cur.index()] {
            if d == a {
                return true;
            }
            cur = d;
        }
        false
    }

    /// `true` if `b` can reach an exit block.
    pub fn reaches_exit(&self, b: BlockId) -> bool {
        self.reaches_exit[b.index()]
    }
}

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Sources of back edges into the header.
    pub back_from: Vec<BlockId>,
    /// All blocks in the loop body (including the header), sorted.
    pub body: Vec<BlockId>,
}

/// Loop nesting structure of one method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Loops, one per distinct header, sorted by header id.
    pub loops: Vec<NaturalLoop>,
    /// Per-block nesting depth (0 = not in any loop).
    depth: Vec<u32>,
}

impl LoopNest {
    /// Derives loops from back edges `u → h` with `h` dominating `u`.
    pub fn compute(cfg: &Cfg, doms: &Dominators) -> LoopNest {
        let n = cfg.block_count();
        // Collect back edges grouped by header.
        let mut by_header: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (id, block) in cfg.blocks() {
            for &(s, _) in &block.succs {
                if doms.dominates(s, id) && !by_header[s.index()].contains(&id) {
                    by_header[s.index()].push(id);
                }
            }
        }
        let mut loops = Vec::new();
        let mut depth = vec![0u32; n];
        for h in 0..n {
            if by_header[h].is_empty() {
                continue;
            }
            let header = BlockId(h as u32);
            // Natural-loop body: backward walk from the back-edge sources
            // until the header.
            let mut in_body = vec![false; n];
            in_body[h] = true;
            let mut stack: Vec<BlockId> = by_header[h].clone();
            while let Some(b) = stack.pop() {
                if in_body[b.index()] {
                    continue;
                }
                in_body[b.index()] = true;
                for &p in &cfg.block(b).preds {
                    if !in_body[p.index()] {
                        stack.push(p);
                    }
                }
            }
            let body: Vec<BlockId> = (0..n)
                .filter(|&i| in_body[i])
                .map(|i| BlockId(i as u32))
                .collect();
            for b in &body {
                depth[b.index()] += 1;
            }
            loops.push(NaturalLoop {
                header,
                back_from: by_header[h].clone(),
                body,
            });
        }
        LoopNest { loops, depth }
    }

    /// Nesting depth of a block (0 = outside all loops).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// The innermost loop containing `b`, if any (smallest body wins).
    pub fn innermost(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.body.binary_search(&b).is_ok())
            .min_by_key(|l| l.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{Bci, CmpKind, Instruction as I, Program};

    fn build(f: impl FnOnce(&mut jportal_bytecode::builder::MethodBuilder<'_>)) -> (Program, Cfg) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        f(&mut m);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let cfg = Cfg::build(p.method(id));
        (p, cfg)
    }

    /// Diamond: entry → {then, else} → join.
    fn diamond() -> (Program, Cfg) {
        build(|m| {
            let els = m.label();
            let join = m.label();
            m.emit(I::Iconst(1));
            m.branch_if(CmpKind::Eq, els);
            m.emit(I::Nop);
            m.jump(join);
            m.bind(els);
            m.emit(I::Nop);
            m.bind(join);
            m.emit(I::Return);
        })
    }

    #[test]
    fn diamond_dominance() {
        let (_, cfg) = diamond();
        let doms = Dominators::compute(&cfg);
        let entry = cfg.entry();
        let then_b = cfg.block_of(Bci(2));
        let else_b = cfg.block_of(Bci(4));
        let join = cfg.block_of(Bci(5));
        assert!(doms.dominates(entry, join));
        assert!(!doms.dominates(then_b, join), "join has two predecessors");
        assert!(!doms.dominates(else_b, join));
        assert_eq!(doms.idom(join), Some(entry));
        assert_eq!(doms.idom(entry), None);
    }

    #[test]
    fn diamond_post_dominance() {
        let (_, cfg) = diamond();
        let pdoms = PostDominators::compute(&cfg);
        let entry = cfg.entry();
        let then_b = cfg.block_of(Bci(2));
        let join = cfg.block_of(Bci(5));
        assert!(pdoms.post_dominates(join, entry));
        assert!(pdoms.post_dominates(join, then_b));
        assert!(!pdoms.post_dominates(then_b, entry));
        assert_eq!(pdoms.ipdom(then_b), Some(join));
        assert_eq!(pdoms.ipdom(join), None, "join exits to the virtual exit");
    }

    #[test]
    fn loop_nest_depth_and_body() {
        // for(i=10; i>0; i--) { body }
        let (_, cfg) = build(|m| {
            let head = m.label();
            let exit = m.label();
            m.emit(I::Iconst(10));
            m.emit(I::Istore(0));
            m.bind(head);
            m.emit(I::Iload(0));
            m.branch_if(CmpKind::Le, exit);
            m.emit(I::Iinc(0, -1));
            m.jump(head);
            m.bind(exit);
            m.emit(I::Return);
        });
        let doms = Dominators::compute(&cfg);
        let loops = LoopNest::compute(&cfg, &doms);
        assert_eq!(loops.loops.len(), 1);
        let l = &loops.loops[0];
        assert_eq!(l.header, cfg.block_of(Bci(2)));
        let body_blk = cfg.block_of(Bci(4));
        assert!(l.body.contains(&body_blk));
        assert_eq!(loops.depth(body_blk), 1);
        assert_eq!(loops.depth(cfg.block_of(Bci(6))), 0, "exit block");
        assert!(loops.innermost(body_blk).is_some());
        assert!(loops.innermost(cfg.block_of(Bci(6))).is_none());
    }

    #[test]
    fn nested_loops_have_depth_two() {
        let (_, cfg) = build(|m| {
            let outer = m.label();
            let inner = m.label();
            let inner_exit = m.label();
            let exit = m.label();
            m.emit(I::Iconst(3));
            m.emit(I::Istore(0));
            m.bind(outer);
            m.emit(I::Iconst(3));
            m.emit(I::Istore(1));
            m.bind(inner);
            m.emit(I::Iload(1));
            m.branch_if(CmpKind::Le, inner_exit);
            m.emit(I::Iinc(1, -1));
            m.jump(inner);
            m.bind(inner_exit);
            m.emit(I::Iload(0));
            m.branch_if(CmpKind::Le, exit);
            m.emit(I::Iinc(0, -1));
            m.jump(outer);
            m.bind(exit);
            m.emit(I::Return);
        });
        let doms = Dominators::compute(&cfg);
        let loops = LoopNest::compute(&cfg, &doms);
        assert_eq!(loops.loops.len(), 2);
        // The inner loop's increment block is nested twice.
        let inner_inc = cfg.block_of(Bci(6));
        assert_eq!(loops.depth(inner_inc), 2);
        let inner = loops.innermost(inner_inc).unwrap();
        assert_eq!(inner.header, cfg.block_of(Bci(4)));
    }

    #[test]
    fn straight_line_trivial_facts() {
        let (_, cfg) = build(|m| {
            m.emit(I::Iconst(1));
            m.emit(I::Pop);
            m.emit(I::Return);
        });
        let doms = Dominators::compute(&cfg);
        let pdoms = PostDominators::compute(&cfg);
        let loops = LoopNest::compute(&cfg, &doms);
        let e = cfg.entry();
        assert!(doms.dominates(e, e));
        assert!(doms.is_reachable(e));
        assert!(pdoms.reaches_exit(e));
        assert!(loops.loops.is_empty());
    }
}
