//! Trace-feasibility linter.
//!
//! Replays a reconstructed (or recovered) bytecode sequence against the
//! ICFG and a call-stack abstraction, reporting every way the sequence
//! could not have been produced by a real execution:
//!
//! * [`LintKind::OpMismatch`] — a located step's recorded operation kind
//!   disagrees with the instruction at its `(method, bci)`;
//! * [`LintKind::MissingEdge`] — two consecutively located steps have no
//!   ICFG edge between them;
//! * [`LintKind::BranchContradiction`] — an edge exists, but none whose
//!   kind is compatible with the branch direction recorded at the source
//!   (e.g. the trace says *not taken* yet lands on the taken target);
//! * [`LintKind::UnmatchedReturn`] — a return is taken from a method
//!   while the innermost pending call went to a *different* method (a
//!   skipped or interleaved return);
//! * [`LintKind::StackImbalance`] — summaries mode only: a return is
//!   taken from a method that is not on, reachable from, or op-kind
//!   confusable with anything on the fully observed pending-call stack —
//!   an interprocedurally impossible unwind;
//! * [`LintKind::InfeasibleSummary`] — summaries mode only: a located
//!   branch records a direction the method's abstract interpretation
//!   proved impossible (`iconst 0; ifeq` observed as *not taken*).
//!
//! The linter is deliberately *seam-aware*: reconstruction restarts after
//! unmatched events, and recovery splices independently-searched fills
//! between segments. Consecutive steps across such a seam carry no
//! adjacency guarantee, so the producer marks them with
//! [`LintStep::boundary`] and the linter resets its edge and call-stack
//! state there instead of reporting false violations. Within one matched
//! run, adjacency **is** guaranteed by NFA construction, so any violation
//! reported here indicates a genuine reconstruction defect (or a corrupted
//! input trace).
//!
//! Seams come in two flavors, distinguished by [`LintStep::lossy`]: a
//! **projection restart** separates two matched runs of the *same*
//! uninterrupted event stream (nothing is missing — only the located
//! positions are discontinuous), while a **lossy** seam (segment start
//! after a hardware overflow, recovery splice) genuinely hides events.
//! Legacy mode resets the call stack at every seam, which silently
//! swallows imbalances spanning a restart; summaries mode instead
//! carries the stack across seams with per-frame trust marks. Across a
//! lossy seam it pops frames the summary table proves cannot enclose
//! the resume point and marks the survivors *tainted* (missed events
//! make them unreliable: they pop silently). Across any
//! located-continuity loss — a restart or an unplaced event — surviving
//! frames are marked *relocated*: later runs may be placed at any
//! window-matching position, so identity checks degrade to op-kind
//! feasibility (the recorded return op must be a feasible exit kind of
//! the pending class — relocation can blur which method a run sits in,
//! never which op kinds the hardware recorded). Only frames whose
//! entire observed lifetime is seam-free get the strict
//! interprocedural check.
//!
//! The call-stack abstraction is context-sensitive where the ICFG is not:
//! a `Call` edge pushes a frame recording the callee and the caller's
//! continuation, a `Return` edge must pop a frame whose *callee* is the
//! returning method, and an `Exception` edge into a different method
//! unwinds intervening frames. An empty stack matches anything (the
//! prefix before the first observed call is unknown).
//!
//! The return check deliberately compares *methods*, not continuation
//! nodes: when op-identical methods are reachable from several call
//! sites, the projector's choice among them is arbitrary, so a return
//! landing on a sibling site's continuation is a relocation artifact,
//! not an infeasibility. A return taken from a method that is not the
//! innermost pending callee, however, has no feasible interpretation.

use crate::interproc::SummaryTable;
use jportal_bytecode::{Bci, MethodId, OpKind, Program};
use jportal_cfg::{BranchDir, EdgeKind, Icfg, NodeId};
use std::fmt;

/// One event of the sequence under lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintStep {
    /// ICFG node the event was located at (`None` if reconstruction left
    /// it unplaced).
    pub node: Option<NodeId>,
    /// Operation kind recorded for the event.
    pub op: OpKind,
    /// Branch direction recorded for the event (constrains the outgoing
    /// edge towards the next step).
    pub dir: BranchDir,
    /// `true` when no ICFG edge is guaranteed from the previous step:
    /// segment starts, projection restarts and recovery splice seams.
    pub boundary: bool,
    /// Meaningful only when `boundary` is set: `true` when events may be
    /// missing before this step (segment start after a hardware
    /// overflow, recovery splice), `false` for a pure matching
    /// discontinuity (projection restart — every event is present).
    pub lossy: bool,
}

impl LintStep {
    /// A located step with unknown branch direction and no seam.
    pub fn at(node: NodeId, op: OpKind) -> LintStep {
        LintStep {
            node: Some(node),
            op,
            dir: BranchDir::Unknown,
            boundary: false,
            lossy: false,
        }
    }

    /// Marks this step as following a lossy seam (events may be missing
    /// before it).
    pub fn seam(mut self) -> LintStep {
        self.boundary = true;
        self.lossy = true;
        self
    }

    /// Marks this step as following a projection restart: no ICFG edge
    /// from the previous step, but no event is missing either.
    pub fn restart(mut self) -> LintStep {
        self.boundary = true;
        self.lossy = false;
        self
    }

    /// Sets the recorded branch direction.
    pub fn with_dir(mut self, dir: BranchDir) -> LintStep {
        self.dir = dir;
        self
    }
}

/// The class of feasibility violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// Recorded op kind ≠ instruction at the located `(method, bci)`.
    OpMismatch,
    /// No ICFG edge between consecutive located steps.
    MissingEdge,
    /// Edges exist but none compatible with the recorded direction.
    BranchContradiction,
    /// Return taken from a method other than the innermost pending
    /// call's callee.
    UnmatchedReturn,
    /// Return taken from a method that is interprocedurally impossible
    /// given the fully observed pending-call stack: not a pending
    /// callee, not transitively reachable from one, and not op-kind
    /// confusable with either (summaries mode only).
    StackImbalance,
    /// A located branch recorded a direction the method summary proved
    /// statically impossible (summaries mode only).
    InfeasibleSummary,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintKind::OpMismatch => "op-mismatch",
            LintKind::MissingEdge => "missing-edge",
            LintKind::BranchContradiction => "branch-contradiction",
            LintKind::UnmatchedReturn => "unmatched-return",
            LintKind::StackImbalance => "stack-imbalance",
            LintKind::InfeasibleSummary => "infeasible-summary",
        })
    }
}

/// One feasibility violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// Violation class.
    pub kind: LintKind,
    /// Index of the offending step in the linted sequence.
    pub index: usize,
    /// Location of the preceding located step, when the violation is
    /// about the transition into this step.
    pub from: Option<(MethodId, Bci)>,
    /// Location of the offending step.
    pub at: (MethodId, Bci),
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] step {}: {}", self.kind, self.index, self.detail)
    }
}

/// Aggregated diagnostic counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintSummary {
    /// Count of [`LintKind::OpMismatch`].
    pub op_mismatch: usize,
    /// Count of [`LintKind::MissingEdge`].
    pub missing_edge: usize,
    /// Count of [`LintKind::BranchContradiction`].
    pub branch_contradiction: usize,
    /// Count of [`LintKind::UnmatchedReturn`].
    pub unmatched_return: usize,
    /// Count of [`LintKind::StackImbalance`].
    pub stack_imbalance: usize,
    /// Count of [`LintKind::InfeasibleSummary`].
    pub infeasible_summary: usize,
}

impl LintSummary {
    /// Tallies a diagnostic list.
    pub fn of(diagnostics: &[LintDiagnostic]) -> LintSummary {
        let mut s = LintSummary::default();
        for d in diagnostics {
            match d.kind {
                LintKind::OpMismatch => s.op_mismatch += 1,
                LintKind::MissingEdge => s.missing_edge += 1,
                LintKind::BranchContradiction => s.branch_contradiction += 1,
                LintKind::UnmatchedReturn => s.unmatched_return += 1,
                LintKind::StackImbalance => s.stack_imbalance += 1,
                LintKind::InfeasibleSummary => s.infeasible_summary += 1,
            }
        }
        s
    }

    /// Folds another summary into this one (commutative, associative).
    pub fn merge(&mut self, other: &LintSummary) {
        self.op_mismatch += other.op_mismatch;
        self.missing_edge += other.missing_edge;
        self.branch_contradiction += other.branch_contradiction;
        self.unmatched_return += other.unmatched_return;
        self.stack_imbalance += other.stack_imbalance;
        self.infeasible_summary += other.infeasible_summary;
    }

    /// Total diagnostics across all kinds.
    pub fn total(&self) -> usize {
        self.op_mismatch
            + self.missing_edge
            + self.branch_contradiction
            + self.unmatched_return
            + self.stack_imbalance
            + self.infeasible_summary
    }

    /// `true` when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl fmt::Display for LintSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} diagnostics (op-mismatch {}, missing-edge {}, branch-contradiction {}, \
             unmatched-return {}, stack-imbalance {}, infeasible-summary {})",
            self.total(),
            self.op_mismatch,
            self.missing_edge,
            self.branch_contradiction,
            self.unmatched_return,
            self.stack_imbalance,
            self.infeasible_summary
        )
    }
}

/// One pending call on the abstract stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    /// Method the call entered.
    callee: MethodId,
    /// Caller's continuation node (used to locate the caller's frame
    /// during exception unwinding).
    cont: NodeId,
    /// Summaries mode: `true` when the frame was carried across a lossy
    /// seam, so the events that would confirm it may be missing.
    tainted: bool,
    /// Summaries mode: `true` when located-continuity was lost since the
    /// frame was pushed (a projection restart or an unplaced event).
    /// Later runs may be *relocated* — placed at any window-matching
    /// position — so the frame's method identity is only trustworthy up
    /// to "some method whose code contains the matched window", and
    /// identity-based checks degrade to op-kind feasibility checks.
    relocated: bool,
}

/// [`lint_steps_summarized`] wrapped in telemetry: a `lint` span
/// covering the replay plus step/diagnostic counters on the handle's
/// registry. Identical diagnostics to the plain call; inert when `obs`
/// is disabled.
pub fn lint_steps_observed(
    program: &Program,
    icfg: &Icfg,
    steps: &[LintStep],
    summaries: Option<&SummaryTable>,
    obs: &jportal_obs::Obs,
) -> Vec<LintDiagnostic> {
    let _span = obs
        .span("lint", "lint_steps")
        .arg("steps", steps.len())
        .record_sketch(&obs.registry().sketch("analysis.lint.wall_us"));
    let diagnostics = lint_steps_summarized(program, icfg, steps, summaries);
    obs.registry()
        .counter("analysis.lint.steps")
        .add(steps.len() as u64);
    obs.registry()
        .counter("analysis.lint.diagnostics")
        .add(diagnostics.len() as u64);
    diagnostics
}

/// [`lint_steps_observed`] plus flight-recorder emission: every
/// diagnostic also lands in the decision journal as a
/// [`jportal_obs::JournalEvent::LintBreak`] through `recorder` (inert
/// when the journal is off). Identical diagnostics either way.
pub fn lint_steps_journaled(
    program: &Program,
    icfg: &Icfg,
    steps: &[LintStep],
    summaries: Option<&SummaryTable>,
    obs: &jportal_obs::Obs,
    recorder: &mut jportal_obs::JournalRecorder<'_>,
) -> Vec<LintDiagnostic> {
    let diagnostics = lint_steps_observed(program, icfg, steps, summaries, obs);
    if recorder.is_enabled() {
        for d in &diagnostics {
            recorder.emit(jportal_obs::JournalEvent::LintBreak {
                kind: d.kind.to_string(),
                index: d.index as u64,
                detail: d.detail.clone(),
            });
        }
    }
    diagnostics
}

/// Replays `steps` against the ICFG and reports every violation, in
/// legacy (summary-free) mode. Equivalent to
/// [`lint_steps_summarized`] with `None`.
pub fn lint_steps(program: &Program, icfg: &Icfg, steps: &[LintStep]) -> Vec<LintDiagnostic> {
    lint_steps_summarized(program, icfg, steps, None)
}

/// Replays `steps` against the ICFG and reports every violation.
///
/// With `summaries` present the call-stack abstraction becomes
/// interprocedural (see the module docs): the stack survives seams,
/// return checks are phrased over op-kind equality classes and callee
/// reach, and two additional diagnostic kinds can fire —
/// [`LintKind::StackImbalance`] and [`LintKind::InfeasibleSummary`].
/// With `None` the behavior is exactly the legacy per-seam-reset
/// linter.
pub fn lint_steps_summarized(
    program: &Program,
    icfg: &Icfg,
    steps: &[LintStep],
    summaries: Option<&SummaryTable>,
) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    // Last located step (node, recorded direction, recorded op); `None`
    // after a seam or an unplaced event.
    let mut prev: Option<(NodeId, BranchDir, OpKind)> = None;
    // Frames pushed by observed calls. Empty = unknown prefix.
    let mut stack: Vec<Frame> = Vec::new();

    for (i, step) in steps.iter().enumerate() {
        if step.boundary {
            prev = None;
            match summaries {
                None => stack.clear(),
                Some(t) => {
                    if step.lossy {
                        match step.node {
                            // Lossy resume at an unknown location: the
                            // stack constrains nothing anymore.
                            None => stack.clear(),
                            Some(node) => {
                                // Pop frames the summary table proves
                                // cannot enclose the resume method, and
                                // taint the survivors — events that
                                // would confirm them are missing.
                                let resume = icfg.method_of(node);
                                while let Some(f) = stack.last() {
                                    if t.class_reaches(f.callee, resume) {
                                        break;
                                    }
                                    stack.pop();
                                }
                                for f in &mut stack {
                                    f.tainted = true;
                                }
                            }
                        }
                    }
                    // Non-lossy restart: every event is present, so the
                    // stack carries over untouched (satellite fix for
                    // imbalances spanning a projection restart).
                }
            }
        }
        let Some(node) = step.node else {
            // An unplaced event breaks edge adjacency; if it could have
            // changed the call stack, the stack is no longer trustworthy.
            prev = None;
            if matches!(
                step.op,
                OpKind::InvokeStatic
                    | OpKind::InvokeVirtual
                    | OpKind::Return
                    | OpKind::Ireturn
                    | OpKind::Areturn
                    | OpKind::Athrow
            ) {
                stack.clear();
            }
            continue;
        };
        // Located-continuity was lost before this step (seam or unplaced
        // event): from here on, runs may be relocated relative to the
        // pending frames, so their method identity is blurred.
        if summaries.is_some() && prev.is_none() {
            for f in &mut stack {
                f.relocated = true;
            }
        }
        let at = icfg.location(node);
        let insn = &program.method(at.0).code[at.1.index()];
        let insn_op = insn.op_kind();
        if insn_op != step.op {
            out.push(LintDiagnostic {
                kind: LintKind::OpMismatch,
                index: i,
                from: None,
                at,
                detail: format!(
                    "recorded op `{}` but instruction at {:?}:{} is `{}`",
                    step.op, at.0, at.1 .0, insn_op
                ),
            });
        }

        // Forced-polarity check: the intra-method pass proved this
        // branch always goes one way, yet the trace recorded the other.
        // Restricted to singleton op-kind classes — a twin method could
        // differ exactly in the operand the polarity was derived from,
        // making a relocated step look contradictory.
        if let Some(t) = summaries {
            if step.dir != BranchDir::Unknown
                && insn.is_conditional_branch()
                && t.class_is_singleton(at.0)
            {
                if let Some(forced) = t.forced_dir(at.0, at.1) {
                    if !step.dir.matches(forced) {
                        out.push(LintDiagnostic {
                            kind: LintKind::InfeasibleSummary,
                            index: i,
                            from: None,
                            at,
                            detail: format!(
                                "branch at {}:{} recorded `{}` but abstract interpretation \
                                 forces `{}`",
                                program.method(at.0).qualified_name(program),
                                at.1 .0,
                                step.dir,
                                forced
                            ),
                        });
                    }
                }
            }
        }

        if let Some((p, p_dir, p_op)) = prev {
            let from = icfg.location(p);
            let to_edges: Vec<EdgeKind> = icfg
                .edges(p)
                .iter()
                .filter(|e| e.to == node)
                .map(|e| e.kind)
                .collect();
            if to_edges.is_empty() {
                out.push(LintDiagnostic {
                    kind: LintKind::MissingEdge,
                    index: i,
                    from: Some(from),
                    at,
                    detail: format!(
                        "no ICFG edge from {:?}:{} to {:?}:{}",
                        from.0, from.1 .0, at.0, at.1 .0
                    ),
                });
            } else {
                let taken = to_edges.iter().copied().find(|k| k.compatible_with(p_dir));
                match taken {
                    None => out.push(LintDiagnostic {
                        kind: LintKind::BranchContradiction,
                        index: i,
                        from: Some(from),
                        at,
                        detail: format!(
                            "edge(s) {:?} from {:?}:{} exist but none compatible with direction `{}`",
                            to_edges, from.0, from.1 .0, p_dir
                        ),
                    }),
                    Some(EdgeKind::Call) => {
                        // Push the callee and the caller's continuation:
                        // the instruction after the invoke (verified code
                        // never ends on an invoke, so `next()` is in
                        // range).
                        stack.push(Frame {
                            callee: icfg.method_of(node),
                            cont: icfg.node(from.0, from.1.next()),
                            tainted: false,
                            relocated: false,
                        });
                    }
                    Some(EdgeKind::Return) => match summaries {
                        None => match stack.last() {
                            Some(&f) if f.callee != from.0 => {
                                out.push(LintDiagnostic {
                                    kind: LintKind::UnmatchedReturn,
                                    index: i,
                                    from: Some(from),
                                    at,
                                    detail: format!(
                                        "return from {:?} but the innermost pending call went to {:?}",
                                        from.0, f.callee
                                    ),
                                });
                                // Resync: if a deeper pending call did enter
                                // the returning method, unwind through it;
                                // otherwise the stack is unreliable — forget
                                // it.
                                match stack.iter().rposition(|f| f.callee == from.0) {
                                    Some(pos) => stack.truncate(pos),
                                    None => stack.clear(),
                                }
                            }
                            Some(_) => {
                                stack.pop();
                            }
                            // Empty stack: returning out of the unknown
                            // prefix — nothing to check.
                            None => {}
                        },
                        Some(t) => {
                            check_return_summarized(
                                program, t, &mut stack, &mut out, i, from, at, p_op,
                            );
                        }
                    },
                    Some(EdgeKind::Exception) => {
                        // An exception edge into another method unwinds
                        // every frame above the handler's.
                        let hm = at.0;
                        if hm != from.0 {
                            while let Some(f) = stack.pop() {
                                if icfg.method_of(f.cont) == hm {
                                    break;
                                }
                            }
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        prev = Some((node, step.dir, step.op));
    }
    out
}

/// Summaries-mode return check. All comparisons are over op-kind
/// equality classes (relocation into a twin must not be flagged), and
/// verdicts degrade with how trustworthy the pending frames are:
///
/// * a **tainted** innermost frame (lossy seam since its push) pops
///   silently — the balancing events may be in the hole;
/// * a **relocated** innermost frame (continuity loss since its push)
///   keeps only op-kind facts: the recorded return op must be a feasible
///   exit op of the frame's class (relocation can blur *which* method a
///   run sits in, never which op kinds the hardware recorded), so an
///   infeasible exit kind is still a provable [`LintKind::StackImbalance`];
/// * a fully observed innermost frame gets the strict interprocedural
///   check: [`LintKind::UnmatchedReturn`] when a deeper or reachable
///   pending call explains the return, [`LintKind::StackImbalance`] when
///   the whole (fully observed) stack provably cannot.
#[allow(clippy::too_many_arguments)]
fn check_return_summarized(
    program: &Program,
    t: &SummaryTable,
    stack: &mut Vec<Frame>,
    out: &mut Vec<LintDiagnostic>,
    index: usize,
    from: (MethodId, Bci),
    at: (MethodId, Bci),
    ret_op: OpKind,
) {
    let r = from.0;
    // Empty stack: returning out of the unknown prefix.
    let Some(&f) = stack.last() else { return };
    if t.compatible(f.callee, r) {
        stack.pop();
        return;
    }
    if f.tainted {
        // The call balancing this return may be hidden in the hole that
        // tainted the frame; nothing is provable.
        stack.pop();
        return;
    }
    if f.relocated {
        if t.summary(f.callee).exit_ops.contains(ret_op) {
            // Identity is blurred by relocation and the exit kind fits
            // the pending class: plausibly the matching return.
            stack.pop();
            return;
        }
        out.push(LintDiagnostic {
            kind: LintKind::StackImbalance,
            index,
            from: Some(from),
            at,
            detail: format!(
                "return op `{}` cannot exit the innermost pending callee {} \
                 (its class has no such exit op)",
                ret_op,
                program.method(f.callee).qualified_name(program)
            ),
        });
        stack.clear();
        return;
    }
    // Innermost frame fully observed since its push: the return really
    // pops it, and its class provably differs from the returning
    // method's — a genuine violation. Classify by whether the rest of
    // the stack could explain it.
    let all_clean = stack.iter().all(|g| !g.tainted && !g.relocated);
    let compatible_pos = stack.iter().rposition(|g| t.compatible(g.callee, r));
    let reachable = stack.iter().any(|g| t.class_reaches(g.callee, r));
    if all_clean && compatible_pos.is_none() && !reachable {
        // Interprocedurally impossible: the returning method is not
        // pending, not reachable below any pending callee, and not
        // op-kind confusable with either — on a fully observed stack.
        let pending: Vec<String> = stack
            .iter()
            .map(|g| program.method(g.callee).qualified_name(program))
            .collect();
        out.push(LintDiagnostic {
            kind: LintKind::StackImbalance,
            index,
            from: Some(from),
            at,
            detail: format!(
                "return from {} but no pending call (stack: [{}]) can \
                 reach it interprocedurally",
                program.method(r).qualified_name(program),
                pending.join(", ")
            ),
        });
        stack.clear();
        return;
    }
    out.push(LintDiagnostic {
        kind: LintKind::UnmatchedReturn,
        index,
        from: Some(from),
        at,
        detail: format!(
            "return from {:?} but the innermost pending call went to {:?}",
            r, f.callee
        ),
    });
    // Resync: if a deeper pending call did enter the returning method
    // (or its twin), unwind through it; otherwise the stack is
    // unreliable — forget it.
    match compatible_pos {
        Some(pos) => stack.truncate(pos),
        None => stack.clear(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};

    /// main: iconst; invokestatic callee; pop; invokestatic callee; pop;
    /// if; nop; return — with callee: iconst; ireturn.
    fn program() -> (Program, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut f = pb.method(c, "callee", 0, true);
        f.emit(I::Iconst(7));
        f.emit(I::Ireturn);
        let callee = f.finish();
        let mut m = pb.method(c, "main", 0, false);
        let skip = m.label();
        m.emit(I::InvokeStatic(callee)); // 0
        m.emit(I::Pop); // 1
        m.emit(I::InvokeStatic(callee)); // 2
        m.emit(I::Pop); // 3
        m.emit(I::Iconst(0)); // 4
        m.branch_if(CmpKind::Eq, skip); // 5
        m.emit(I::Nop); // 6
        m.bind(skip);
        m.emit(I::Return); // 7
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        (p, main, callee)
    }

    use jportal_bytecode::Program;

    fn step(p: &Program, icfg: &Icfg, m: MethodId, bci: u32) -> LintStep {
        let node = icfg.node(m, Bci(bci));
        LintStep::at(node, p.method(m).code[bci as usize].op_kind())
    }

    #[test]
    fn clean_call_return_sequence() {
        let (p, main, callee) = program();
        let icfg = Icfg::build(&p);
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 1),
            step(&p, &icfg, main, 2),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 3),
            step(&p, &icfg, main, 4),
            step(&p, &icfg, main, 5).with_dir(BranchDir::Taken),
            step(&p, &icfg, main, 7),
        ];
        let diags = lint_steps(&p, &icfg, &steps);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(LintSummary::of(&diags).is_clean());
    }

    #[test]
    fn missing_edge_detected() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        // pop(1) cannot jump to iconst(4).
        let steps = vec![step(&p, &icfg, main, 1), step(&p, &icfg, main, 4)];
        let diags = lint_steps(&p, &icfg, &steps);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::MissingEdge);
        assert_eq!(diags[0].index, 1);
    }

    #[test]
    fn seam_suppresses_missing_edge() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        let steps = vec![
            step(&p, &icfg, main, 1),
            step(&p, &icfg, main, 4).seam(),
            step(&p, &icfg, main, 5),
        ];
        assert!(lint_steps(&p, &icfg, &steps).is_empty());
    }

    #[test]
    fn op_mismatch_detected() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        let mut s = step(&p, &icfg, main, 4);
        s.op = OpKind::Nop; // recorded op disagrees with iconst at bci 4
        let diags = lint_steps(&p, &icfg, &[s]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::OpMismatch);
    }

    #[test]
    fn branch_contradiction_detected() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        // Direction says fall-through, but the next step is the taken
        // target (bci 7, skipping the nop at 6).
        let steps = vec![
            step(&p, &icfg, main, 5).with_dir(BranchDir::NotTaken),
            step(&p, &icfg, main, 7),
        ];
        let diags = lint_steps(&p, &icfg, &steps);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::BranchContradiction);
    }

    #[test]
    fn sibling_continuation_return_is_not_flagged() {
        let (p, main, callee) = program();
        let icfg = Icfg::build(&p);
        // Call located at site bci 0 but return located at the
        // continuation of the sibling site bci 2: with op-identical call
        // sites the projector's site choice is arbitrary, so this is a
        // relocation artifact, not an infeasibility.
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 3),
        ];
        assert!(lint_steps(&p, &icfg, &steps).is_empty());
    }

    /// main: invoke f; pop; invoke g; pop; return — f and g both
    /// `iconst; ireturn`.
    fn two_callees() -> (Program, MethodId, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut fb = pb.method(c, "f", 0, true);
        fb.emit(I::Iconst(1));
        fb.emit(I::Ireturn);
        let f = fb.finish();
        let mut gb = pb.method(c, "g", 0, true);
        gb.emit(I::Iconst(2));
        gb.emit(I::Ireturn);
        let g = gb.finish();
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::InvokeStatic(f)); // 0
        m.emit(I::Pop); // 1
        m.emit(I::InvokeStatic(g)); // 2
        m.emit(I::Pop); // 3
        m.emit(I::Return); // 4
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        (p, main, f, g)
    }

    #[test]
    fn unmatched_return_detected() {
        let (p, main, f, g) = two_callees();
        let icfg = Icfg::build(&p);
        // The call enters f, an unplaced event hides a transfer, and the
        // trace then returns *from g* while f's call is still the
        // innermost pending frame — no execution can do that.
        let mut unplaced = step(&p, &icfg, main, 1);
        unplaced.node = None;
        unplaced.op = OpKind::Goto;
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, f, 0),
            unplaced,
            step(&p, &icfg, g, 1),
            step(&p, &icfg, main, 3),
        ];
        let diags = lint_steps(&p, &icfg, &steps);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::UnmatchedReturn);
        assert_eq!(diags[0].index, 4);
    }

    #[test]
    fn return_out_of_unknown_prefix_is_clean() {
        let (p, main, callee) = program();
        let icfg = Icfg::build(&p);
        // Start mid-execution inside the callee: the return pops an empty
        // stack, which is fine.
        let steps = vec![
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 1),
        ];
        assert!(lint_steps(&p, &icfg, &steps).is_empty());
    }

    #[test]
    fn unplaced_call_invalidates_stack_but_not_edges() {
        let (p, main, callee) = program();
        let icfg = Icfg::build(&p);
        let mut unplaced = step(&p, &icfg, main, 2);
        unplaced.node = None;
        // Call at 0 pushes continuation 1; the unplaced invoke wipes the
        // stack, so the later "wrong" return is not reported.
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 1),
            unplaced,
            step(&p, &icfg, callee, 0).seam(),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 1),
        ];
        assert!(lint_steps(&p, &icfg, &steps).is_empty());
    }

    /// main: invoke f; pop; invoke g; pop; return — f (`iconst;
    /// ireturn`) and g (`iconst; iconst; iadd; ireturn`) have distinct
    /// op-kind streams, so the summary table can tell them apart.
    fn two_distinct_callees() -> (Program, MethodId, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut fb = pb.method(c, "f", 0, true);
        fb.emit(I::Iconst(1));
        fb.emit(I::Ireturn);
        let f = fb.finish();
        let mut gb = pb.method(c, "g", 0, true);
        gb.emit(I::Iconst(1));
        gb.emit(I::Iconst(2));
        gb.emit(I::Iadd);
        gb.emit(I::Ireturn);
        let g = gb.finish();
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::InvokeStatic(f)); // 0
        m.emit(I::Pop); // 1
        m.emit(I::InvokeStatic(g)); // 2
        m.emit(I::Pop); // 3
        m.emit(I::Return); // 4
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        (p, main, f, g)
    }

    /// main: invoke f (void); invoke g (int); pop; return — distinct
    /// return kinds, so a cross-seam swap is provable even under
    /// relocation.
    fn void_and_int_callees() -> (Program, MethodId, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut fb = pb.method(c, "f", 0, false);
        fb.emit(I::Nop);
        fb.emit(I::Return);
        let f = fb.finish();
        let mut gb = pb.method(c, "g", 0, true);
        gb.emit(I::Iconst(1));
        gb.emit(I::Ireturn);
        let g = gb.finish();
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::InvokeStatic(f)); // 0
        m.emit(I::InvokeStatic(g)); // 1
        m.emit(I::Pop); // 2
        m.emit(I::Return); // 3
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        (p, main, f, g)
    }

    /// Seeded cross-seam fault: a call enters `f` (a void method), a
    /// projection restart separates it from an `ireturn` taken out of
    /// `g`. The legacy linter resets its stack at the seam and swallows
    /// the imbalance; in summaries mode the frame survives the restart
    /// (relocated, so identity is blurred) and the op-kind check still
    /// proves it: nothing in `f`'s class can exit via `ireturn`.
    #[test]
    fn cross_seam_imbalance_detected_with_summaries() {
        let (p, main, f, g) = void_and_int_callees();
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, f, 0),
            step(&p, &icfg, g, 1).restart(), // ireturn, relocated run
            step(&p, &icfg, main, 2),        // return edge: g → main cont
        ];
        assert!(
            lint_steps(&p, &icfg, &steps).is_empty(),
            "legacy mode swallows the cross-seam fault"
        );
        let diags = lint_steps_summarized(&p, &icfg, &steps, Some(&t));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, LintKind::StackImbalance);
        assert!(diags[0].detail.contains("C.f"), "{}", diags[0].detail);
    }

    /// A relocated frame whose class *can* exit via the recorded return
    /// kind must pop silently: relocation blurs method identity, so an
    /// identity mismatch alone proves nothing.
    #[test]
    fn relocated_frame_with_feasible_exit_kind_is_not_flagged() {
        let (p, main, f, g) = two_distinct_callees();
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, f, 0),
            step(&p, &icfg, g, 3).restart(), // ireturn — f also exits ireturn
            step(&p, &icfg, main, 3),
        ];
        let diags = lint_steps_summarized(&p, &icfg, &steps, Some(&t));
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// The strict interprocedural check still fires on a seam-free
    /// (claimed-contiguous) corrupt sequence: with no seam, the frames
    /// are fully observed and the stack verdict is provable.
    #[test]
    fn strict_imbalance_on_contiguous_corrupt_sequence() {
        let (p, main, f, g) = two_distinct_callees();
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        // No seam marks: the jump f→g also trips MissingEdge, and the
        // return from g cannot pop the fully observed pending f frame.
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, f, 0),
            step(&p, &icfg, g, 3),
            step(&p, &icfg, main, 3),
        ];
        let diags = lint_steps_summarized(&p, &icfg, &steps, Some(&t));
        let s = LintSummary::of(&diags);
        assert_eq!(s.missing_edge, 1, "{diags:?}");
        assert_eq!(s.stack_imbalance, 1, "{diags:?}");
        assert_eq!(s.total(), 2, "{diags:?}");
    }

    /// The same shape across a *lossy* seam must stay silent: missing
    /// events mean the pending `f` call may well have returned inside
    /// the hole.
    #[test]
    fn cross_lossy_seam_imbalance_is_not_flagged() {
        let (p, main, f, g) = two_distinct_callees();
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, f, 0),
            step(&p, &icfg, g, 3).seam(),
            step(&p, &icfg, main, 3),
        ];
        let diags = lint_steps_summarized(&p, &icfg, &steps, Some(&t));
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// Relocation between op-identical twins is an artifact, not an
    /// imbalance: the return check works over equality classes.
    #[test]
    fn twin_relocated_return_is_not_flagged_with_summaries() {
        let (p, main, f, g) = two_callees(); // f and g are op-identical
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        let steps = vec![
            step(&p, &icfg, main, 0), // call enters f
            step(&p, &icfg, f, 0),
            step(&p, &icfg, g, 0).restart(), // relocated into the twin
            step(&p, &icfg, g, 1),
            step(&p, &icfg, main, 3), // return edge from g's ireturn
        ];
        let diags = lint_steps_summarized(&p, &icfg, &steps, Some(&t));
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// A frame tainted by a lossy seam suppresses the unmatched-return
    /// verdict: the call that would balance it may be in the hole.
    #[test]
    fn tainted_frame_suppresses_unmatched_return() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut fb = pb.method(c, "f", 0, true);
        fb.emit(I::Iconst(1)); // 0
        fb.emit(I::Ireturn); // 1
        let f = fb.finish();
        let mut hb = pb.method(c, "h", 0, true);
        hb.emit(I::InvokeStatic(f)); // 0
        hb.emit(I::Ireturn); // 1
        let h = hb.finish();
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::InvokeStatic(h)); // 0
        m.emit(I::Pop); // 1
        m.emit(I::Return); // 2
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        // Call enters h; a lossy seam resumes inside f (reachable from
        // h, so the h-frame survives tainted); f returns to h's
        // continuation — innermost pending is h, not f, but the call
        // into f is plausibly in the hole.
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, h, 0),
            step(&p, &icfg, f, 0).seam(),
            step(&p, &icfg, f, 1),
            step(&p, &icfg, h, 1), // return edge f → h's continuation
        ];
        let diags = lint_steps_summarized(&p, &icfg, &steps, Some(&t));
        assert!(diags.is_empty(), "{diags:?}");
        // A non-lossy restart also stays silent here, for a different
        // reason: the run after the restart may be relocated, the
        // h-frame is marked as such, and `ireturn` is a feasible exit
        // kind for h's class — identity alone proves nothing.
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, h, 0),
            step(&p, &icfg, f, 0).restart(),
            step(&p, &icfg, f, 1),
            step(&p, &icfg, h, 1),
        ];
        let diags = lint_steps_summarized(&p, &icfg, &steps, Some(&t));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn infeasible_summary_detected() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        // bci 4 pushes iconst 0, bci 5 is `ifeq` — forced Taken; the
        // trace records NotTaken onto the (existing) fall-through edge.
        let steps = vec![
            step(&p, &icfg, main, 4),
            step(&p, &icfg, main, 5).with_dir(BranchDir::NotTaken),
            step(&p, &icfg, main, 6),
        ];
        assert!(
            lint_steps(&p, &icfg, &steps).is_empty(),
            "legacy mode cannot see the contradiction"
        );
        let diags = lint_steps_summarized(&p, &icfg, &steps, Some(&t));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, LintKind::InfeasibleSummary);
        assert!(diags[0].detail.contains("C.main"), "{}", diags[0].detail);
        // The feasible direction is clean in both modes.
        let steps = vec![
            step(&p, &icfg, main, 4),
            step(&p, &icfg, main, 5).with_dir(BranchDir::Taken),
            step(&p, &icfg, main, 7),
        ];
        assert!(lint_steps_summarized(&p, &icfg, &steps, Some(&t)).is_empty());
    }

    #[test]
    fn summaries_mode_is_clean_on_legacy_clean_sequences() {
        let (p, main, callee) = program();
        let icfg = Icfg::build(&p);
        let t = SummaryTable::build(&p, &icfg);
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 1),
            step(&p, &icfg, main, 2),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 3),
            step(&p, &icfg, main, 4),
            step(&p, &icfg, main, 5).with_dir(BranchDir::Taken),
            step(&p, &icfg, main, 7),
        ];
        assert!(lint_steps_summarized(&p, &icfg, &steps, Some(&t)).is_empty());
    }

    #[test]
    fn summary_tallies_by_kind() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        let steps = vec![step(&p, &icfg, main, 1), step(&p, &icfg, main, 4)];
        let diags = lint_steps(&p, &icfg, &steps);
        let s = LintSummary::of(&diags);
        assert_eq!(s.missing_edge, 1);
        assert_eq!(s.total(), 1);
        assert!(!s.is_clean());
        assert!(s.to_string().contains("missing-edge 1"));
    }
}
