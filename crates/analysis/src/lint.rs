//! Trace-feasibility linter.
//!
//! Replays a reconstructed (or recovered) bytecode sequence against the
//! ICFG and a call-stack abstraction, reporting every way the sequence
//! could not have been produced by a real execution:
//!
//! * [`LintKind::OpMismatch`] — a located step's recorded operation kind
//!   disagrees with the instruction at its `(method, bci)`;
//! * [`LintKind::MissingEdge`] — two consecutively located steps have no
//!   ICFG edge between them;
//! * [`LintKind::BranchContradiction`] — an edge exists, but none whose
//!   kind is compatible with the branch direction recorded at the source
//!   (e.g. the trace says *not taken* yet lands on the taken target);
//! * [`LintKind::UnmatchedReturn`] — a return is taken from a method
//!   while the innermost pending call went to a *different* method (a
//!   skipped or interleaved return).
//!
//! The linter is deliberately *seam-aware*: reconstruction restarts after
//! unmatched events, and recovery splices independently-searched fills
//! between segments. Consecutive steps across such a seam carry no
//! adjacency guarantee, so the producer marks them with
//! [`LintStep::boundary`] and the linter resets its edge and call-stack
//! state there instead of reporting false violations. Within one matched
//! run, adjacency **is** guaranteed by NFA construction, so any violation
//! reported here indicates a genuine reconstruction defect (or a corrupted
//! input trace).
//!
//! The call-stack abstraction is context-sensitive where the ICFG is not:
//! a `Call` edge pushes a frame recording the callee and the caller's
//! continuation, a `Return` edge must pop a frame whose *callee* is the
//! returning method, and an `Exception` edge into a different method
//! unwinds intervening frames. An empty stack matches anything (the
//! prefix before the first observed call is unknown).
//!
//! The return check deliberately compares *methods*, not continuation
//! nodes: when op-identical methods are reachable from several call
//! sites, the projector's choice among them is arbitrary, so a return
//! landing on a sibling site's continuation is a relocation artifact,
//! not an infeasibility. A return taken from a method that is not the
//! innermost pending callee, however, has no feasible interpretation.

use jportal_bytecode::{Bci, MethodId, OpKind, Program};
use jportal_cfg::{BranchDir, EdgeKind, Icfg, NodeId};
use std::fmt;

/// One event of the sequence under lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintStep {
    /// ICFG node the event was located at (`None` if reconstruction left
    /// it unplaced).
    pub node: Option<NodeId>,
    /// Operation kind recorded for the event.
    pub op: OpKind,
    /// Branch direction recorded for the event (constrains the outgoing
    /// edge towards the next step).
    pub dir: BranchDir,
    /// `true` when no ICFG edge is guaranteed from the previous step:
    /// segment starts, projection restarts and recovery splice seams.
    pub boundary: bool,
}

impl LintStep {
    /// A located step with unknown branch direction and no seam.
    pub fn at(node: NodeId, op: OpKind) -> LintStep {
        LintStep {
            node: Some(node),
            op,
            dir: BranchDir::Unknown,
            boundary: false,
        }
    }

    /// Marks this step as following a seam.
    pub fn seam(mut self) -> LintStep {
        self.boundary = true;
        self
    }

    /// Sets the recorded branch direction.
    pub fn with_dir(mut self, dir: BranchDir) -> LintStep {
        self.dir = dir;
        self
    }
}

/// The class of feasibility violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// Recorded op kind ≠ instruction at the located `(method, bci)`.
    OpMismatch,
    /// No ICFG edge between consecutive located steps.
    MissingEdge,
    /// Edges exist but none compatible with the recorded direction.
    BranchContradiction,
    /// Return taken from a method other than the innermost pending
    /// call's callee.
    UnmatchedReturn,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintKind::OpMismatch => "op-mismatch",
            LintKind::MissingEdge => "missing-edge",
            LintKind::BranchContradiction => "branch-contradiction",
            LintKind::UnmatchedReturn => "unmatched-return",
        })
    }
}

/// One feasibility violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// Violation class.
    pub kind: LintKind,
    /// Index of the offending step in the linted sequence.
    pub index: usize,
    /// Location of the preceding located step, when the violation is
    /// about the transition into this step.
    pub from: Option<(MethodId, Bci)>,
    /// Location of the offending step.
    pub at: (MethodId, Bci),
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] step {}: {}", self.kind, self.index, self.detail)
    }
}

/// Aggregated diagnostic counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintSummary {
    /// Count of [`LintKind::OpMismatch`].
    pub op_mismatch: usize,
    /// Count of [`LintKind::MissingEdge`].
    pub missing_edge: usize,
    /// Count of [`LintKind::BranchContradiction`].
    pub branch_contradiction: usize,
    /// Count of [`LintKind::UnmatchedReturn`].
    pub unmatched_return: usize,
}

impl LintSummary {
    /// Tallies a diagnostic list.
    pub fn of(diagnostics: &[LintDiagnostic]) -> LintSummary {
        let mut s = LintSummary::default();
        for d in diagnostics {
            match d.kind {
                LintKind::OpMismatch => s.op_mismatch += 1,
                LintKind::MissingEdge => s.missing_edge += 1,
                LintKind::BranchContradiction => s.branch_contradiction += 1,
                LintKind::UnmatchedReturn => s.unmatched_return += 1,
            }
        }
        s
    }

    /// Folds another summary into this one (commutative, associative).
    pub fn merge(&mut self, other: &LintSummary) {
        self.op_mismatch += other.op_mismatch;
        self.missing_edge += other.missing_edge;
        self.branch_contradiction += other.branch_contradiction;
        self.unmatched_return += other.unmatched_return;
    }

    /// Total diagnostics across all kinds.
    pub fn total(&self) -> usize {
        self.op_mismatch + self.missing_edge + self.branch_contradiction + self.unmatched_return
    }

    /// `true` when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl fmt::Display for LintSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} diagnostics (op-mismatch {}, missing-edge {}, branch-contradiction {}, unmatched-return {})",
            self.total(),
            self.op_mismatch,
            self.missing_edge,
            self.branch_contradiction,
            self.unmatched_return
        )
    }
}

/// One pending call on the abstract stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    /// Method the call entered.
    callee: MethodId,
    /// Caller's continuation node (used to locate the caller's frame
    /// during exception unwinding).
    cont: NodeId,
}

/// [`lint_steps`] wrapped in telemetry: a `lint` span covering the
/// replay plus step/diagnostic counters on the handle's registry.
/// Identical diagnostics to the plain call; inert when `obs` is
/// disabled.
pub fn lint_steps_observed(
    program: &Program,
    icfg: &Icfg,
    steps: &[LintStep],
    obs: &jportal_obs::Obs,
) -> Vec<LintDiagnostic> {
    let _span = obs
        .span("lint", "lint_steps")
        .arg("steps", steps.len())
        .record_dur(&obs.registry().histogram("analysis.lint.wall_us"));
    let diagnostics = lint_steps(program, icfg, steps);
    obs.registry()
        .counter("analysis.lint.steps")
        .add(steps.len() as u64);
    obs.registry()
        .counter("analysis.lint.diagnostics")
        .add(diagnostics.len() as u64);
    diagnostics
}

/// [`lint_steps_observed`] plus flight-recorder emission: every
/// diagnostic also lands in the decision journal as a
/// [`jportal_obs::JournalEvent::LintBreak`] through `recorder` (inert
/// when the journal is off). Identical diagnostics either way.
pub fn lint_steps_journaled(
    program: &Program,
    icfg: &Icfg,
    steps: &[LintStep],
    obs: &jportal_obs::Obs,
    recorder: &mut jportal_obs::JournalRecorder<'_>,
) -> Vec<LintDiagnostic> {
    let diagnostics = lint_steps_observed(program, icfg, steps, obs);
    if recorder.is_enabled() {
        for d in &diagnostics {
            recorder.emit(jportal_obs::JournalEvent::LintBreak {
                kind: d.kind.to_string(),
                index: d.index as u64,
                detail: d.detail.clone(),
            });
        }
    }
    diagnostics
}

/// Replays `steps` against the ICFG and reports every violation.
pub fn lint_steps(program: &Program, icfg: &Icfg, steps: &[LintStep]) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    // Last located step (node + its recorded direction); `None` after a
    // seam or an unplaced event.
    let mut prev: Option<(NodeId, BranchDir)> = None;
    // Frames pushed by observed calls. Empty = unknown prefix.
    let mut stack: Vec<Frame> = Vec::new();

    for (i, step) in steps.iter().enumerate() {
        if step.boundary {
            prev = None;
            stack.clear();
        }
        let Some(node) = step.node else {
            // An unplaced event breaks edge adjacency; if it could have
            // changed the call stack, the stack is no longer trustworthy.
            prev = None;
            if matches!(
                step.op,
                OpKind::InvokeStatic
                    | OpKind::InvokeVirtual
                    | OpKind::Return
                    | OpKind::Ireturn
                    | OpKind::Areturn
                    | OpKind::Athrow
            ) {
                stack.clear();
            }
            continue;
        };
        let at = icfg.location(node);
        let insn_op = program.method(at.0).code[at.1.index()].op_kind();
        if insn_op != step.op {
            out.push(LintDiagnostic {
                kind: LintKind::OpMismatch,
                index: i,
                from: None,
                at,
                detail: format!(
                    "recorded op `{}` but instruction at {:?}:{} is `{}`",
                    step.op, at.0, at.1 .0, insn_op
                ),
            });
        }

        if let Some((p, p_dir)) = prev {
            let from = icfg.location(p);
            let to_edges: Vec<EdgeKind> = icfg
                .edges(p)
                .iter()
                .filter(|e| e.to == node)
                .map(|e| e.kind)
                .collect();
            if to_edges.is_empty() {
                out.push(LintDiagnostic {
                    kind: LintKind::MissingEdge,
                    index: i,
                    from: Some(from),
                    at,
                    detail: format!(
                        "no ICFG edge from {:?}:{} to {:?}:{}",
                        from.0, from.1 .0, at.0, at.1 .0
                    ),
                });
            } else {
                let taken = to_edges.iter().copied().find(|k| k.compatible_with(p_dir));
                match taken {
                    None => out.push(LintDiagnostic {
                        kind: LintKind::BranchContradiction,
                        index: i,
                        from: Some(from),
                        at,
                        detail: format!(
                            "edge(s) {:?} from {:?}:{} exist but none compatible with direction `{}`",
                            to_edges, from.0, from.1 .0, p_dir
                        ),
                    }),
                    Some(EdgeKind::Call) => {
                        // Push the callee and the caller's continuation:
                        // the instruction after the invoke (verified code
                        // never ends on an invoke, so `next()` is in
                        // range).
                        stack.push(Frame {
                            callee: icfg.method_of(node),
                            cont: icfg.node(from.0, from.1.next()),
                        });
                    }
                    Some(EdgeKind::Return) => match stack.last() {
                        Some(&f) if f.callee != from.0 => {
                            out.push(LintDiagnostic {
                                kind: LintKind::UnmatchedReturn,
                                index: i,
                                from: Some(from),
                                at,
                                detail: format!(
                                    "return from {:?} but the innermost pending call went to {:?}",
                                    from.0, f.callee
                                ),
                            });
                            // Resync: if a deeper pending call did enter
                            // the returning method, unwind through it;
                            // otherwise the stack is unreliable — forget
                            // it.
                            match stack.iter().rposition(|f| f.callee == from.0) {
                                Some(pos) => stack.truncate(pos),
                                None => stack.clear(),
                            }
                        }
                        Some(_) => {
                            stack.pop();
                        }
                        // Empty stack: returning out of the unknown
                        // prefix — nothing to check.
                        None => {}
                    },
                    Some(EdgeKind::Exception) => {
                        // An exception edge into another method unwinds
                        // every frame above the handler's.
                        let hm = at.0;
                        if hm != from.0 {
                            while let Some(f) = stack.pop() {
                                if icfg.method_of(f.cont) == hm {
                                    break;
                                }
                            }
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        prev = Some((node, step.dir));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};

    /// main: iconst; invokestatic callee; pop; invokestatic callee; pop;
    /// if; nop; return — with callee: iconst; ireturn.
    fn program() -> (Program, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut f = pb.method(c, "callee", 0, true);
        f.emit(I::Iconst(7));
        f.emit(I::Ireturn);
        let callee = f.finish();
        let mut m = pb.method(c, "main", 0, false);
        let skip = m.label();
        m.emit(I::InvokeStatic(callee)); // 0
        m.emit(I::Pop); // 1
        m.emit(I::InvokeStatic(callee)); // 2
        m.emit(I::Pop); // 3
        m.emit(I::Iconst(0)); // 4
        m.branch_if(CmpKind::Eq, skip); // 5
        m.emit(I::Nop); // 6
        m.bind(skip);
        m.emit(I::Return); // 7
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        (p, main, callee)
    }

    use jportal_bytecode::Program;

    fn step(p: &Program, icfg: &Icfg, m: MethodId, bci: u32) -> LintStep {
        let node = icfg.node(m, Bci(bci));
        LintStep::at(node, p.method(m).code[bci as usize].op_kind())
    }

    #[test]
    fn clean_call_return_sequence() {
        let (p, main, callee) = program();
        let icfg = Icfg::build(&p);
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 1),
            step(&p, &icfg, main, 2),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 3),
            step(&p, &icfg, main, 4),
            step(&p, &icfg, main, 5).with_dir(BranchDir::Taken),
            step(&p, &icfg, main, 7),
        ];
        let diags = lint_steps(&p, &icfg, &steps);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(LintSummary::of(&diags).is_clean());
    }

    #[test]
    fn missing_edge_detected() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        // pop(1) cannot jump to iconst(4).
        let steps = vec![step(&p, &icfg, main, 1), step(&p, &icfg, main, 4)];
        let diags = lint_steps(&p, &icfg, &steps);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::MissingEdge);
        assert_eq!(diags[0].index, 1);
    }

    #[test]
    fn seam_suppresses_missing_edge() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        let steps = vec![
            step(&p, &icfg, main, 1),
            step(&p, &icfg, main, 4).seam(),
            step(&p, &icfg, main, 5),
        ];
        assert!(lint_steps(&p, &icfg, &steps).is_empty());
    }

    #[test]
    fn op_mismatch_detected() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        let mut s = step(&p, &icfg, main, 4);
        s.op = OpKind::Nop; // recorded op disagrees with iconst at bci 4
        let diags = lint_steps(&p, &icfg, &[s]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::OpMismatch);
    }

    #[test]
    fn branch_contradiction_detected() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        // Direction says fall-through, but the next step is the taken
        // target (bci 7, skipping the nop at 6).
        let steps = vec![
            step(&p, &icfg, main, 5).with_dir(BranchDir::NotTaken),
            step(&p, &icfg, main, 7),
        ];
        let diags = lint_steps(&p, &icfg, &steps);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::BranchContradiction);
    }

    #[test]
    fn sibling_continuation_return_is_not_flagged() {
        let (p, main, callee) = program();
        let icfg = Icfg::build(&p);
        // Call located at site bci 0 but return located at the
        // continuation of the sibling site bci 2: with op-identical call
        // sites the projector's site choice is arbitrary, so this is a
        // relocation artifact, not an infeasibility.
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 3),
        ];
        assert!(lint_steps(&p, &icfg, &steps).is_empty());
    }

    /// main: invoke f; pop; invoke g; pop; return — f and g both
    /// `iconst; ireturn`.
    fn two_callees() -> (Program, MethodId, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut fb = pb.method(c, "f", 0, true);
        fb.emit(I::Iconst(1));
        fb.emit(I::Ireturn);
        let f = fb.finish();
        let mut gb = pb.method(c, "g", 0, true);
        gb.emit(I::Iconst(2));
        gb.emit(I::Ireturn);
        let g = gb.finish();
        let mut m = pb.method(c, "main", 0, false);
        m.emit(I::InvokeStatic(f)); // 0
        m.emit(I::Pop); // 1
        m.emit(I::InvokeStatic(g)); // 2
        m.emit(I::Pop); // 3
        m.emit(I::Return); // 4
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        (p, main, f, g)
    }

    #[test]
    fn unmatched_return_detected() {
        let (p, main, f, g) = two_callees();
        let icfg = Icfg::build(&p);
        // The call enters f, an unplaced event hides a transfer, and the
        // trace then returns *from g* while f's call is still the
        // innermost pending frame — no execution can do that.
        let mut unplaced = step(&p, &icfg, main, 1);
        unplaced.node = None;
        unplaced.op = OpKind::Goto;
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, f, 0),
            unplaced,
            step(&p, &icfg, g, 1),
            step(&p, &icfg, main, 3),
        ];
        let diags = lint_steps(&p, &icfg, &steps);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::UnmatchedReturn);
        assert_eq!(diags[0].index, 4);
    }

    #[test]
    fn return_out_of_unknown_prefix_is_clean() {
        let (p, main, callee) = program();
        let icfg = Icfg::build(&p);
        // Start mid-execution inside the callee: the return pops an empty
        // stack, which is fine.
        let steps = vec![
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 1),
        ];
        assert!(lint_steps(&p, &icfg, &steps).is_empty());
    }

    #[test]
    fn unplaced_call_invalidates_stack_but_not_edges() {
        let (p, main, callee) = program();
        let icfg = Icfg::build(&p);
        let mut unplaced = step(&p, &icfg, main, 2);
        unplaced.node = None;
        // Call at 0 pushes continuation 1; the unplaced invoke wipes the
        // stack, so the later "wrong" return is not reported.
        let steps = vec![
            step(&p, &icfg, main, 0),
            step(&p, &icfg, callee, 0),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 1),
            unplaced,
            step(&p, &icfg, callee, 0).seam(),
            step(&p, &icfg, callee, 1),
            step(&p, &icfg, main, 1),
        ];
        assert!(lint_steps(&p, &icfg, &steps).is_empty());
    }

    #[test]
    fn summary_tallies_by_kind() {
        let (p, main, _) = program();
        let icfg = Icfg::build(&p);
        let steps = vec![step(&p, &icfg, main, 1), step(&p, &icfg, main, 4)];
        let diags = lint_steps(&p, &icfg, &steps);
        let s = LintSummary::of(&diags);
        assert_eq!(s.missing_edge, 1);
        assert_eq!(s.total(), 1);
        assert!(!s.is_clean());
        assert!(s.to_string().contains("missing-edge 1"));
    }
}
