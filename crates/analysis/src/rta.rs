//! Rapid-type-analysis-style devirtualization.
//!
//! The ICFG of §4 fans every `invokevirtual` out to all class-hierarchy
//! targets, which inflates NFA nondeterminism in proportion to the depth
//! of the class hierarchy. RTA narrows that: a dispatch can only select
//! the override of a receiver class that is **actually instantiated** in
//! code reachable from the analysis roots. The classic fixpoint
//! (Bacon–Sweeney style) interleaves two facts:
//!
//! * a method becomes *reachable* when a root names it, a reachable
//!   method calls it statically, or a reachable virtual site can dispatch
//!   to it under the current instantiated-class set;
//! * a class becomes *instantiated* when a reachable method executes
//!   `new C`.
//!
//! [`Rta::refined_targets`] is sound by construction: the result is
//! always a subset of the CHA target set, and it contains every target a
//! real execution rooted at the roots can take (the JVM model can only
//! create receivers through `new`, so an un-instantiated class can never
//! be dispatched on).
//!
//! Call sites inside methods the analysis did **not** reach keep their
//! full CHA target set (see [`Rta::resolver_targets`]); this makes the
//! refinement safe to apply even when a trace contains code the roots do
//! not explain (e.g. a thread rooted outside `Program::entry`).

use jportal_bytecode::{Bci, ClassId, Instruction, MethodId, Program};
use jportal_cfg::CallTargetResolver;

/// Result of the RTA fixpoint over one program.
#[derive(Debug, Clone)]
pub struct Rta<'p> {
    program: &'p Program,
    /// Classes instantiated in reachable code.
    instantiated: Vec<bool>,
    /// Methods reachable from the roots.
    reachable: Vec<bool>,
}

impl<'p> Rta<'p> {
    /// Runs the analysis rooted at the program entry method.
    pub fn analyze(program: &'p Program) -> Rta<'p> {
        Rta::analyze_with_roots(program, &[program.entry()])
    }

    /// Runs the analysis from explicit root methods (e.g. additional
    /// thread entry points).
    pub fn analyze_with_roots(program: &'p Program, roots: &[MethodId]) -> Rta<'p> {
        let mut rta = Rta {
            program,
            instantiated: vec![false; program.class_count()],
            reachable: vec![false; program.method_count()],
        };
        let mut worklist: Vec<MethodId> = Vec::new();
        for &r in roots {
            rta.mark_reachable(r, &mut worklist);
        }
        // Virtual sites seen so far, revisited when a new class becomes
        // instantiated after the site was first scanned.
        let mut virtual_sites: Vec<(ClassId, u16)> = Vec::new();
        loop {
            while let Some(m) = worklist.pop() {
                for insn in &rta.program.method(m).code {
                    match insn {
                        Instruction::New(c) => {
                            rta.instantiated[c.index()] = true;
                        }
                        Instruction::InvokeStatic(callee) => {
                            rta.mark_reachable(*callee, &mut worklist);
                        }
                        Instruction::InvokeVirtual { declared_in, slot } => {
                            virtual_sites.push((*declared_in, *slot));
                        }
                        _ => {}
                    }
                }
            }
            // Re-dispatch every virtual site under the current
            // instantiated set; any newly reachable override refills the
            // worklist and the outer loop runs again.
            let mut changed = false;
            for &(declared_in, slot) in &virtual_sites {
                for target in self_targets(rta.program, &rta.instantiated, declared_in, slot) {
                    if !rta.reachable[target.index()] {
                        rta.mark_reachable(target, &mut worklist);
                        changed = true;
                    }
                }
            }
            if !changed && worklist.is_empty() {
                break;
            }
        }
        rta
    }

    fn mark_reachable(&mut self, m: MethodId, worklist: &mut Vec<MethodId>) {
        if !self.reachable[m.index()] {
            self.reachable[m.index()] = true;
            worklist.push(m);
        }
    }

    /// `true` if `class` is instantiated in reachable code.
    pub fn is_instantiated(&self, class: ClassId) -> bool {
        self.instantiated[class.index()]
    }

    /// `true` if `method` is reachable from the roots.
    pub fn is_reachable(&self, method: MethodId) -> bool {
        self.reachable[method.index()]
    }

    /// Number of reachable methods.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }

    /// The RTA-refined target set of a virtual dispatch: the overrides
    /// selected by instantiated subclasses of `declared_in`. Always a
    /// subset of [`Program::virtual_targets`].
    pub fn refined_targets(&self, declared_in: ClassId, slot: u16) -> Vec<MethodId> {
        self_targets(self.program, &self.instantiated, declared_in, slot)
    }
}

/// Shared with the fixpoint loop, which cannot borrow `self` whole.
fn self_targets(
    program: &Program,
    instantiated: &[bool],
    declared_in: ClassId,
    slot: u16,
) -> Vec<MethodId> {
    let mut out = Vec::new();
    for (cid, _class) in program.classes() {
        if instantiated[cid.index()] && program.is_subclass_of(cid, declared_in) {
            let target = program.resolve_virtual(cid, slot);
            if !out.contains(&target) {
                out.push(target);
            }
        }
    }
    out
}

impl CallTargetResolver for Rta<'_> {
    /// Refined targets for sites in RTA-reachable methods; full CHA for
    /// sites the analysis never reached (their calling context is
    /// unknown, so narrowing them would be unsound).
    fn virtual_targets(
        &self,
        site: (MethodId, Bci),
        declared_in: ClassId,
        slot: u16,
    ) -> Vec<MethodId> {
        if self.reachable[site.0.index()] {
            self.refined_targets(declared_in, slot)
        } else {
            self.program.virtual_targets(declared_in, slot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::Instruction as I;

    /// Base with two subclasses; only `Derived1` is instantiated from
    /// main. `Derived2::run` must be pruned; a helper reachable only
    /// through the virtual dispatch must still be found.
    fn hierarchy() -> (Program, ClassId, u16, MethodId, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("Base", None, 0);
        let mut r = pb.method(base, "run", 1, true);
        r.emit(I::Iconst(0));
        r.emit(I::Ireturn);
        let run_base = r.finish();
        let slot = pb.add_virtual(base, run_base);

        let d1 = pb.add_class("Derived1", Some(base), 0);
        let mut helper = pb.method(d1, "helper", 0, false);
        helper.emit(I::Return);
        let helper = helper.finish();
        let mut r = pb.method(d1, "run", 1, true);
        r.emit(I::InvokeStatic(helper));
        r.emit(I::Iconst(1));
        r.emit(I::Ireturn);
        let run_d1 = r.finish();
        pb.override_virtual(d1, slot, run_d1);

        let d2 = pb.add_class("Derived2", Some(base), 0);
        let mut r = pb.method(d2, "run", 1, true);
        r.emit(I::Iconst(2));
        r.emit(I::Ireturn);
        let run_d2 = r.finish();
        pb.override_virtual(d2, slot, run_d2);

        let mut m = pb.method(base, "main", 0, false);
        m.emit(I::New(d1));
        m.emit(I::InvokeVirtual {
            declared_in: base,
            slot,
        });
        m.emit(I::Pop);
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        (p, base, slot, run_d1, run_d2, helper)
    }

    use jportal_bytecode::Program;

    #[test]
    fn prunes_uninstantiated_overrides() {
        let (p, base, slot, run_d1, run_d2, _) = hierarchy();
        let rta = Rta::analyze(&p);
        let refined = rta.refined_targets(base, slot);
        assert!(refined.contains(&run_d1));
        assert!(!refined.contains(&run_d2));
        let cha = p.virtual_targets(base, slot);
        assert!(refined.iter().all(|t| cha.contains(t)));
        assert!(refined.len() < cha.len());
    }

    #[test]
    fn reaches_through_virtual_dispatch() {
        let (p, _, _, run_d1, run_d2, helper) = hierarchy();
        let rta = Rta::analyze(&p);
        assert!(rta.is_reachable(run_d1));
        assert!(rta.is_reachable(helper), "reachable only via the dispatch");
        assert!(!rta.is_reachable(run_d2));
    }

    #[test]
    fn unreachable_sites_keep_cha_targets() {
        let (p, base, slot, _, run_d2, _) = hierarchy();
        let rta = Rta::analyze(&p);
        // Pretend the site lives in run_d2 (unreachable): full CHA.
        let site = (run_d2, Bci(0));
        let targets = rta.virtual_targets(site, base, slot);
        assert_eq!(targets, p.virtual_targets(base, slot));
        // A site in main (reachable): refined.
        let site = (p.entry(), Bci(1));
        assert!(rta.virtual_targets(site, base, slot).len() < targets.len());
    }

    #[test]
    fn instantiation_in_callee_feeds_back_into_dispatch() {
        // main calls mk() statically; mk instantiates Derived; the virtual
        // site in main must see Derived even though main itself has no
        // `new`.
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("Base", None, 0);
        let mut r = pb.method(base, "run", 1, true);
        r.emit(I::Iconst(0));
        r.emit(I::Ireturn);
        let run_base = r.finish();
        let slot = pb.add_virtual(base, run_base);
        let derived = pb.add_class("Derived", Some(base), 0);
        let mut r = pb.method(derived, "run", 1, true);
        r.emit(I::Iconst(1));
        r.emit(I::Ireturn);
        let run_derived = r.finish();
        pb.override_virtual(derived, slot, run_derived);
        let mut mk = pb.method(base, "mk", 0, true);
        mk.emit(I::New(derived));
        mk.emit(I::Areturn);
        let mk = mk.finish();
        let mut m = pb.method(base, "main", 0, false);
        m.emit(I::InvokeStatic(mk));
        m.emit(I::InvokeVirtual {
            declared_in: base,
            slot,
        });
        m.emit(I::Pop);
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let rta = Rta::analyze(&p);
        assert!(rta.is_instantiated(derived));
        assert!(rta.refined_targets(base, slot).contains(&run_derived));
        assert!(rta.is_reachable(run_derived));
    }
}
