//! Property-based tests for the static-analysis layer.
//!
//! * Dominators and post-dominators agree with a naive
//!   reachability-removal oracle on small random CFGs.
//! * RTA refinement is always a subset of CHA and never drops a virtual
//!   target the ground-truth execution actually dispatched to.

use proptest::prelude::*;

use jportal_analysis::{Dominators, LoopNest, PostDominators, Rta};
use jportal_bytecode::builder::ProgramBuilder;
use jportal_bytecode::{CmpKind, Instruction as I, Program};
use jportal_cfg::{BlockId, Cfg};
use jportal_jvm::Jvm;
use jportal_workloads::all_workloads;

/// A random but verifiable single-method program with forward **and**
/// backward branches (loops), keeping the operand stack empty at every
/// block boundary so verification always passes.
fn arb_cfg_program() -> impl Strategy<Value = Program> {
    prop::collection::vec((0usize..3, any::<u8>()), 2..8).prop_map(|blocks| {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("P", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.reserve_locals(1);
        let labels: Vec<_> = (0..blocks.len()).map(|_| m.label()).collect();
        let end = m.label();
        for (bi, &(variant, pick)) in blocks.iter().enumerate() {
            m.bind(labels[bi]);
            // Branch target anywhere, including backwards (loops).
            let target = labels
                .get(pick as usize % (blocks.len() + 1))
                .copied()
                .unwrap_or(end);
            match variant {
                0 => {
                    // Conditional: may loop back, falls through otherwise.
                    m.emit(I::Iload(0));
                    m.branch_if(CmpKind::Eq, target);
                }
                1 => {
                    m.jump(target);
                }
                _ => {
                    m.emit(I::Iinc(0, 1));
                }
            }
        }
        m.bind(end);
        m.emit(I::Return);
        let id = m.finish();
        pb.finish_with_entry(id).unwrap()
    })
}

/// Blocks reachable from `from`, optionally treating `removed` as absent.
fn reachable_from(cfg: &Cfg, from: BlockId, removed: Option<BlockId>) -> Vec<bool> {
    let mut seen = vec![false; cfg.block_count()];
    if Some(from) == removed {
        return seen;
    }
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(b) = stack.pop() {
        for &(s, _) in &cfg.block(b).succs {
            if Some(s) != removed && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// `true` if `from` can reach some exit block avoiding `removed`.
fn reaches_exit_avoiding(cfg: &Cfg, from: BlockId, removed: Option<BlockId>) -> bool {
    let seen = reachable_from(cfg, from, removed);
    cfg.blocks()
        .any(|(id, b)| b.succs.is_empty() && seen[id.index()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `a` dominates `b` iff removing `a` cuts `b` off from the entry.
    #[test]
    fn dominators_match_reachability_oracle(p in arb_cfg_program()) {
        let cfg = Cfg::build(p.method(p.entry()));
        let doms = Dominators::compute(&cfg);
        let from_entry = reachable_from(&cfg, cfg.entry(), None);
        for (a, _) in cfg.blocks() {
            for (b, _) in cfg.blocks() {
                if !from_entry[b.index()] {
                    // Unreachable blocks are dominated by themselves only.
                    prop_assert_eq!(doms.dominates(a, b), a == b);
                    continue;
                }
                let cut = a == b || !reachable_from(&cfg, cfg.entry(), Some(a))[b.index()];
                prop_assert_eq!(
                    doms.dominates(a, b),
                    cut,
                    "dominates({:?}, {:?})",
                    a,
                    b
                );
            }
        }
    }

    /// `a` post-dominates `b` iff removing `a` cuts `b` off from every
    /// exit (for `b` that reach an exit at all).
    #[test]
    fn post_dominators_match_reachability_oracle(p in arb_cfg_program()) {
        let cfg = Cfg::build(p.method(p.entry()));
        let pdoms = PostDominators::compute(&cfg);
        for (a, _) in cfg.blocks() {
            for (b, _) in cfg.blocks() {
                if !reaches_exit_avoiding(&cfg, b, None) {
                    prop_assert!(!pdoms.post_dominates(a, b) || a == b);
                    continue;
                }
                let cut = a == b || !reaches_exit_avoiding(&cfg, b, Some(a));
                prop_assert_eq!(
                    pdoms.post_dominates(a, b),
                    cut,
                    "post_dominates({:?}, {:?})",
                    a,
                    b
                );
            }
        }
    }

    /// Every reported loop is headed by a block dominating all its back
    /// edges, bodies contain their headers, and depth is consistent.
    #[test]
    fn loop_nest_is_consistent(p in arb_cfg_program()) {
        let cfg = Cfg::build(p.method(p.entry()));
        let doms = Dominators::compute(&cfg);
        let loops = LoopNest::compute(&cfg, &doms);
        for l in &loops.loops {
            prop_assert!(l.body.contains(&l.header));
            for &u in &l.back_from {
                prop_assert!(doms.dominates(l.header, u));
                prop_assert!(l.body.contains(&u));
            }
            for &b in &l.body {
                prop_assert!(loops.depth(b) >= 1);
            }
        }
        for (b, _) in cfg.blocks() {
            let containing = loops
                .loops
                .iter()
                .filter(|l| l.body.contains(&b))
                .count() as u32;
            prop_assert_eq!(loops.depth(b), containing);
        }
    }
}

/// RTA-refined target sets are subsets of CHA on every virtual site of
/// every seed workload, and never drop a target the ground-truth run
/// actually dispatched to.
#[test]
fn rta_subset_of_cha_and_keeps_truth_targets() {
    for w in all_workloads(1) {
        let rta = Rta::analyze(&w.program);
        // Subset property, at every virtual site of the program.
        for (mid, method) in w.program.methods() {
            for (bci, insn) in method.code.iter().enumerate() {
                if let I::InvokeVirtual { declared_in, slot } = insn {
                    let cha = w.program.virtual_targets(*declared_in, *slot);
                    let refined = jportal_cfg::CallTargetResolver::virtual_targets(
                        &rta,
                        (mid, jportal_bytecode::Bci(bci as u32)),
                        *declared_in,
                        *slot,
                    );
                    assert!(
                        refined.iter().all(|t| cha.contains(t)),
                        "{}: refined ⊄ CHA at {:?}:{}",
                        w.name,
                        mid,
                        bci
                    );
                }
            }
        }
        // Retention property, against the ground-truth execution.
        let result = Jvm::default().run_threads(&w.program, &w.threads);
        assert!(result.thread_errors.is_empty(), "{} run failed", w.name);
        for t in result.truth.threads() {
            let trace = result.truth.trace(t);
            for pair in trace.windows(2) {
                let (e1, e2) = (&pair[0], &pair[1]);
                let insn = &w.program.method(e1.method).code[e1.bci.index()];
                if let I::InvokeVirtual { declared_in, slot } = insn {
                    // The next event after a dispatch is the callee entry.
                    if e2.bci.0 == 0 && e2.method != e1.method {
                        let refined = rta.refined_targets(*declared_in, *slot);
                        assert!(
                            refined.contains(&e2.method),
                            "{}: RTA dropped truth-taken target {:?} at {:?}:{}",
                            w.name,
                            e2.method,
                            e1.method,
                            e1.bci.0
                        );
                    }
                }
            }
        }
    }
}
