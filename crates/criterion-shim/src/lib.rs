//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of criterion's API that JPortal's benches use
//! (`Criterion`, benchmark groups, `iter` / `iter_batched`, throughput,
//! the `criterion_group!` / `criterion_main!` macros and `black_box`)
//! backed by a simple wall-clock harness: a warm-up phase, then timed
//! samples, reporting mean and min per-iteration time plus derived
//! throughput.
//!
//! Environment knobs:
//! - `JPORTAL_BENCH_QUICK=1` — one warm-up iteration and a short
//!   measurement window (used by CI to smoke-test benches).
//! - `JPORTAL_BENCH_JSON=path` — append one JSON object per benchmark to
//!   `path` (used to record baselines under `docs/results/`).

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units the per-iteration time is divided by to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup (accepted, not distinguished).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

fn quick_mode() -> bool {
    std::env::var("JPORTAL_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Sampled {
    /// Group name.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: f64,
    /// Iterations measured (after warm-up).
    pub iters: u64,
    /// Derived throughput, if configured.
    pub throughput: Option<(String, f64)>,
}

impl Sampled {
    fn json(&self) -> String {
        let tp = match &self.throughput {
            Some((unit, v)) => {
                format!(",\"throughput_unit\":\"{unit}\",\"throughput_per_sec\":{v:.1}")
            }
            None => String::new(),
        };
        format!(
            "{{\"group\":\"{}\",\"name\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"iters\":{}{}}}",
            self.group, self.name, self.mean_ns, self.min_ns, self.iters, tp
        )
    }
}

/// Per-iteration timing driver passed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    fn new() -> Bencher {
        let (warmup, measure) = if quick_mode() {
            (Duration::from_millis(5), Duration::from_millis(40))
        } else {
            (Duration::from_millis(300), Duration::from_secs(2))
        };
        Bencher {
            warmup,
            measure,
            samples: Vec::new(),
        }
    }

    /// Times `f` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let start = Instant::now();
        loop {
            black_box(f());
            if start.elapsed() >= self.warmup {
                break;
            }
        }
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_nanos() as f64);
            if start.elapsed() >= self.measure {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if start.elapsed() >= self.warmup {
                break;
            }
        }
        let start = Instant::now();
        let mut spent = Duration::ZERO;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            spent += dt;
            self.samples.push(dt.as_nanos() as f64);
            if start.elapsed() >= self.measure || spent >= self.measure {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput basis for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) {
        self.throughput = Some(tp);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        let iters = b.samples.len() as u64;
        let mean = if iters > 0 {
            b.samples.iter().sum::<f64>() / iters as f64
        } else {
            0.0
        };
        let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let throughput = self.throughput.map(|tp| {
            let (unit, per_iter) = match tp {
                Throughput::Bytes(n) => ("bytes", n),
                Throughput::Elements(n) => ("elements", n),
            };
            (unit.to_string(), per_iter as f64 / (mean / 1e9))
        });
        let sampled = Sampled {
            group: self.name.clone(),
            name: name.to_string(),
            mean_ns: mean,
            min_ns: if min.is_finite() { min } else { 0.0 },
            iters,
            throughput,
        };
        report(&sampled);
        self.criterion.results.push(sampled);
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn report(s: &Sampled) {
    let tp = match &s.throughput {
        Some((unit, v)) => {
            if unit == "bytes" {
                format!("  ({:.1} MiB/s)", v / (1024.0 * 1024.0))
            } else {
                format!("  ({v:.0} elem/s)")
            }
        }
        None => String::new(),
    };
    println!(
        "{}/{:<40} mean {:>12}  min {:>12}  ({} iters){}",
        s.group,
        s.name,
        human(s.mean_ns),
        human(s.min_ns),
        s.iters,
        tp
    );
    if let Ok(path) = std::env::var("JPORTAL_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "{}", s.json());
        }
    }
}

/// Harness entry point; collects results of every benchmark it runs.
#[derive(Default)]
pub struct Criterion {
    /// Everything measured so far.
    pub results: Vec<Sampled>,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; this harness ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("JPORTAL_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].iters > 0);
        assert!(c.results[0].throughput.is_some());
    }
}
