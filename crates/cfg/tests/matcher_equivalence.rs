//! Matcher-equivalence properties: the tabled/allocation-free fast paths
//! must be indistinguishable from the seed implementations, which are
//! kept verbatim as oracles ([`Nfa::match_from_reference`] and
//! [`AbstractNfa::abstract_accepts_from_reference`]).
//!
//! "Indistinguishable" is strict: same accept/reject outcome, same
//! rejection position, and the same witness path node for node — the
//! report determinism contract depends on the witness, not just on
//! acceptance.

use proptest::prelude::*;

use jportal_bytecode::builder::ProgramBuilder;
use jportal_bytecode::{CmpKind, Instruction as I, OpKind, Program};
use jportal_cfg::abs::AbstractNfa;
use jportal_cfg::tier::abstract_seq;
use jportal_cfg::{Icfg, MatchScratch, Nfa, Sym, Tier};

/// Same generator family as `properties.rs`: random block/branch scripts
/// over a verifying single-method program.
fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec((1usize..4, any::<u8>()), 2..10).prop_map(|blocks| {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("P", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.reserve_locals(1);
        let labels: Vec<_> = (0..blocks.len()).map(|_| m.label()).collect();
        let end = m.label();
        for (bi, &(body, branch)) in blocks.iter().enumerate() {
            m.bind(labels[bi]);
            for k in 0..body {
                match (bi + k) % 3 {
                    0 => {
                        m.emit(I::Iconst(k as i64));
                        m.emit(I::Pop);
                    }
                    1 => {
                        m.emit(I::Iload(0));
                        m.emit(I::Istore(0));
                    }
                    _ => {
                        m.emit(I::Iinc(0, 1));
                    }
                };
            }
            let target = labels
                .get(bi + 1 + (branch as usize % 3))
                .copied()
                .unwrap_or(end);
            match branch % 3 {
                0 => {
                    m.emit(I::Iload(0));
                    m.branch_if(CmpKind::Eq, target);
                }
                1 => {
                    if bi + 1 >= blocks.len() {
                        m.jump(end);
                    } else {
                        m.jump(target);
                    }
                }
                _ => {}
            }
        }
        m.bind(end);
        m.emit(I::Return);
        let id = m.finish();
        pb.finish_with_entry(id)
            .expect("generated program verifies")
    })
}

fn arb_syms() -> impl Strategy<Value = Vec<Sym>> {
    let ops = prop::sample::select(vec![
        OpKind::Iconst,
        OpKind::Pop,
        OpKind::Iload,
        OpKind::Istore,
        OpKind::Iinc,
        OpKind::Ifeq,
        OpKind::Goto,
        OpKind::Return,
        OpKind::InvokeStatic,
        OpKind::Ireturn,
    ]);
    prop::collection::vec(
        (ops, prop::option::of(any::<bool>())).prop_map(|(op, d)| match d {
            Some(t) => Sym::branch(op, t),
            None => Sym::plain(op),
        }),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The arena/generation-stamp set simulation equals the seed layered
    /// simulation: same outcome variant, same rejection index, same
    /// witness path — from the full start-candidate set and with a shared
    /// scratch reused across cases.
    #[test]
    fn scratch_matcher_equals_reference(program in arb_program(), syms in arb_syms()) {
        let icfg = Icfg::build(&program);
        let nfa = Nfa::new(&program, &icfg);
        let mut scratch = MatchScratch::new();
        if syms.is_empty() {
            return Ok(());
        }
        let starts = nfa.start_candidates(syms[0]);
        let fast = nfa.match_from_with(starts, &syms, &mut scratch);
        let oracle = nfa.match_from_reference(starts, &syms);
        prop_assert_eq!(&fast, &oracle);
        // Scratch reuse must not leak state between calls: run again on a
        // perturbed suffix with the same buffers.
        for cut in [syms.len() / 2, 1] {
            if cut == 0 {
                continue;
            }
            let tail = &syms[syms.len() - cut..];
            let starts = nfa.start_candidates(tail[0]);
            prop_assert_eq!(
                nfa.match_from_with(starts, tail, &mut scratch),
                nfa.match_from_reference(starts, tail)
            );
        }
    }

    /// Single-start matches agree too (the shape `enumerate_and_test`
    /// and recovery's constrained search exercise).
    #[test]
    fn scratch_matcher_equals_reference_single_start(
        program in arb_program(),
        syms in arb_syms(),
    ) {
        let icfg = Icfg::build(&program);
        let nfa = Nfa::new(&program, &icfg);
        let mut scratch = MatchScratch::new();
        if syms.is_empty() {
            return Ok(());
        }
        for &n in nfa.start_candidates(syms[0]) {
            let starts = [n];
            prop_assert_eq!(
                nfa.match_from_with(&starts, &syms, &mut scratch),
                nfa.match_from_reference(&starts, &syms)
            );
        }
    }

    /// The tabled abstract DFA agrees with the seed subset simulation for
    /// every candidate start — including on cache hits: each sequence is
    /// probed twice so the second pass reads memoized transitions.
    #[test]
    fn tabled_dfa_equals_reference(program in arb_program(), syms in arb_syms()) {
        let icfg = Icfg::build(&program);
        let anfa = AbstractNfa::new(&program, &icfg);
        let nfa = Nfa::new(&program, &icfg);
        if syms.is_empty() {
            return Ok(());
        }
        let abs = abstract_seq(&syms, Tier::Control);
        for _pass in 0..2 {
            for &n in nfa.start_candidates(syms[0]) {
                prop_assert_eq!(
                    anfa.abstract_accepts_from(n, syms[0], &abs),
                    anfa.abstract_accepts_from_reference(n, syms[0], &abs),
                    "start {:?}", n
                );
            }
        }
        // Counter sanity: probes never decrease and interning always
        // holds at least the empty set.
        let stats = anfa.dfa_stats();
        prop_assert!(stats.interned >= 1);
    }

    /// End to end: Algorithm 2 over the tabled DFA + scratch matcher
    /// returns exactly what the seed composition (reference abstract
    /// filter, then reference concrete match over the survivors) returns.
    #[test]
    fn algorithm2_is_unchanged(program in arb_program(), syms in arb_syms()) {
        let icfg = Icfg::build(&program);
        let nfa = Nfa::new(&program, &icfg);
        let anfa = AbstractNfa::new(&program, &icfg);
        let fast = anfa.algorithm2(&syms);
        // Seed composition, all-reference.
        let oracle = if syms.is_empty() {
            jportal_cfg::MatchOutcome::Accepted(Vec::new())
        } else {
            let abs = abstract_seq(&syms, Tier::Control);
            let survivors: Vec<_> = nfa
                .start_candidates(syms[0])
                .iter()
                .copied()
                .filter(|&n| anfa.abstract_accepts_from_reference(n, syms[0], &abs))
                .collect();
            if survivors.is_empty() {
                jportal_cfg::MatchOutcome::Rejected(0)
            } else {
                nfa.match_from_reference(&survivors, &syms)
            }
        };
        prop_assert_eq!(fast, oracle);
    }
}
