//! Property-based tests for the automata layer: the paper's lemmas and
//! the soundness of the abstraction, on randomly generated programs.

use proptest::prelude::*;

use jportal_bytecode::builder::ProgramBuilder;
use jportal_bytecode::{CmpKind, Instruction as I, OpKind, Program};
use jportal_cfg::abs::AbstractNfa;
use jportal_cfg::tier::{abstract_seq, common_suffix_len};
use jportal_cfg::{Icfg, Nfa, Sym, Tier};

/// A random but verifiable single-method program: a sequence of simple
/// blocks with random forward/backward branches.
fn arb_program() -> impl Strategy<Value = Program> {
    // Script: a list of (block body size, branch choice) pairs.
    prop::collection::vec((1usize..4, any::<u8>()), 2..10).prop_map(|blocks| {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("P", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        m.reserve_locals(1);
        let labels: Vec<_> = (0..blocks.len()).map(|_| m.label()).collect();
        let end = m.label();
        for (bi, &(body, branch)) in blocks.iter().enumerate() {
            m.bind(labels[bi]);
            for k in 0..body {
                match (bi + k) % 3 {
                    0 => {
                        m.emit(I::Iconst(k as i64));
                        m.emit(I::Pop);
                    }
                    1 => {
                        m.emit(I::Iload(0));
                        m.emit(I::Istore(0));
                    }
                    _ => {
                        m.emit(I::Iinc(0, 1));
                    }
                };
            }
            // Branch to a random *later* block (keeps programs terminating
            // even without interpretation limits) or fall through.
            let target = labels
                .get(bi + 1 + (branch as usize % 3))
                .copied()
                .unwrap_or(end);
            match branch % 3 {
                0 => {
                    m.emit(I::Iload(0));
                    m.branch_if(CmpKind::Eq, target);
                }
                1 => {
                    if bi + 1 >= blocks.len() {
                        m.jump(end);
                    } else {
                        m.jump(target);
                    }
                }
                _ => {}
            }
        }
        m.bind(end);
        m.emit(I::Return);
        let id = m.finish();
        pb.finish_with_entry(id)
            .expect("generated program verifies")
    })
}

fn arb_syms() -> impl Strategy<Value = Vec<Sym>> {
    let ops = prop::sample::select(vec![
        OpKind::Iconst,
        OpKind::Pop,
        OpKind::Iload,
        OpKind::Istore,
        OpKind::Iinc,
        OpKind::Ifeq,
        OpKind::Goto,
        OpKind::Return,
        OpKind::InvokeStatic,
        OpKind::Ireturn,
    ]);
    prop::collection::vec(
        (ops, prop::option::of(any::<bool>())).prop_map(|(op, d)| match d {
            Some(t) => Sym::branch(op, t),
            None => Sym::plain(op),
        }),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 4.4 (necessary condition): whenever the abstraction-guided
    /// Algorithm 2 rejects, the concrete enumerate-and-test (Algorithm 1)
    /// rejects too — and vice versa; the two always agree on acceptance.
    #[test]
    fn algorithm2_equals_algorithm1(program in arb_program(), syms in arb_syms()) {
        let icfg = Icfg::build(&program);
        let nfa = Nfa::new(&program, &icfg);
        let anfa = AbstractNfa::new(&program, &icfg);
        let a1 = nfa.enumerate_and_test(&syms).is_accepted();
        let a2 = anfa.algorithm2(&syms).is_accepted();
        prop_assert_eq!(a1, a2);
    }

    /// Any accepted witness path is a real path: consecutive nodes are
    /// connected by ICFG edges and each node's instruction matches the
    /// consumed symbol.
    #[test]
    fn witness_paths_are_sound(program in arb_program(), syms in arb_syms()) {
        let icfg = Icfg::build(&program);
        let nfa = Nfa::new(&program, &icfg);
        if let Some(path) = nfa.match_anywhere(&syms).path() {
            for (i, &n) in path.iter().enumerate() {
                prop_assert!(syms[i].matches_instruction(nfa.insn(n)));
                if i > 0 {
                    let prev = path[i - 1];
                    prop_assert!(
                        icfg.edges(prev).iter().any(|e| e.to == n
                            && e.kind.compatible_with(syms[i - 1].dir)),
                        "witness uses a non-edge"
                    );
                }
            }
        }
    }

    /// Definition 5.2: abstraction preserves order and keeps exactly the
    /// tier's symbols; tiers nest (α₁ ⊆ α₂ ⊆ ω).
    #[test]
    fn abstraction_is_an_order_preserving_filter(syms in arb_syms()) {
        let a1 = abstract_seq(&syms, Tier::CallStructure);
        let a2 = abstract_seq(&syms, Tier::Control);
        let a3 = abstract_seq(&syms, Tier::Concrete);
        prop_assert_eq!(a3.clone(), syms.clone());
        prop_assert!(a1.len() <= a2.len());
        prop_assert!(a2.len() <= a3.len());
        // a1 is a subsequence of a2, which is a subsequence of syms.
        fn is_subseq(a: &[Sym], b: &[Sym]) -> bool {
            let mut it = b.iter();
            a.iter().all(|x| it.any(|y| y == x))
        }
        prop_assert!(is_subseq(&a1, &a2));
        prop_assert!(is_subseq(&a2, &syms));
    }

    /// Lemma 5.4: the common suffix of the abstractions is at least as
    /// long as the abstraction of the common suffix.
    #[test]
    fn lemma_5_4(a in arb_syms(), b in arb_syms()) {
        for tier in [Tier::CallStructure, Tier::Control] {
            let m = common_suffix_len(&a, &b);
            let abstracted_suffix = abstract_seq(&a[a.len() - m..], tier).len();
            let suffix_of_abstracted =
                common_suffix_len(&abstract_seq(&a, tier), &abstract_seq(&b, tier));
            prop_assert!(
                suffix_of_abstracted >= abstracted_suffix,
                "tier {tier:?}: {suffix_of_abstracted} < {abstracted_suffix}"
            );
        }
    }

    /// ICFG structural invariants on arbitrary programs: every node's
    /// location round-trips, and every edge target is in range.
    #[test]
    fn icfg_well_formed(program in arb_program()) {
        let icfg = Icfg::build(&program);
        prop_assert_eq!(icfg.node_count(), program.code_size());
        for i in 0..icfg.node_count() as u32 {
            let n = jportal_cfg::NodeId(i);
            let (m, b) = icfg.location(n);
            prop_assert_eq!(icfg.node(m, b), n);
            for e in icfg.edges(n) {
                prop_assert!((e.to.0 as usize) < icfg.node_count());
            }
        }
    }
}
