//! The abstract NFA and abstraction-guided matching (Definitions 4.2/4.3,
//! Theorem 4.4, Algorithm 2).
//!
//! The abstraction keeps only control-flow symbols: every transition whose
//! target instruction is not control-related becomes an ε-transition
//! (Definition 4.3). Running the abstract automaton deterministically —
//! ε-closures plus subset construction, computed lazily — is the "DFA"
//! of Figure 5b. [`AbstractNfa::algorithm2`] stitches the two levels
//! together exactly as Algorithm 2: a candidate start state survives only
//! if the abstract sequence is accepted from it, and only survivors are
//! tried at the concrete level.

use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use jportal_bytecode::{OpKind, Program};
use jportal_obs::{ContentionCounter, Counter, MetricsRegistry};

use crate::fx::{FxHashMap, FxHasher};
use crate::icfg::{Icfg, NodeId};
use crate::nfa::{MatchOutcome, MatchScratch, Nfa};
use crate::sym::{BranchDir, Sym};
use crate::tier::{abstract_seq, Tier};

/// Shard count for the memoization maps: a power of two large enough
/// that concurrent projection workers rarely collide on a shard lock.
const CACHE_SHARDS: usize = 16;

/// A lock-striped hash map: keys are hashed to one of [`CACHE_SHARDS`]
/// independent `RwLock<HashMap>` shards, so concurrent readers never
/// contend globally and writers only serialize per shard. Both shard
/// selection and the inner maps hash with [`FxHasher`] — the keys are
/// internal values (node ids, interned set ids, opcodes), so SipHash's
/// DoS resistance buys nothing and its latency sat on the lookup path.
#[derive(Debug)]
struct ShardedCache<K, V> {
    shards: Vec<RwLock<FxHashMap<K, V>>>,
    /// Contention accounting over the shard locks (`lock.cfg.dfa_cache.*`
    /// when the pipeline wires its registry; noop otherwise).
    contention: ContentionCounter,
}

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    fn new(contention: ContentionCounter) -> ShardedCache<K, V> {
        ShardedCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            contention,
        }
    }

    fn shard(&self, key: &K) -> &RwLock<FxHashMap<K, V>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    fn get(&self, key: &K) -> Option<V> {
        self.contention.read(self.shard(key)).get(key).cloned()
    }

    fn insert(&self, key: K, value: V) {
        self.contention.write(self.shard(&key)).insert(key, value);
    }
}

/// Interned id of the empty abstract state-set — the DFA's dead state.
const EMPTY_SET: u32 = 0;

/// Hash-consing table for abstract state-sets.
///
/// Each distinct sorted set of control nodes gets one id; the tabled DFA
/// then works on `u32` ids, and a transition is a single cache probe
/// instead of a subset-construction fan-out. Id 0 is pre-interned as the
/// empty set so "dead state" is an integer compare.
///
/// Id assignment order depends on thread interleaving, but ids never
/// escape the automaton and acceptance only consults emptiness, so the
/// numbering is unobservable.
#[derive(Debug)]
struct StateSetInterner {
    inner: RwLock<InternerInner>,
    /// Shares the DFA caches' contention counter: the interner sits on
    /// the same projection hot path as the transition table.
    contention: ContentionCounter,
}

#[derive(Debug, Default)]
struct InternerInner {
    ids: FxHashMap<Arc<[NodeId]>, u32>,
    sets: Vec<Arc<[NodeId]>>,
}

impl StateSetInterner {
    fn new(contention: ContentionCounter) -> StateSetInterner {
        let empty: Arc<[NodeId]> = Vec::new().into();
        let mut inner = InternerInner::default();
        inner.ids.insert(Arc::clone(&empty), EMPTY_SET);
        inner.sets.push(empty);
        StateSetInterner {
            inner: RwLock::new(inner),
            contention,
        }
    }

    /// Canonicalizes `set` (sort + dedup in place) and returns its id,
    /// interning it if new.
    fn intern(&self, set: &mut Vec<NodeId>) -> u32 {
        set.sort_unstable();
        set.dedup();
        if set.is_empty() {
            return EMPTY_SET;
        }
        if let Some(&id) = self.contention.read(&self.inner).ids.get(set.as_slice()) {
            return id;
        }
        let mut w = self.contention.write(&self.inner);
        // Double-check under the write lock: a racing thread may have
        // interned the same set between our read probe and here.
        if let Some(&id) = w.ids.get(set.as_slice()) {
            return id;
        }
        let arc: Arc<[NodeId]> = set.as_slice().into();
        let id = w.sets.len() as u32;
        w.sets.push(Arc::clone(&arc));
        w.ids.insert(arc, id);
        id
    }

    /// The set behind an id.
    fn set(&self, id: u32) -> Arc<[NodeId]> {
        Arc::clone(&self.contention.read(&self.inner).sets[id as usize])
    }

    /// Number of interned sets (including the pre-interned empty set).
    fn len(&self) -> usize {
        self.inner.read().unwrap().sets.len()
    }
}

/// Counters from the tabled abstract DFA (Definition 4.3 made concrete):
/// transition-cache hits/misses and the number of distinct state-sets
/// interned. Scheduling-dependent under parallelism (racing workers may
/// both count a miss for the same entry), so report equality ignores
/// them — they are diagnostics, not results.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DfaCacheStats {
    /// Transitions answered from the memo table.
    pub hits: u64,
    /// Transitions that fell back to subset construction.
    pub misses: u64,
    /// Distinct abstract state-sets interned (including the empty set).
    pub interned: u64,
    /// Restart candidates rejected by the interprocedural summary filter
    /// before any DFA probe ran. Filled in by the pipeline (the ANFA
    /// itself knows nothing about summaries); zero when summaries are
    /// disabled.
    pub summary_pruned: u64,
}

/// The abstract NFA (ANFA) over an [`Icfg`], with memoized ε-closures.
///
/// # Examples
///
/// ```
/// use jportal_bytecode::builder::ProgramBuilder;
/// use jportal_bytecode::{Instruction, OpKind};
/// use jportal_cfg::abs::AbstractNfa;
/// use jportal_cfg::{Icfg, Sym};
///
/// let mut pb = ProgramBuilder::new();
/// let c = pb.add_class("C", None, 0);
/// let mut m = pb.method(c, "main", 0, false);
/// m.emit(Instruction::Iconst(1));
/// m.emit(Instruction::Pop);
/// m.emit(Instruction::Return);
/// let id = m.finish();
/// let p = pb.finish_with_entry(id)?;
/// let icfg = Icfg::build(&p);
/// let anfa = AbstractNfa::new(&p, &icfg);
/// let syms = [Sym::plain(OpKind::Iconst), Sym::plain(OpKind::Pop),
///             Sym::plain(OpKind::Return)];
/// assert!(anfa.algorithm2(&syms).is_accepted());
/// # Ok::<(), jportal_bytecode::VerifyError>(())
/// ```
#[derive(Debug)]
pub struct AbstractNfa<'a> {
    nfa: Nfa<'a>,
    /// Memoized: first control nodes reachable from a node through one
    /// dir-filtered edge followed by any chain of non-control nodes.
    /// Lock-striped so one `AbstractNfa` can be shared across workers.
    control_succ: ShardedCache<(NodeId, BranchDir), Arc<[NodeId]>>,
    /// Memoized: control nodes reachable from a node itself (used for the
    /// abstract start when the first trace symbol is non-control).
    control_closure: ShardedCache<NodeId, Arc<[NodeId]>>,
    /// Hash-consed abstract state-sets, shared across segments and
    /// workers for the lifetime of the automaton.
    interner: StateSetInterner,
    /// Memoized DFA transitions `(state-set id, incoming direction,
    /// next control op) → state-set id`. The consumed symbol's own
    /// direction does not shape the successor set (symbols match on op
    /// alone; the direction constrains the *next* step's edges), so it is
    /// deliberately absent from the key.
    transitions: ShardedCache<(u32, BranchDir, OpKind), u32>,
    /// Transition-cache hit count. A sharded [`Counter`] — detached for
    /// standalone automata, registry-backed (`cfg.dfa.hits`) when the
    /// pipeline binds its telemetry registry, and a branch-only no-op
    /// when that registry is disabled.
    hits: Counter,
    /// Transition-cache miss count (same lifecycle as `hits`).
    misses: Counter,
}

impl<'a> AbstractNfa<'a> {
    /// Builds the abstract view of the program's ICFG with detached
    /// (always-counting) cache counters.
    pub fn new(program: &'a Program, icfg: &'a Icfg) -> AbstractNfa<'a> {
        AbstractNfa::with_counters(
            program,
            icfg,
            Counter::detached(),
            Counter::detached(),
            ContentionCounter::noop(),
        )
    }

    /// Builds the abstract view with cache counters registered in a
    /// telemetry registry as `cfg.dfa.hits` / `cfg.dfa.misses`, plus
    /// lock-contention accounting over the striped caches and the
    /// state-set interner as `lock.cfg.dfa_cache.*`. With a disabled
    /// registry the counters are no-ops (and
    /// [`AbstractNfa::dfa_stats`] reads zero).
    pub fn with_metrics(
        program: &'a Program,
        icfg: &'a Icfg,
        registry: &MetricsRegistry,
    ) -> AbstractNfa<'a> {
        AbstractNfa::with_counters(
            program,
            icfg,
            registry.counter("cfg.dfa.hits"),
            registry.counter("cfg.dfa.misses"),
            ContentionCounter::register(registry, "lock.cfg.dfa_cache"),
        )
    }

    fn with_counters(
        program: &'a Program,
        icfg: &'a Icfg,
        hits: Counter,
        misses: Counter,
        contention: ContentionCounter,
    ) -> AbstractNfa<'a> {
        AbstractNfa {
            nfa: Nfa::new(program, icfg),
            control_succ: ShardedCache::new(contention.clone()),
            control_closure: ShardedCache::new(contention.clone()),
            interner: StateSetInterner::new(contention.clone()),
            transitions: ShardedCache::new(contention),
            hits,
            misses,
        }
    }

    /// Snapshot of the tabled-DFA cache counters (a view over the
    /// telemetry counters; zero when they are disabled no-ops).
    pub fn dfa_stats(&self) -> DfaCacheStats {
        DfaCacheStats {
            hits: self.hits.value(),
            misses: self.misses.value(),
            interned: self.interner.len() as u64,
            summary_pruned: 0,
        }
    }

    /// Fills the control-closure cache for **every** ICFG node (and the
    /// control-successor cache it rides on), fanning the computation over
    /// `workers` threads.
    ///
    /// Closures are pure functions of the ICFG, so pre-warming changes
    /// nothing observable — it only moves the cache misses out of the
    /// projection inner loop, where under concurrency they would all race
    /// to compute the same hot entries.
    pub fn prewarm(&self, workers: usize) {
        let n = self.nfa.icfg().node_count();
        jportal_par::par_map_range(workers, n, |i| {
            self.control_closure(NodeId(i as u32));
        });
    }

    /// The concrete NFA this abstraction refines to.
    pub fn concrete(&self) -> Nfa<'a> {
        self.nfa
    }

    fn is_control_node(&self, n: NodeId) -> bool {
        Tier::of_op(self.nfa.insn(n).op_kind()) <= Tier::Control
    }

    /// First control nodes reachable from `from` by one edge compatible
    /// with `dir`, then chains of non-control nodes.
    fn control_successors(&self, from: NodeId, dir: BranchDir) -> Arc<[NodeId]> {
        if let Some(cached) = self.control_succ.get(&(from, dir)) {
            return cached;
        }
        let icfg = self.nfa.icfg();
        let mut out: Vec<NodeId> = Vec::new();
        let mut visited = crate::fx::FxHashSet::default();
        let mut stack: Vec<NodeId> = icfg
            .edges(from)
            .iter()
            .filter(|e| e.kind.compatible_with(dir))
            .map(|e| e.to)
            .collect();
        while let Some(n) = stack.pop() {
            if !visited.insert(n) {
                continue;
            }
            if self.is_control_node(n) {
                out.push(n);
            } else {
                stack.extend(icfg.edges(n).iter().map(|e| e.to));
            }
        }
        let rc: Arc<[NodeId]> = out.into();
        self.control_succ.insert((from, dir), Arc::clone(&rc));
        rc
    }

    /// Control nodes reachable from `from` itself (including `from` when it
    /// is control) through non-control chains, unconstrained direction.
    fn control_closure(&self, from: NodeId) -> Arc<[NodeId]> {
        if let Some(cached) = self.control_closure.get(&from) {
            return cached;
        }
        let rc: Arc<[NodeId]> = if self.is_control_node(from) {
            vec![from].into()
        } else {
            self.control_successors(from, BranchDir::Unknown)
        };
        self.control_closure.insert(from, Arc::clone(&rc));
        rc
    }

    /// One tabled DFA step: the interned successor set of state-set `id`
    /// when the incoming edges are constrained by `prev_dir` and the next
    /// control symbol has op `op`. Misses run subset construction once;
    /// every later occurrence of the same `(id, dir, op)` context — hot
    /// loops dominate real traces — is a single cache probe.
    fn transition(&self, id: u32, prev_dir: BranchDir, op: OpKind) -> u32 {
        let key = (id, prev_dir, op);
        if let Some(next) = self.transitions.get(&key) {
            self.hits.incr();
            return next;
        }
        self.misses.incr();
        let states = self.interner.set(id);
        let mut next: Vec<NodeId> = Vec::new();
        for &u in states.iter() {
            for &v in self.control_successors(u, prev_dir).iter() {
                if self.nfa.insn(v).op_kind() == op {
                    next.push(v);
                }
            }
        }
        let next_id = self.interner.intern(&mut next);
        // Racing workers may compute the same entry; the interner
        // guarantees they agree on the id, so the insert is idempotent.
        self.transitions.insert(key, next_id);
        next_id
    }

    /// Necessary-condition test (Theorem 4.4): can the abstract sequence
    /// `abs` be accepted starting from concrete node `start` that has just
    /// consumed `first`?
    ///
    /// If this returns `false`, the concrete sequence cannot be accepted
    /// from `start` either.
    ///
    /// This is Definition 4.3's DFA made real: the current state-set is an
    /// interned id and each symbol is one [`AbstractNfa::transition`]
    /// probe, with the memo table persistent across segments and shared
    /// across workers. Equivalent to the per-call subset simulation kept
    /// as [`AbstractNfa::abstract_accepts_from_reference`] — acceptance
    /// only depends on whether the reachable set goes empty, which
    /// interning preserves exactly.
    pub fn abstract_accepts_from(&self, start: NodeId, first: Sym, abs: &[Sym]) -> bool {
        if abs.is_empty() {
            return true;
        }
        // Establish the abstract start configuration.
        let (mut states, mut prev_dir): (Vec<NodeId>, BranchDir) = if first.is_control() {
            // `start` consumed abs[0] (== first).
            (vec![start], first.dir)
        } else {
            // ε-advance to the first control nodes; they must match abs[0].
            (
                self.control_closure(start)
                    .iter()
                    .copied()
                    .filter(|&n| abs[0].matches_instruction(self.nfa.insn(n)))
                    .collect(),
                abs[0].dir,
            )
        };
        let mut id = self.interner.intern(&mut states);
        if id == EMPTY_SET {
            return false;
        }
        for &sym in &abs[1..] {
            id = self.transition(id, prev_dir, sym.op);
            if id == EMPTY_SET {
                return false;
            }
            prev_dir = sym.dir;
        }
        true
    }

    /// The seed per-call subset simulation, kept verbatim as the oracle
    /// for the matcher-equivalence property tests. Recomputes every step
    /// from scratch; not used on any hot path.
    pub fn abstract_accepts_from_reference(&self, start: NodeId, first: Sym, abs: &[Sym]) -> bool {
        // Establish the abstract start configuration.
        let (mut states, mut next_idx, mut prev_dir): (Vec<NodeId>, usize, BranchDir) =
            if first.is_control() {
                // `start` consumed abs[0] (== first).
                (vec![start], 1, first.dir)
            } else {
                // ε-advance to the first control nodes; they must match abs[0].
                (
                    self.control_closure(start)
                        .iter()
                        .copied()
                        .filter(|&n| {
                            abs.first()
                                .map(|s| s.matches_instruction(self.nfa.insn(n)))
                                .unwrap_or(true)
                        })
                        .collect(),
                    1,
                    abs.first().map(|s| s.dir).unwrap_or(BranchDir::Unknown),
                )
            };
        if abs.is_empty() {
            return true;
        }
        if states.is_empty() {
            return false;
        }
        while next_idx < abs.len() {
            let sym = abs[next_idx];
            let mut next: Vec<NodeId> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for &u in &states {
                for &v in self.control_successors(u, prev_dir).iter() {
                    if sym.matches_instruction(self.nfa.insn(v)) && seen.insert(v) {
                        next.push(v);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            states = next;
            prev_dir = sym.dir;
            next_idx += 1;
        }
        true
    }

    /// **Algorithm 2**: abstraction-guided control-flow reconstruction.
    ///
    /// Computes `ω̂ = α_s(ω)`, then for each candidate start state checks
    /// abstract acceptance first and only attempts the concrete match on
    /// survivors; the surviving starts are tried together in one concrete
    /// set-simulation, preserving the paper's "return the first accepting
    /// path" semantics.
    pub fn algorithm2(&self, syms: &[Sym]) -> MatchOutcome {
        self.algorithm2_with(syms, &mut MatchScratch::new())
    }

    /// [`AbstractNfa::algorithm2`] with caller-provided scratch buffers
    /// for the concrete set-simulation phase.
    pub fn algorithm2_with(&self, syms: &[Sym], scratch: &mut MatchScratch) -> MatchOutcome {
        if syms.is_empty() {
            return MatchOutcome::Accepted(Vec::new());
        }
        let abs = abstract_seq(syms, Tier::Control);
        let survivors: Vec<NodeId> = self
            .nfa
            .start_candidates(syms[0])
            .iter()
            .copied()
            .filter(|&n| self.abstract_accepts_from(n, syms[0], &abs))
            .collect();
        if survivors.is_empty() {
            return MatchOutcome::Rejected(0);
        }
        self.nfa.match_from_with(&survivors, syms, scratch)
    }

    /// Number of start candidates that survive the abstract filter, and
    /// the total candidate count (ablation metric for the benchmark).
    pub fn filter_stats(&self, syms: &[Sym]) -> (usize, usize) {
        if syms.is_empty() {
            return (0, 0);
        }
        let abs = abstract_seq(syms, Tier::Control);
        let candidates = self.nfa.start_candidates(syms[0]);
        let survivors = candidates
            .iter()
            .filter(|&&n| self.abstract_accepts_from(n, syms[0], &abs))
            .count();
        (survivors, candidates.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I, MethodId, OpKind};

    fn paper_fun() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Test", None, 0);
        let mut m = pb.method(c, "fun", 2, true);
        let else_ = m.label();
        let join = m.label();
        let odd = m.label();
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Eq, else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(1));
        m.emit(I::Iadd);
        m.emit(I::Istore(1));
        m.jump(join);
        m.bind(else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Isub);
        m.emit(I::Istore(1));
        m.bind(join);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Irem);
        m.branch_if(CmpKind::Ne, odd);
        m.emit(I::Iconst(1));
        m.emit(I::Ireturn);
        m.bind(odd);
        m.emit(I::Iconst(0));
        m.emit(I::Ireturn);
        let fun = m.finish();
        let mut main = pb.method(c, "main", 0, false);
        main.emit(I::Iconst(0));
        main.emit(I::Iconst(7));
        main.emit(I::InvokeStatic(fun));
        main.emit(I::Pop);
        main.emit(I::Return);
        let main = main.finish();
        (pb.finish_with_entry(main).unwrap(), fun)
    }

    fn syms(ops: &[(OpKind, Option<bool>)]) -> Vec<Sym> {
        ops.iter()
            .map(|&(op, dir)| match dir {
                Some(t) => Sym::branch(op, t),
                None => Sym::plain(op),
            })
            .collect()
    }

    #[test]
    fn algorithm2_agrees_with_algorithm1_on_accepts() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        let nfa = anfa.concrete();
        let trace = syms(&[
            (OpKind::Iload, None),
            (OpKind::Ifeq, Some(true)),
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Isub, None),
        ]);
        let a1 = nfa.enumerate_and_test(&trace);
        let a2 = anfa.algorithm2(&trace);
        assert!(a1.is_accepted());
        assert!(a2.is_accepted());
        assert_eq!(a1.path().unwrap(), a2.path().unwrap());
    }

    #[test]
    fn algorithm2_agrees_on_rejections() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        let nfa = anfa.concrete();
        // irem immediately followed by iadd occurs nowhere.
        let trace = syms(&[(OpKind::Irem, None), (OpKind::Iadd, None)]);
        assert!(!nfa.enumerate_and_test(&trace).is_accepted());
        assert!(!anfa.algorithm2(&trace).is_accepted());
    }

    #[test]
    fn theorem_4_4_abstract_rejection_implies_concrete_rejection() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        let nfa = anfa.concrete();
        // Control skeleton ifeq-taken then goto occurs nowhere in fun
        // (taken means the else path, which has no goto).
        let trace = syms(&[
            (OpKind::Iload, None),
            (OpKind::Ifeq, Some(true)),
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Isub, None),
            (OpKind::Istore, None),
            (OpKind::Goto, None),
        ]);
        let abs = abstract_seq(&trace, Tier::Control);
        for &n in nfa.start_candidates(trace[0]) {
            if !anfa.abstract_accepts_from(n, trace[0], &abs) {
                assert!(
                    !nfa.match_from(std::slice::from_ref(&n), &trace)
                        .is_accepted(),
                    "abstract rejected but concrete accepted from {n:?}"
                );
            }
        }
        assert!(!anfa.algorithm2(&trace).is_accepted());
    }

    #[test]
    fn abstract_filter_prunes_candidates() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        // iconst appears 5 times; only some of them lead to the skeleton
        // [ifne-taken, ireturn].
        let trace = syms(&[
            (OpKind::Iconst, None),
            (OpKind::Irem, None),
            (OpKind::Ifne, Some(true)),
            (OpKind::Iconst, None),
            (OpKind::Ireturn, None),
        ]);
        let (survivors, total) = anfa.filter_stats(&trace);
        assert!(
            survivors < total,
            "filter should prune ({survivors}/{total})"
        );
        assert!(survivors >= 1);
        assert!(anfa.algorithm2(&trace).is_accepted());
    }

    #[test]
    fn control_first_symbol_uses_its_direction() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        // Starting at a taken ifne: next control symbol must be ireturn
        // (via iconst_0 at bci 17) — accepted.
        let trace = syms(&[
            (OpKind::Ifne, Some(true)),
            (OpKind::Iconst, None),
            (OpKind::Ireturn, None),
        ]);
        assert!(anfa.algorithm2(&trace).is_accepted());
        // A not-taken ifne still reaches an ireturn (fall-through path
        // iconst_1 at 15, ireturn at 16) — also accepted, but along a
        // different path node.
        let trace2 = syms(&[
            (OpKind::Ifne, Some(false)),
            (OpKind::Iconst, None),
            (OpKind::Ireturn, None),
        ]);
        let p1 = anfa.algorithm2(&trace).path().unwrap().to_vec();
        let p2 = anfa.algorithm2(&trace2).path().unwrap().to_vec();
        assert_ne!(p1[1], p2[1]);
    }

    use jportal_bytecode::Program;

    #[test]
    fn anfa_is_shareable_across_threads() {
        fn assert_sync<T: Sync>(_: &T) {}
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        assert_sync(&anfa);
        // Concurrent matching through the shared caches agrees with the
        // single-threaded answer.
        let trace = syms(&[
            (OpKind::Iconst, None),
            (OpKind::Irem, None),
            (OpKind::Ifne, Some(true)),
            (OpKind::Iconst, None),
            (OpKind::Ireturn, None),
        ]);
        let expected = anfa.algorithm2(&trace);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        assert_eq!(anfa.algorithm2(&trace), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn prewarm_changes_nothing_observable() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let cold = AbstractNfa::new(&p, &icfg);
        let warm = AbstractNfa::new(&p, &icfg);
        warm.prewarm(4);
        let trace = syms(&[
            (OpKind::Iload, None),
            (OpKind::Ifeq, Some(true)),
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Isub, None),
        ]);
        assert_eq!(cold.algorithm2(&trace), warm.algorithm2(&trace));
        assert_eq!(cold.filter_stats(&trace), warm.filter_stats(&trace));
    }

    #[test]
    fn empty_sequence_accepts() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let anfa = AbstractNfa::new(&p, &icfg);
        assert!(anfa.algorithm2(&[]).is_accepted());
    }
}
