//! The ICFG as a nondeterministic finite automaton (Definition 4.1).
//!
//! A state corresponds to an ICFG node that has just been matched; a
//! transition on symbol `s` leads to each successor node whose instruction
//! matches `s` and whose connecting edge is compatible with the direction
//! recorded on the *previous* symbol (taken/not-taken from TNT packets).
//!
//! Both the paper's naive enumerate-and-test (Algorithm 1,
//! [`Nfa::enumerate_and_test`]) and the set-simulation used as the concrete
//! phase of Algorithm 2 ([`Nfa::match_from`]) are provided.

use jportal_bytecode::{Instruction, MethodId, Program};

use crate::icfg::{Icfg, NodeId};
use crate::sym::Sym;

/// Outcome of projecting a symbol sequence onto the ICFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchOutcome {
    /// The sequence is accepted; one witness path (one node per symbol) is
    /// returned — the disambiguated projection.
    Accepted(Vec<NodeId>),
    /// No path matches. The index of the first symbol at which every
    /// candidate died is returned (useful for splitting sequences).
    Rejected(usize),
}

impl MatchOutcome {
    /// The witness path, if accepted.
    pub fn path(&self) -> Option<&[NodeId]> {
        match self {
            MatchOutcome::Accepted(p) => Some(p),
            MatchOutcome::Rejected(_) => None,
        }
    }

    /// `true` if the sequence was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, MatchOutcome::Accepted(_))
    }
}

/// Reusable buffers for [`Nfa::match_from_with`] and friends.
///
/// Set simulation needs one frontier of `(state, back-pointer)` entries
/// per consumed symbol plus a per-symbol visited set. Allocating those
/// afresh for every segment (and a `HashSet` for every *symbol*) dominated
/// the projection inner loop, so the scratch keeps:
///
/// * `arena` — an append-only arena of `(state, parent)` entries, where
///   `parent` is an absolute arena index into the previous layer
///   (`u32::MAX` marks a start state). Layers are contiguous runs.
/// * `layer_starts` — the arena offset where each layer begins.
/// * `seen` — a generation-stamped dense visited array (`seen[n] == gen`
///   means node `n` already joined the current layer), so per-layer dedup
///   is two array accesses instead of a SipHash set probe.
///
/// One scratch may be reused across any number of matches (the buffers
/// only ever grow to the high-water mark); it is `begin`-reset internally
/// by every matching entry point.
#[derive(Debug, Default, Clone)]
pub struct MatchScratch {
    arena: Vec<(NodeId, u32)>,
    layer_starts: Vec<u32>,
    seen: Vec<u32>,
    generation: u32,
    /// Widest frontier layer seen since the last
    /// [`MatchScratch::reset_frontier_peak`] — the matcher's ambiguity
    /// high-water mark, accumulated *across* matches so a caller can
    /// meter a whole segment (which may restart several times).
    peak_width: u32,
}

impl MatchScratch {
    /// A fresh, empty scratch.
    pub fn new() -> MatchScratch {
        MatchScratch::default()
    }

    /// Resets per-match state and sizes `seen` for a graph of
    /// `node_count` nodes. O(1) amortized: nothing is zeroed unless the
    /// generation counter wraps.
    fn begin(&mut self, node_count: usize) {
        self.arena.clear();
        self.layer_starts.clear();
        if self.seen.len() < node_count {
            self.seen.resize(node_count, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // u32 wrap: old stamps could alias the new generation.
            self.seen.fill(0);
            self.generation = 1;
        }
    }

    /// Arena high-water mark in elements (the frontier arena only ever
    /// grows across matches; telemetry reads this into a gauge).
    pub fn arena_high_water(&self) -> usize {
        self.arena.capacity()
    }

    /// Size of the dense `seen` stamp array (== the largest node count
    /// this scratch has matched against).
    pub fn seen_size(&self) -> usize {
        self.seen.len()
    }

    /// Widest frontier layer (simultaneous NFA states for one symbol)
    /// since the last [`MatchScratch::reset_frontier_peak`]. A width of 1
    /// means the match was unambiguous throughout; wider layers measure
    /// how many alternative ICFG paths stayed viable.
    pub fn frontier_peak(&self) -> u32 {
        self.peak_width
    }

    /// Resets the frontier-peak accumulator (call at a segment boundary).
    pub fn reset_frontier_peak(&mut self) {
        self.peak_width = 0;
    }

    /// Folds the just-finished match's layer widths into the peak.
    fn note_peak(&mut self) {
        let n = self.layer_starts.len();
        for i in 0..n {
            let lo = self.layer_starts[i] as usize;
            let hi = if i + 1 < n {
                self.layer_starts[i + 1] as usize
            } else {
                self.arena.len()
            };
            self.peak_width = self.peak_width.max((hi - lo) as u32);
        }
    }

    /// Starts a new frontier layer; returns its arena offset.
    fn open_layer(&mut self) -> u32 {
        let at = self.arena.len() as u32;
        self.layer_starts.push(at);
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.seen.fill(0);
            self.generation = 1;
        }
        at
    }
}

/// NFA view over an [`Icfg`].
///
/// # Examples
///
/// ```
/// use jportal_bytecode::builder::ProgramBuilder;
/// use jportal_bytecode::{Instruction, OpKind};
/// use jportal_cfg::{Icfg, Nfa, Sym};
///
/// let mut pb = ProgramBuilder::new();
/// let c = pb.add_class("C", None, 0);
/// let mut m = pb.method(c, "main", 0, false);
/// m.emit(Instruction::Iconst(1));
/// m.emit(Instruction::Pop);
/// m.emit(Instruction::Return);
/// let id = m.finish();
/// let p = pb.finish_with_entry(id)?;
/// let icfg = Icfg::build(&p);
/// let nfa = Nfa::new(&p, &icfg);
/// let syms = [Sym::plain(OpKind::Iconst), Sym::plain(OpKind::Pop)];
/// let outcome = nfa.match_anywhere(&syms);
/// assert!(outcome.is_accepted());
/// # Ok::<(), jportal_bytecode::VerifyError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Nfa<'a> {
    program: &'a Program,
    icfg: &'a Icfg,
}

impl<'a> Nfa<'a> {
    /// Creates the NFA view.
    pub fn new(program: &'a Program, icfg: &'a Icfg) -> Nfa<'a> {
        Nfa { program, icfg }
    }

    /// The underlying ICFG.
    pub fn icfg(&self) -> &'a Icfg {
        self.icfg
    }

    /// The instruction at a node.
    pub fn insn(&self, node: NodeId) -> &'a Instruction {
        let (m, bci) = self.icfg.location(node);
        self.program.method(m).insn(bci)
    }

    /// Successor states of `state` on symbol `sym`, where `prev` is the
    /// symbol consumed at `state` (whose branch direction constrains the
    /// outgoing edge).
    pub fn step(&self, state: NodeId, prev: Sym, sym: Sym) -> impl Iterator<Item = NodeId> + '_ {
        self.icfg
            .edges(state)
            .iter()
            .filter(move |e| e.kind.compatible_with(prev.dir))
            .map(|e| e.to)
            .filter(move |&n| sym.matches_instruction(self.insn(n)))
    }

    /// Candidate start states: nodes whose instruction matches the first
    /// symbol. (Definition 4.1 allows any state to start; only these can
    /// consume the first symbol.)
    pub fn start_candidates(&self, first: Sym) -> &'a [NodeId] {
        self.icfg.nodes_with_op(first.op)
    }

    /// Set-simulation from the given start states; returns a witness path
    /// if the whole sequence is accepted from any of them.
    ///
    /// The witness has one node per symbol. When several paths are viable,
    /// the first-discovered one (stable in edge order) is returned — the
    /// paper likewise "picks one path that most likely corresponds to the
    /// actual execution".
    ///
    /// Convenience wrapper over [`Nfa::match_from_with`] with a one-shot
    /// scratch; hot callers should hold a [`MatchScratch`] and call the
    /// `_with` variant to reuse buffers across segments.
    pub fn match_from(&self, starts: &[NodeId], syms: &[Sym]) -> MatchOutcome {
        self.match_from_with(starts, syms, &mut MatchScratch::new())
    }

    /// Set-simulation using caller-provided scratch buffers: no per-symbol
    /// allocations and no hashing in the inner loop.
    ///
    /// Equivalent to [`Nfa::match_from_reference`] (outcome *and* witness
    /// path) — the frontier is walked in the same order and dedup is
    /// first-wins, so the "first-discovered" witness is identical; the
    /// matcher-equivalence property test pins this down.
    pub fn match_from_with(
        &self,
        starts: &[NodeId],
        syms: &[Sym],
        scratch: &mut MatchScratch,
    ) -> MatchOutcome {
        if syms.is_empty() {
            return MatchOutcome::Accepted(Vec::new());
        }
        scratch.begin(self.icfg.node_count());
        // Layer 0: start states that can consume the first symbol.
        // (No dedup: duplicate starts stay duplicated, as in the
        // reference; only subsequent layers deduplicate.)
        scratch.layer_starts.push(0);
        for &n in starts {
            if syms[0].matches_instruction(self.insn(n)) {
                scratch.arena.push((n, u32::MAX));
            }
        }
        if scratch.arena.is_empty() {
            return MatchOutcome::Rejected(0);
        }

        for (i, &sym) in syms.iter().enumerate().skip(1) {
            let prev_sym = syms[i - 1];
            let prev_lo = scratch.layer_starts[i - 1] as usize;
            let prev_hi = scratch.arena.len();
            let lo = scratch.open_layer() as usize;
            let generation = scratch.generation;
            for pi in prev_lo..prev_hi {
                let state = scratch.arena[pi].0;
                for e in self.icfg.edges(state) {
                    if !e.kind.compatible_with(prev_sym.dir) {
                        continue;
                    }
                    let succ = e.to;
                    if scratch.seen[succ.index()] == generation {
                        continue;
                    }
                    if sym.matches_instruction(self.insn(succ)) {
                        scratch.seen[succ.index()] = generation;
                        scratch.arena.push((succ, pi as u32));
                    }
                }
            }
            if scratch.arena.len() == lo {
                scratch.note_peak();
                return MatchOutcome::Rejected(i);
            }
        }
        scratch.note_peak();

        // Reconstruct a witness from the first accepting state, following
        // absolute arena back-pointers.
        let mut path = vec![NodeId(0); syms.len()];
        let mut at = scratch.layer_starts[syms.len() - 1] as usize;
        for slot in path.iter_mut().rev() {
            let (node, parent) = scratch.arena[at];
            *slot = node;
            if parent != u32::MAX {
                at = parent as usize;
            }
        }
        MatchOutcome::Accepted(path)
    }

    /// Longest constrained prefix match, the primitive behind segment
    /// projection: `starts` have already consumed `syms[0]`; consume as
    /// many further symbols as possible, where `pin(j)` (for `j ≥ 1`,
    /// relative to `syms`) optionally pins the state that must match
    /// symbol `j` (JIT-decoded events carry exact locations). Unlike
    /// [`Nfa::match_from_with`] a dead frontier is not a rejection — the
    /// longest matched prefix wins.
    ///
    /// `witness` is cleared and filled with one node per matched symbol
    /// (the first-discovered path, stable in edge order); the matched
    /// length (≥ 1, ≤ `syms.len()`) is returned. Start states are taken
    /// as-is — callers pre-filter or pin them.
    pub fn match_longest_constrained_with<P>(
        &self,
        starts: &[NodeId],
        syms: &[Sym],
        pin: P,
        scratch: &mut MatchScratch,
        witness: &mut Vec<NodeId>,
    ) -> usize
    where
        P: Fn(usize) -> Option<NodeId>,
    {
        debug_assert!(!starts.is_empty() && !syms.is_empty());
        scratch.begin(self.icfg.node_count());
        scratch.layer_starts.push(0);
        for &n in starts {
            scratch.arena.push((n, u32::MAX));
        }

        let mut matched = 1usize;
        for (j, &sym) in syms.iter().enumerate().skip(1) {
            let prev_sym = syms[j - 1];
            let want = pin(j);
            let prev_lo = scratch.layer_starts[j - 1] as usize;
            let prev_hi = scratch.arena.len();
            let lo = scratch.open_layer() as usize;
            let generation = scratch.generation;
            for pi in prev_lo..prev_hi {
                let state = scratch.arena[pi].0;
                for e in self.icfg.edges(state) {
                    if !e.kind.compatible_with(prev_sym.dir) {
                        continue;
                    }
                    let succ = e.to;
                    if let Some(w) = want {
                        if succ != w {
                            continue;
                        }
                    }
                    if scratch.seen[succ.index()] == generation {
                        continue;
                    }
                    if sym.matches_instruction(self.insn(succ)) {
                        scratch.seen[succ.index()] = generation;
                        scratch.arena.push((succ, pi as u32));
                    }
                }
            }
            if scratch.arena.len() == lo {
                // Dead frontier: drop the empty layer and stop.
                scratch.layer_starts.pop();
                break;
            }
            matched = j + 1;
        }
        scratch.note_peak();

        witness.clear();
        witness.resize(matched, NodeId(0));
        let mut at = scratch.layer_starts[matched - 1] as usize;
        for slot in witness.iter_mut().rev() {
            let (node, parent) = scratch.arena[at];
            *slot = node;
            if parent != u32::MAX {
                at = parent as usize;
            }
        }
        matched
    }

    /// The seed implementation of [`Nfa::match_from`], kept verbatim as
    /// the oracle for the matcher-equivalence property tests (per-layer
    /// `Vec`s, per-symbol `HashSet` dedup). Not used on any hot path.
    pub fn match_from_reference(&self, starts: &[NodeId], syms: &[Sym]) -> MatchOutcome {
        if syms.is_empty() {
            return MatchOutcome::Accepted(Vec::new());
        }
        // layers[i] = states after consuming syms[..=i], with back-pointer
        // into layers[i-1] for path reconstruction.
        let mut layers: Vec<Vec<(NodeId, usize)>> = Vec::with_capacity(syms.len());
        let first: Vec<(NodeId, usize)> = starts
            .iter()
            .copied()
            .filter(|&n| syms[0].matches_instruction(self.insn(n)))
            .map(|n| (n, usize::MAX))
            .collect();
        if first.is_empty() {
            return MatchOutcome::Rejected(0);
        }
        layers.push(first);

        for (i, &sym) in syms.iter().enumerate().skip(1) {
            let prev_sym = syms[i - 1];
            let prev_layer = layers.last().expect("non-empty");
            let mut next: Vec<(NodeId, usize)> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (pi, &(state, _)) in prev_layer.iter().enumerate() {
                for succ in self.step(state, prev_sym, sym) {
                    if seen.insert(succ) {
                        next.push((succ, pi));
                    }
                }
            }
            if next.is_empty() {
                return MatchOutcome::Rejected(i);
            }
            layers.push(next);
        }

        // Reconstruct a witness from the first accepting state.
        let mut path = vec![NodeId(0); syms.len()];
        let mut idx = 0usize;
        for i in (0..syms.len()).rev() {
            let (node, parent) = layers[i][idx];
            path[i] = node;
            idx = if parent == usize::MAX { 0 } else { parent };
        }
        MatchOutcome::Accepted(path)
    }

    /// Matches from every candidate start simultaneously (the efficient
    /// multi-start variant used by the reconstruction pipeline).
    pub fn match_anywhere(&self, syms: &[Sym]) -> MatchOutcome {
        self.match_anywhere_with(syms, &mut MatchScratch::new())
    }

    /// [`Nfa::match_anywhere`] with caller-provided scratch buffers.
    pub fn match_anywhere_with(&self, syms: &[Sym], scratch: &mut MatchScratch) -> MatchOutcome {
        if syms.is_empty() {
            return MatchOutcome::Accepted(Vec::new());
        }
        self.match_from_with(self.start_candidates(syms[0]), syms, scratch)
    }

    /// Matches starting exactly at a method's entry node (used when the
    /// trace is known to begin at an invocation).
    pub fn match_from_entry(&self, method: MethodId, syms: &[Sym]) -> MatchOutcome {
        self.match_from(&[self.icfg.entry_of(method)], syms)
    }

    /// **Algorithm 1** (enumerate and test), literally as in the paper:
    /// tries each candidate start state in turn and runs a full match from
    /// it alone. Exponentially redundant compared to [`Nfa::match_from`]
    /// over the whole candidate set; retained as the baseline for the
    /// abstraction-guided ablation benchmark.
    pub fn enumerate_and_test(&self, syms: &[Sym]) -> MatchOutcome {
        if syms.is_empty() {
            return MatchOutcome::Accepted(Vec::new());
        }
        let mut scratch = MatchScratch::new();
        let mut furthest = 0usize;
        for &n in self.start_candidates(syms[0]) {
            match self.match_from_with(std::slice::from_ref(&n), syms, &mut scratch) {
                MatchOutcome::Accepted(p) => return MatchOutcome::Accepted(p),
                MatchOutcome::Rejected(at) => furthest = furthest.max(at),
            }
        }
        MatchOutcome::Rejected(furthest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{Bci, CmpKind, Instruction as I, OpKind, Program};

    /// The paper's running example (Figure 2): fun(a, b).
    fn paper_fun() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Test", None, 0);
        let mut m = pb.method(c, "fun", 2, true);
        let else_ = m.label();
        let join = m.label();
        let odd = m.label();
        m.emit(I::Iload(0));
        m.branch_if(CmpKind::Eq, else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(1));
        m.emit(I::Iadd);
        m.emit(I::Istore(1));
        m.jump(join);
        m.bind(else_);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Isub);
        m.emit(I::Istore(1));
        m.bind(join);
        m.emit(I::Iload(1));
        m.emit(I::Iconst(2));
        m.emit(I::Irem);
        m.branch_if(CmpKind::Ne, odd);
        m.emit(I::Iconst(1));
        m.emit(I::Ireturn);
        m.bind(odd);
        m.emit(I::Iconst(0));
        m.emit(I::Ireturn);
        let fun = m.finish();
        let mut main = pb.method(c, "main", 0, false);
        main.emit(I::Iconst(0));
        main.emit(I::Iconst(7));
        main.emit(I::InvokeStatic(fun));
        main.emit(I::Pop);
        main.emit(I::Return);
        let main = main.finish();
        (pb.finish_with_entry(main).unwrap(), fun)
    }

    fn syms(ops: &[(OpKind, Option<bool>)]) -> Vec<Sym> {
        ops.iter()
            .map(|&(op, dir)| match dir {
                Some(t) => Sym::branch(op, t),
                None => Sym::plain(op),
            })
            .collect()
    }

    #[test]
    fn matches_the_paper_else_path() {
        // Figure 2(e): iload_0, ifeq taken, iload_1, iconst_2, isub,
        // istore_1, iload_1, iconst_2, irem, ifne taken, iconst_0, ireturn
        // — wait: the paper trace takes the else branch then returns true?
        // Figure 2(f): 0,1,11..18,22?,23: ifne not taken → iconst_1.
        let (p, fun) = paper_fun();
        let icfg = Icfg::build(&p);
        let nfa = Nfa::new(&p, &icfg);
        let trace = syms(&[
            (OpKind::Iload, None),
            (OpKind::Ifeq, Some(true)),
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Isub, None),
            (OpKind::Istore, None),
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Irem, None),
            (OpKind::Ifne, Some(false)),
            (OpKind::Iconst, None),
            (OpKind::Ireturn, None),
        ]);
        let out = nfa.match_from_entry(fun, &trace);
        let path = out.path().expect("accepted");
        let bcis: Vec<u32> = path.iter().map(|&n| icfg.bci_of(n).0).collect();
        assert_eq!(bcis, vec![0, 1, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]);
    }

    #[test]
    fn direction_disambiguates_branches() {
        let (p, fun) = paper_fun();
        let icfg = Icfg::build(&p);
        let nfa = Nfa::new(&p, &icfg);
        // Not-taken ifeq must go down the then-path: iload, iconst, iadd.
        let trace = syms(&[
            (OpKind::Iload, None),
            (OpKind::Ifeq, Some(false)),
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Iadd, None),
        ]);
        let out = nfa.match_from_entry(fun, &trace);
        let path = out.path().expect("accepted");
        assert_eq!(icfg.bci_of(path[4]), Bci(4));
    }

    #[test]
    fn rejects_impossible_sequences() {
        let (p, fun) = paper_fun();
        let icfg = Icfg::build(&p);
        let nfa = Nfa::new(&p, &icfg);
        // ifeq taken cannot be followed by iadd's path prefix iload,iconst,iadd...
        // actually else-path starts iload, iconst, isub — iadd mismatches at
        // index 4.
        let trace = syms(&[
            (OpKind::Iload, None),
            (OpKind::Ifeq, Some(true)),
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Iadd, None),
        ]);
        match nfa.match_from_entry(fun, &trace) {
            MatchOutcome::Rejected(at) => assert_eq!(at, 4),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn mid_trace_projection_from_anywhere() {
        // A segment starting in the middle of fun (after data loss) still
        // projects: irem, ifne taken, iconst, ireturn.
        let (p, _fun) = paper_fun();
        let icfg = Icfg::build(&p);
        let nfa = Nfa::new(&p, &icfg);
        let trace = syms(&[
            (OpKind::Irem, None),
            (OpKind::Ifne, Some(true)),
            (OpKind::Iconst, None),
            (OpKind::Ireturn, None),
        ]);
        let out = nfa.match_anywhere(&trace);
        let path = out.path().expect("accepted");
        let bcis: Vec<u32> = path.iter().map(|&n| icfg.bci_of(n).0).collect();
        assert_eq!(bcis, vec![13, 14, 17, 18]);
    }

    #[test]
    fn interprocedural_call_and_return() {
        let (p, fun) = paper_fun();
        let icfg = Icfg::build(&p);
        let nfa = Nfa::new(&p, &icfg);
        let main = p.entry();
        // main: iconst, iconst, invokestatic, [fun body...], pop, return
        let trace = syms(&[
            (OpKind::Iconst, None),
            (OpKind::Iconst, None),
            (OpKind::InvokeStatic, None),
            (OpKind::Iload, None), // fun@0
            (OpKind::Ifeq, Some(true)),
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Isub, None),
            (OpKind::Istore, None),
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Irem, None),
            (OpKind::Ifne, Some(false)),
            (OpKind::Iconst, None),
            (OpKind::Ireturn, None),
            (OpKind::Pop, None), // back in main
            (OpKind::Return, None),
        ]);
        let out = nfa.match_from_entry(main, &trace);
        let path = out.path().expect("accepted");
        assert_eq!(icfg.method_of(path[3]), fun);
        assert_eq!(icfg.method_of(path[15]), main);
    }

    #[test]
    fn algorithm1_agrees_with_set_simulation() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let nfa = Nfa::new(&p, &icfg);
        let trace = syms(&[
            (OpKind::Iload, None),
            (OpKind::Iconst, None),
            (OpKind::Irem, None),
        ]);
        let a = nfa.enumerate_and_test(&trace);
        let b = nfa.match_anywhere(&trace);
        assert!(a.is_accepted());
        assert!(b.is_accepted());
        assert_eq!(a.path().unwrap().len(), 3);
    }

    #[test]
    fn empty_sequence_is_accepted_trivially() {
        let (p, _) = paper_fun();
        let icfg = Icfg::build(&p);
        let nfa = Nfa::new(&p, &icfg);
        assert_eq!(nfa.match_anywhere(&[]), MatchOutcome::Accepted(Vec::new()));
    }
}
