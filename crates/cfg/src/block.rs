//! Per-method basic-block control-flow graphs.
//!
//! Used by the simulated JIT compiler (block layout, inlining) and the
//! Ball–Larus instrumentation baselines (edge numbering over the acyclic
//! reduction).

use jportal_bytecode::{Bci, Instruction, Method};
use std::collections::BTreeSet;

/// Identifier of a basic block within one method's [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: the maximal straight-line range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: Bci,
    /// One past the last instruction index.
    pub end: Bci,
    /// Successor blocks with the edge kind that reaches them.
    pub succs: Vec<(BlockId, BlockEdge)>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl Block {
    /// The bci of the block's terminating instruction.
    pub fn last(&self) -> Bci {
        Bci(self.end.0 - 1)
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end.0 - self.start.0) as usize
    }

    /// `true` if the block contains no instructions (never produced by
    /// [`Cfg::build`]; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The kind of a block-level CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockEdge {
    /// Sequential fall-through.
    FallThrough,
    /// Conditional branch taken.
    Taken,
    /// Unconditional `goto`.
    Jump,
    /// Switch arm `i` (`u32::MAX` = default arm).
    Switch(u32),
    /// Edge into an exception handler.
    Exception,
}

/// Basic-block CFG of a single method.
///
/// # Examples
///
/// ```
/// use jportal_bytecode::builder::ProgramBuilder;
/// use jportal_bytecode::{CmpKind, Instruction};
/// use jportal_cfg::Cfg;
///
/// let mut pb = ProgramBuilder::new();
/// let c = pb.add_class("C", None, 0);
/// let mut m = pb.method(c, "main", 0, false);
/// let exit = m.label();
/// m.emit(Instruction::Iconst(3));
/// m.branch_if(CmpKind::Le, exit);
/// m.emit(Instruction::Nop);
/// m.bind(exit);
/// m.emit(Instruction::Return);
/// let id = m.finish();
/// let p = pb.finish_with_entry(id)?;
/// let cfg = Cfg::build(p.method(id));
/// assert_eq!(cfg.block_count(), 3);
/// # Ok::<(), jportal_bytecode::VerifyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// Block containing each bci.
    block_of: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `method`.
    ///
    /// Leaders are: bci 0, branch/switch targets, instructions following a
    /// terminator or conditional branch, and exception-handler entries.
    /// Exception edges are added from every block containing a
    /// potentially-throwing instruction to the handlers covering it.
    pub fn build(method: &Method) -> Cfg {
        let code = &method.code;
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(0);
        for (i, insn) in code.iter().enumerate() {
            for t in insn.branch_targets() {
                leaders.insert(t.0);
            }
            let splits_after = insn.is_terminator() || insn.is_conditional_branch();
            if splits_after && i + 1 < code.len() {
                leaders.insert(i as u32 + 1);
            }
        }
        for h in &method.handlers {
            leaders.insert(h.handler.0);
        }

        let starts: Vec<u32> = leaders.into_iter().collect();
        let mut blocks: Vec<Block> = Vec::with_capacity(starts.len());
        let mut block_of = vec![BlockId(0); code.len()];
        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(code.len() as u32);
            for bci in start..end {
                block_of[bci as usize] = BlockId(bi as u32);
            }
            blocks.push(Block {
                start: Bci(start),
                end: Bci(end),
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }

        let block_at = |bci: Bci| block_of[bci.index()];
        let mut edges: Vec<(BlockId, BlockId, BlockEdge)> = Vec::new();
        for (bi, block) in blocks.iter().enumerate() {
            let from = BlockId(bi as u32);
            let last = &code[block.last().index()];
            match last {
                Instruction::Goto(t) => edges.push((from, block_at(*t), BlockEdge::Jump)),
                Instruction::If(_, t) | Instruction::IfICmp(_, t) | Instruction::IfNull(t) => {
                    edges.push((from, block_at(*t), BlockEdge::Taken));
                    edges.push((from, block_at(block.end), BlockEdge::FallThrough));
                }
                Instruction::TableSwitch {
                    targets, default, ..
                } => {
                    for (i, t) in targets.iter().enumerate() {
                        edges.push((from, block_at(*t), BlockEdge::Switch(i as u32)));
                    }
                    edges.push((from, block_at(*default), BlockEdge::Switch(u32::MAX)));
                }
                Instruction::LookupSwitch { pairs, default } => {
                    for (i, (_, t)) in pairs.iter().enumerate() {
                        edges.push((from, block_at(*t), BlockEdge::Switch(i as u32)));
                    }
                    edges.push((from, block_at(*default), BlockEdge::Switch(u32::MAX)));
                }
                insn if insn.is_terminator() => {}
                _ => edges.push((from, block_at(block.end), BlockEdge::FallThrough)),
            }
            // Exception edges from throwing instructions to covering handlers.
            for bci in block.start.0..block.end.0 {
                let insn = &code[bci as usize];
                if insn.can_throw() {
                    for h in &method.handlers {
                        if h.covers(Bci(bci)) {
                            let to = block_at(h.handler);
                            if !edges
                                .iter()
                                .any(|&(f, t, k)| f == from && t == to && k == BlockEdge::Exception)
                            {
                                edges.push((from, to, BlockEdge::Exception));
                            }
                        }
                    }
                }
            }
        }
        for (from, to, kind) in edges {
            blocks[from.index()].succs.push((to, kind));
            if !blocks[to.index()].preds.contains(&from) {
                blocks[to.index()].preds.push(from);
            }
        }

        Cfg { blocks, block_of }
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// The entry block (always `BlockId(0)`, containing bci 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The block containing instruction `bci`.
    ///
    /// # Panics
    ///
    /// Panics if `bci` is out of range.
    pub fn block_of(&self, bci: Bci) -> BlockId {
        self.block_of[bci.index()]
    }

    /// All blocks with ids.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Blocks in reverse post-order from the entry.
    ///
    /// Unreachable blocks (e.g. handlers never linked by an exception edge)
    /// are appended after the reachable ones in id order, so the result is
    /// always a permutation of all blocks.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS computing post-order.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry(), 0)];
        visited[self.entry().index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = &self.blocks[b.index()].succs;
            if *next < succs.len() {
                let (s, _) = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        for (i, &seen) in visited.iter().enumerate() {
            if !seen {
                post.push(BlockId(i as u32));
            }
        }
        post
    }

    /// Back edges `(from, to)` where `to` dominates... approximated as DFS
    /// retreating edges from the entry (sufficient for reducible bytecode
    /// CFGs, which is all the builder can produce).
    pub fn back_edges(&self) -> Vec<(BlockId, BlockId)> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.blocks.len()];
        let mut out = Vec::new();
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry(), 0)];
        color[self.entry().index()] = Color::Grey;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = &self.blocks[b.index()].succs;
            if *next < succs.len() {
                let (s, _) = succs[*next];
                *next += 1;
                match color[s.index()] {
                    Color::White => {
                        color[s.index()] = Color::Grey;
                        stack.push((s, 0));
                    }
                    Color::Grey => out.push((b, s)),
                    Color::Black => {}
                }
            } else {
                color[b.index()] = Color::Black;
                stack.pop();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I, Program};

    fn build(f: impl FnOnce(&mut jportal_bytecode::builder::MethodBuilder<'_>)) -> (Program, Cfg) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        f(&mut m);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let cfg = Cfg::build(p.method(id));
        (p, cfg)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, cfg) = build(|m| {
            m.emit(I::Iconst(1));
            m.emit(I::Pop);
            m.emit(I::Return);
        });
        assert_eq!(cfg.block_count(), 1);
        assert_eq!(cfg.block(BlockId(0)).len(), 3);
        assert!(cfg.block(BlockId(0)).succs.is_empty());
    }

    #[test]
    fn diamond_shape() {
        let (_, cfg) = build(|m| {
            let els = m.label();
            let join = m.label();
            m.emit(I::Iconst(1));
            m.branch_if(CmpKind::Eq, els);
            m.emit(I::Nop);
            m.jump(join);
            m.bind(els);
            m.emit(I::Nop);
            m.bind(join);
            m.emit(I::Return);
        });
        assert_eq!(cfg.block_count(), 4);
        let entry = cfg.block(cfg.entry());
        assert_eq!(entry.succs.len(), 2);
        let join = cfg.block_of(Bci(5));
        assert_eq!(cfg.block(join).preds.len(), 2);
    }

    #[test]
    fn loop_has_back_edge() {
        let (_, cfg) = build(|m| {
            let head = m.label();
            let exit = m.label();
            m.emit(I::Iconst(10));
            m.emit(I::Istore(0));
            m.bind(head);
            m.emit(I::Iload(0));
            m.branch_if(CmpKind::Le, exit);
            m.emit(I::Iinc(0, -1));
            m.jump(head);
            m.bind(exit);
            m.emit(I::Return);
        });
        let back = cfg.back_edges();
        assert_eq!(back.len(), 1);
        let (from, to) = back[0];
        assert_eq!(to, cfg.block_of(Bci(2)));
        assert_eq!(from, cfg.block_of(Bci(5)));
    }

    #[test]
    fn switch_fan_out() {
        let (_, cfg) = build(|m| {
            let a = m.label();
            let b = m.label();
            let d = m.label();
            m.emit(I::Iconst(1));
            m.table_switch(0, &[a, b], d);
            m.bind(a);
            m.emit(I::Return);
            m.bind(b);
            m.emit(I::Return);
            m.bind(d);
            m.emit(I::Return);
        });
        let entry = cfg.block(cfg.entry());
        assert_eq!(entry.succs.len(), 3);
        assert!(entry
            .succs
            .iter()
            .any(|&(_, k)| k == BlockEdge::Switch(u32::MAX)));
    }

    #[test]
    fn exception_edges_to_handler() {
        let (_, cfg) = build(|m| {
            let h = m.label();
            let start = m.here();
            m.emit(I::Iconst(1));
            m.emit(I::Iconst(0));
            m.emit(I::Idiv);
            m.emit(I::Pop);
            let end = m.here();
            m.emit(I::Return);
            m.add_handler(start, end, h, None);
            m.bind(h);
            m.emit(I::Pop);
            m.emit(I::Return);
        });
        let thrower = cfg.block_of(Bci(2));
        let handler = cfg.block_of(Bci(5));
        assert!(cfg
            .block(thrower)
            .succs
            .iter()
            .any(|&(t, k)| t == handler && k == BlockEdge::Exception));
    }

    #[test]
    fn rpo_starts_at_entry_and_is_permutation() {
        let (_, cfg) = build(|m| {
            let els = m.label();
            let join = m.label();
            m.emit(I::Iconst(1));
            m.branch_if(CmpKind::Eq, els);
            m.emit(I::Nop);
            m.jump(join);
            m.bind(els);
            m.emit(I::Nop);
            m.bind(join);
            m.emit(I::Return);
        });
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], cfg.entry());
        let mut sorted = rpo.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), cfg.block_count());
    }

    #[test]
    fn block_of_covers_every_bci() {
        let (p, cfg) = build(|m| {
            let exit = m.label();
            m.emit(I::Iconst(3));
            m.branch_if(CmpKind::Le, exit);
            m.emit(I::Nop);
            m.bind(exit);
            m.emit(I::Return);
        });
        let method = p.method(p.entry());
        for i in 0..method.code.len() {
            let b = cfg.block_of(Bci(i as u32));
            let blk = cfg.block(b);
            assert!(blk.start.0 as usize <= i && i < blk.end.0 as usize);
        }
    }
}
