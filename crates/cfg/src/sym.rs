//! Trace symbols: the alphabet Σ of the ICFG automaton.

use jportal_bytecode::{Instruction, OpKind};
use std::fmt;

/// Direction of a conditional branch attached to a symbol.
///
/// Hardware TNT packets reveal branch direction; the decoded symbol carries
/// it so the NFA can disambiguate taken/not-taken successors (the paper's
/// Figure 4b labels `ifeq 0` / `ifeq 1`). A symbol decoded without
/// direction (e.g. a switch arm) stays [`BranchDir::Unknown`] and matches
/// either edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BranchDir {
    /// No direction information.
    #[default]
    Unknown,
    /// The branch was taken.
    Taken,
    /// The branch fell through.
    NotTaken,
}

impl BranchDir {
    /// `true` if this direction is compatible with `other` (unknown is
    /// compatible with everything).
    pub fn matches(self, other: BranchDir) -> bool {
        self == BranchDir::Unknown || other == BranchDir::Unknown || self == other
    }

    /// Builds a direction from a taken flag.
    pub fn from_taken(taken: bool) -> BranchDir {
        if taken {
            BranchDir::Taken
        } else {
            BranchDir::NotTaken
        }
    }
}

impl fmt::Display for BranchDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BranchDir::Unknown => f.write_str("?"),
            BranchDir::Taken => f.write_str("1"),
            BranchDir::NotTaken => f.write_str("0"),
        }
    }
}

/// One decoded bytecode occurrence: the operation kind plus optional branch
/// direction.
///
/// The interpreted-mode decoder identifies the **opcode** (which template
/// ran), not its operand, so the alphabet is [`OpKind`]-granular; this is
/// exactly the ambiguity the paper's NFA formulation must disambiguate.
///
/// # Examples
///
/// ```
/// use jportal_bytecode::{Bci, CmpKind, Instruction, OpKind};
/// use jportal_cfg::{BranchDir, Sym};
///
/// let taken = Sym::branch(OpKind::Ifeq, true);
/// assert!(taken.matches_instruction(&Instruction::If(CmpKind::Eq, Bci(4))));
/// assert_eq!(taken.to_string(), "ifeq 1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym {
    /// Operation kind observed.
    pub op: OpKind,
    /// Branch direction, if the decoder learnt it.
    pub dir: BranchDir,
}

impl Sym {
    /// A symbol without direction information.
    pub fn plain(op: OpKind) -> Sym {
        Sym {
            op,
            dir: BranchDir::Unknown,
        }
    }

    /// A conditional-branch symbol with a known direction.
    pub fn branch(op: OpKind, taken: bool) -> Sym {
        Sym {
            op,
            dir: BranchDir::from_taken(taken),
        }
    }

    /// The symbol for an instruction occurrence with unknown direction.
    pub fn of_instruction(insn: &Instruction) -> Sym {
        Sym::plain(insn.op_kind())
    }

    /// `true` if this trace symbol can denote an occurrence of `insn`
    /// (ignoring direction — direction is checked against edges).
    pub fn matches_instruction(&self, insn: &Instruction) -> bool {
        self.op == insn.op_kind()
    }

    /// `true` for control-transfer symbols (the tier-2 alphabet of the
    /// abstract NFA, Definition 4.2).
    pub fn is_control(&self) -> bool {
        crate::tier::Tier::of_op(self.op) <= crate::tier::Tier::Control
    }

    /// `true` for call/return symbols (the tier-1 alphabet, Definition 5.2).
    pub fn is_call_structure(&self) -> bool {
        crate::tier::Tier::of_op(self.op) == crate::tier::Tier::CallStructure
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dir {
            BranchDir::Unknown => write!(f, "{}", self.op),
            d => write!(f, "{} {}", self.op, d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::{Bci, CmpKind};

    #[test]
    fn direction_compatibility() {
        assert!(BranchDir::Unknown.matches(BranchDir::Taken));
        assert!(BranchDir::Taken.matches(BranchDir::Unknown));
        assert!(BranchDir::Taken.matches(BranchDir::Taken));
        assert!(!BranchDir::Taken.matches(BranchDir::NotTaken));
    }

    #[test]
    fn symbol_matches_op_kind_only() {
        let s = Sym::plain(OpKind::Iload);
        assert!(s.matches_instruction(&Instruction::Iload(0)));
        assert!(s.matches_instruction(&Instruction::Iload(7)));
        assert!(!s.matches_instruction(&Instruction::Istore(0)));
    }

    #[test]
    fn control_classification() {
        assert!(Sym::plain(OpKind::Goto).is_control());
        assert!(Sym::plain(OpKind::InvokeStatic).is_control());
        assert!(Sym::plain(OpKind::InvokeStatic).is_call_structure());
        assert!(!Sym::plain(OpKind::Iadd).is_control());
        assert!(!Sym::plain(OpKind::Ifeq).is_call_structure());
        assert!(Sym::plain(OpKind::Ireturn).is_call_structure());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Sym::plain(OpKind::Iadd).to_string(), "iadd");
        assert_eq!(Sym::branch(OpKind::Ifne, false).to_string(), "ifne 0");
        let b = Sym::of_instruction(&Instruction::If(CmpKind::Ne, Bci(3)));
        assert_eq!(b.dir, BranchDir::Unknown);
    }
}
