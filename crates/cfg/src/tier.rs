//! The three-tier abstraction hierarchy of Definition 5.2.
//!
//! Tier 1 (highest): **call structure** — calls and returns.
//! Tier 2: **control structure** — tier 1 plus branches, jumps, switches
//! and throws (Definition 4.2).
//! Tier 3 (concrete): every instruction.
//!
//! The abstraction function `α_l` removes all instructions above tier `l`;
//! [`abstract_seq`] implements it for symbol sequences.

use jportal_bytecode::OpKind;

use crate::sym::Sym;

/// The tier of an instruction kind. Lower `u8` value = higher abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Tier {
    /// Calls and returns (tier 1).
    CallStructure = 1,
    /// All control transfers (tier 2).
    Control = 2,
    /// Everything else (tier 3, concrete).
    Concrete = 3,
}

impl Tier {
    /// Classifies an operation kind.
    pub fn of_op(op: OpKind) -> Tier {
        use OpKind::*;
        match op {
            InvokeStatic | InvokeVirtual | Ireturn | Areturn | Return => Tier::CallStructure,
            Goto | Ifeq | Ifne | Iflt | Ifge | Ifgt | Ifle | IfIcmpeq | IfIcmpne | IfIcmplt
            | IfIcmpge | IfIcmpgt | IfIcmple | Ifnull | TableSwitch | LookupSwitch | Athrow => {
                Tier::Control
            }
            _ => Tier::Concrete,
        }
    }

    /// `true` if an op of tier `t` survives abstraction at this tier
    /// (i.e. `t ≤ self`).
    pub fn keeps(self, op: OpKind) -> bool {
        Tier::of_op(op) <= self
    }
}

/// `α_l(ω)`: the subsequence of `seq` whose operations are at or above
/// tier `l` (Definition 5.2). `α_3` is the identity.
///
/// # Examples
///
/// ```
/// use jportal_bytecode::OpKind;
/// use jportal_cfg::tier::{abstract_seq, Tier};
/// use jportal_cfg::Sym;
///
/// let seq = [
///     Sym::plain(OpKind::Iload),
///     Sym::plain(OpKind::Ifeq),
///     Sym::plain(OpKind::InvokeStatic),
/// ];
/// let a1 = abstract_seq(&seq, Tier::CallStructure);
/// assert_eq!(a1.len(), 1);
/// let a2 = abstract_seq(&seq, Tier::Control);
/// assert_eq!(a2.len(), 2);
/// assert_eq!(abstract_seq(&seq, Tier::Concrete).len(), 3);
/// ```
pub fn abstract_seq(seq: &[Sym], tier: Tier) -> Vec<Sym> {
    seq.iter().copied().filter(|s| tier.keeps(s.op)).collect()
}

/// Length of the longest common **suffix** of `a` and `b` (the matching
/// operator `◦` of Lemma 5.3 measures matches from segment ends backwards).
pub fn common_suffix_len(a: &[Sym], b: &[Sym]) -> usize {
    a.iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count()
}

/// Length of the longest common **prefix** of `a` and `b`.
pub fn common_prefix_len(a: &[Sym], b: &[Sym]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(op: OpKind) -> Sym {
        Sym::plain(op)
    }

    #[test]
    fn tier_ordering() {
        assert!(Tier::CallStructure < Tier::Control);
        assert!(Tier::Control < Tier::Concrete);
    }

    #[test]
    fn classification_matches_paper() {
        assert_eq!(Tier::of_op(OpKind::InvokeVirtual), Tier::CallStructure);
        assert_eq!(Tier::of_op(OpKind::Return), Tier::CallStructure);
        assert_eq!(Tier::of_op(OpKind::Goto), Tier::Control);
        assert_eq!(Tier::of_op(OpKind::TableSwitch), Tier::Control);
        assert_eq!(Tier::of_op(OpKind::Athrow), Tier::Control);
        assert_eq!(Tier::of_op(OpKind::Iadd), Tier::Concrete);
        assert_eq!(Tier::of_op(OpKind::Iload), Tier::Concrete);
    }

    #[test]
    fn abstraction_preserves_order_def_5_2() {
        let seq = [
            s(OpKind::Iload),
            s(OpKind::InvokeStatic),
            s(OpKind::Iadd),
            s(OpKind::Ifeq),
            s(OpKind::Ireturn),
        ];
        let a2 = abstract_seq(&seq, Tier::Control);
        assert_eq!(
            a2,
            vec![s(OpKind::InvokeStatic), s(OpKind::Ifeq), s(OpKind::Ireturn)]
        );
        let a1 = abstract_seq(&seq, Tier::CallStructure);
        assert_eq!(a1, vec![s(OpKind::InvokeStatic), s(OpKind::Ireturn)]);
    }

    #[test]
    fn tiers_nest() {
        // tier-1 symbols are a subset of tier-2 symbols for any sequence
        let seq: Vec<Sym> = OpKind::ALL.iter().map(|&op| s(op)).collect();
        let a1 = abstract_seq(&seq, Tier::CallStructure);
        let a2 = abstract_seq(&seq, Tier::Control);
        assert!(a1.iter().all(|x| a2.contains(x)));
    }

    #[test]
    fn suffix_and_prefix_lengths() {
        let a = [s(OpKind::Iload), s(OpKind::Iadd), s(OpKind::Ireturn)];
        let b = [s(OpKind::Istore), s(OpKind::Iadd), s(OpKind::Ireturn)];
        assert_eq!(common_suffix_len(&a, &b), 2);
        assert_eq!(common_prefix_len(&a, &b), 0);
        assert_eq!(common_suffix_len(&a, &a), 3);
        assert_eq!(common_suffix_len(&a, &[]), 0);
    }

    #[test]
    fn lemma_5_3_monotonicity_spot_check() {
        // |ω0 ◦ ω1| ≥ |ω0 ◦ ω2| ⇒ |α2(ω0 ◦ ω1)| ≥ |α2(ω0 ◦ ω2)|
        let w0 = [s(OpKind::Ifeq), s(OpKind::Iload), s(OpKind::Iadd)];
        let w1 = [s(OpKind::Ifeq), s(OpKind::Iload), s(OpKind::Iadd)];
        let w2 = [s(OpKind::Iload), s(OpKind::Iadd)];
        let c1 = common_suffix_len(&w0, &w1);
        let c2 = common_suffix_len(&w0, &w2);
        assert!(c1 >= c2);
        let a1 = abstract_seq(&w0[w0.len() - c1..], Tier::Control).len();
        let a2 = abstract_seq(&w0[w0.len() - c2..], Tier::Control).len();
        assert!(a1 >= a2);
    }
}
