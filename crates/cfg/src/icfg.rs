//! The instruction-granular interprocedural control-flow graph (§4).
//!
//! Nodes are instruction occurrences `(method, bci)`; edges are the
//! "potential-next-instruction-to-execute" relation of Definition 4.1:
//! fall-through, conditional branches (taken/not-taken), switch arms,
//! calls into every statically-possible callee (class-hierarchy analysis
//! for virtual calls), returns back to every potential call site's
//! continuation, and exception edges — including transitive propagation of
//! uncaught exceptions into caller handlers.

use jportal_bytecode::{Bci, ClassId, Instruction, MethodId, OpKind, Program};
use std::collections::HashMap;

use crate::sym::BranchDir;

/// Resolves the possible callees of a virtual call site during ICFG
/// construction.
///
/// [`Icfg::build`] uses plain class-hierarchy analysis (every subclass's
/// vtable entry); a static analysis such as rapid type analysis can pass a
/// refined resolver to [`Icfg::build_with_targets`] to drop targets whose
/// receiver class is never instantiated. A resolver must only ever
/// *narrow* the CHA set — returning a superset would create edges the NFA
/// semantics of §4 do not justify.
pub trait CallTargetResolver {
    /// Possible targets of `invokevirtual declared_in.slot` at
    /// `(method, bci)`.
    fn virtual_targets(
        &self,
        site: (MethodId, Bci),
        declared_in: ClassId,
        slot: u16,
    ) -> Vec<MethodId>;
}

/// The default resolver: class-hierarchy analysis over the whole program.
struct ChaResolver<'p>(&'p Program);

impl CallTargetResolver for ChaResolver<'_> {
    fn virtual_targets(
        &self,
        _site: (MethodId, Bci),
        declared_in: ClassId,
        slot: u16,
    ) -> Vec<MethodId> {
        self.0.virtual_targets(declared_in, slot)
    }
}

/// Identifier of an ICFG node (an instruction occurrence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of an ICFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Sequential successor.
    FallThrough,
    /// Conditional branch, taken.
    Taken,
    /// Conditional branch, not taken (distinct from plain fall-through so
    /// direction constraints from TNT packets can be applied).
    NotTaken,
    /// Unconditional jump.
    Jump,
    /// Switch dispatch (any arm).
    Switch,
    /// Call edge into a callee entry.
    Call,
    /// Return edge to a call continuation.
    Return,
    /// Exception edge into a handler entry.
    Exception,
}

impl EdgeKind {
    /// `true` if an edge of this kind may be followed after consuming a
    /// conditional-branch symbol with direction `dir` at the source node.
    ///
    /// Non-branch kinds are unconstrained.
    pub fn compatible_with(self, dir: BranchDir) -> bool {
        match self {
            EdgeKind::Taken => dir.matches(BranchDir::Taken),
            EdgeKind::NotTaken => dir.matches(BranchDir::NotTaken),
            _ => true,
        }
    }
}

/// An outgoing ICFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Destination node.
    pub to: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// The interprocedural CFG of a whole program.
///
/// # Examples
///
/// ```
/// use jportal_bytecode::builder::ProgramBuilder;
/// use jportal_bytecode::Instruction;
/// use jportal_cfg::Icfg;
///
/// let mut pb = ProgramBuilder::new();
/// let c = pb.add_class("C", None, 0);
/// let mut m = pb.method(c, "main", 0, false);
/// m.emit(Instruction::Iconst(1));
/// m.emit(Instruction::Pop);
/// m.emit(Instruction::Return);
/// let id = m.finish();
/// let p = pb.finish_with_entry(id)?;
/// let icfg = Icfg::build(&p);
/// assert_eq!(icfg.node_count(), 3);
/// # Ok::<(), jportal_bytecode::VerifyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Icfg {
    /// First node id of each method; `base[m] + bci` is the node of
    /// `(m, bci)`. One extra sentinel entry holds the total node count.
    base: Vec<u32>,
    /// Owning method per node.
    method_of: Vec<MethodId>,
    /// CSR adjacency: edges of node `n` are
    /// `edge_data[edge_offsets[n]..edge_offsets[n + 1]]`. Contiguous
    /// storage keeps the matcher's fan-out loops on one cache line per
    /// node instead of chasing a `Vec<Vec<_>>` indirection per visit.
    edge_offsets: Vec<u32>,
    /// CSR adjacency payload, per-node order preserved from construction.
    edge_data: Vec<Edge>,
    /// Dense op-kind index: nodes whose instruction has kind `op` are
    /// `op_nodes[op_ranges[op as usize] .. op_ranges[op as usize + 1]]`,
    /// ascending by node id (candidate starting points for projection,
    /// paper §4 "Problem Formulation").
    op_ranges: Vec<u32>,
    /// Concatenated per-op node lists backing `op_ranges`.
    op_nodes: Vec<NodeId>,
}

impl Icfg {
    /// Builds the ICFG of `program` with class-hierarchy-analysis call
    /// edges (every virtual call fans out to every subclass override).
    pub fn build(program: &Program) -> Icfg {
        Icfg::build_with_targets(program, &ChaResolver(program))
    }

    /// Builds the ICFG of `program`, asking `resolver` for the callees of
    /// each virtual call site. Return edges, call-site continuations and
    /// the uncaught-exception propagation fixpoint all follow the refined
    /// call graph, so narrowing virtual dispatch shrinks every derived
    /// edge family, not just the `Call` edges.
    pub fn build_with_targets(program: &Program, resolver: &dyn CallTargetResolver) -> Icfg {
        let mut base = Vec::with_capacity(program.method_count() + 1);
        let mut method_of = Vec::new();
        let mut total = 0u32;
        for (id, method) in program.methods() {
            base.push(total);
            total += method.code.len() as u32;
            method_of.extend(std::iter::repeat_n(id, method.code.len()));
        }
        base.push(total);

        let node = |m: MethodId, b: Bci| NodeId(base[m.index()] + b.0);
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); total as usize];
        let push = |edges: &mut Vec<Vec<Edge>>, from: NodeId, to: NodeId, kind: EdgeKind| {
            let list = &mut edges[from.index()];
            let e = Edge { to, kind };
            if !list.contains(&e) {
                list.push(e);
            }
        };

        // Call-site continuations per callee, for return edges.
        let mut continuations: HashMap<MethodId, Vec<NodeId>> = HashMap::new();
        // Call sites per callee (for exception propagation).
        let mut call_sites: HashMap<MethodId, Vec<(MethodId, Bci)>> = HashMap::new();

        for (mid, method) in program.methods() {
            for (i, insn) in method.code.iter().enumerate() {
                let bci = Bci(i as u32);
                let from = node(mid, bci);
                match insn {
                    Instruction::Goto(t) => {
                        push(&mut edges, from, node(mid, *t), EdgeKind::Jump);
                    }
                    Instruction::If(_, t) | Instruction::IfICmp(_, t) | Instruction::IfNull(t) => {
                        push(&mut edges, from, node(mid, *t), EdgeKind::Taken);
                        push(&mut edges, from, node(mid, bci.next()), EdgeKind::NotTaken);
                    }
                    Instruction::TableSwitch {
                        targets, default, ..
                    } => {
                        for t in targets.iter().chain(std::iter::once(default)) {
                            push(&mut edges, from, node(mid, *t), EdgeKind::Switch);
                        }
                    }
                    Instruction::LookupSwitch { pairs, default } => {
                        for t in pairs.iter().map(|(_, t)| t).chain(std::iter::once(default)) {
                            push(&mut edges, from, node(mid, *t), EdgeKind::Switch);
                        }
                    }
                    Instruction::InvokeStatic(callee) => {
                        push(&mut edges, from, node(*callee, Bci(0)), EdgeKind::Call);
                        continuations
                            .entry(*callee)
                            .or_default()
                            .push(node(mid, bci.next()));
                        call_sites.entry(*callee).or_default().push((mid, bci));
                    }
                    Instruction::InvokeVirtual { declared_in, slot } => {
                        for callee in resolver.virtual_targets((mid, bci), *declared_in, *slot) {
                            push(&mut edges, from, node(callee, Bci(0)), EdgeKind::Call);
                            continuations
                                .entry(callee)
                                .or_default()
                                .push(node(mid, bci.next()));
                            call_sites.entry(callee).or_default().push((mid, bci));
                        }
                    }
                    Instruction::Ireturn | Instruction::Areturn | Instruction::Return => {
                        // Return edges are added after continuations are
                        // complete, below.
                    }
                    Instruction::Athrow => {
                        // Exception edges are added below.
                    }
                    _ => {
                        push(
                            &mut edges,
                            from,
                            node(mid, bci.next()),
                            EdgeKind::FallThrough,
                        );
                    }
                }
            }
        }

        // Return edges: context-insensitively to every continuation of
        // every potential call site of the returning method.
        for (mid, method) in program.methods() {
            let conts = continuations.get(&mid);
            for (i, insn) in method.code.iter().enumerate() {
                if insn.is_return() {
                    if let Some(conts) = conts {
                        let from = node(mid, Bci(i as u32));
                        for &c in conts {
                            push(&mut edges, from, c, EdgeKind::Return);
                        }
                    }
                }
            }
        }

        // Exception targets: fixpoint of uncaught-exception propagation.
        // escape_targets[m] = handler nodes an exception escaping m can
        // reach (in callers, transitively).
        let mut escape_targets: Vec<Vec<NodeId>> = vec![Vec::new(); program.method_count()];
        loop {
            let mut changed = false;
            for (mid, _method) in program.methods() {
                let mut acc: Vec<NodeId> = Vec::new();
                if let Some(sites) = call_sites.get(&mid) {
                    for &(caller, at) in sites {
                        let caller_m = program.method(caller);
                        let mut caught_all = false;
                        for h in &caller_m.handlers {
                            if h.covers(at) {
                                acc.push(node(caller, h.handler));
                                if h.catch_class.is_none() {
                                    caught_all = true;
                                    break;
                                }
                            }
                        }
                        if !caught_all {
                            for &t in &escape_targets[caller.index()] {
                                acc.push(t);
                            }
                        }
                    }
                }
                acc.sort();
                acc.dedup();
                if acc != escape_targets[mid.index()] {
                    escape_targets[mid.index()] = acc;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Exception edges from throwing instructions: to local covering
        // handlers; if no catch-all covers the site, also to the method's
        // escape targets.
        for (mid, method) in program.methods() {
            for (i, insn) in method.code.iter().enumerate() {
                if !insn.can_throw() {
                    continue;
                }
                let bci = Bci(i as u32);
                let from = node(mid, bci);
                let mut caught_all = false;
                for h in &method.handlers {
                    if h.covers(bci) {
                        push(&mut edges, from, node(mid, h.handler), EdgeKind::Exception);
                        if h.catch_class.is_none() {
                            caught_all = true;
                            break;
                        }
                    }
                }
                if !caught_all {
                    for &t in escape_targets[mid.index()].clone().iter() {
                        push(&mut edges, from, t, EdgeKind::Exception);
                    }
                }
            }
        }

        // Flatten the per-node adjacency lists into CSR form. Per-node
        // edge order (and thus every `edges()` observer) is unchanged.
        let mut edge_offsets = Vec::with_capacity(edges.len() + 1);
        let mut edge_data = Vec::with_capacity(edges.iter().map(Vec::len).sum());
        for list in &edges {
            edge_offsets.push(edge_data.len() as u32);
            edge_data.extend_from_slice(list);
        }
        edge_offsets.push(edge_data.len() as u32);

        // Dense op-kind index for candidate starting states: counting
        // sort over nodes in id order, so each per-op slice stays
        // ascending by node id exactly as the map-based index was.
        let n_ops = OpKind::ALL.len();
        let mut op_counts = vec![0u32; n_ops];
        for (_, method) in program.methods() {
            for insn in &method.code {
                op_counts[insn.op_kind() as usize] += 1;
            }
        }
        let mut op_ranges = Vec::with_capacity(n_ops + 1);
        let mut running = 0u32;
        for &c in &op_counts {
            op_ranges.push(running);
            running += c;
        }
        op_ranges.push(running);
        let mut op_cursor: Vec<u32> = op_ranges[..n_ops].to_vec();
        let mut op_nodes = vec![NodeId(0); running as usize];
        for (mid, method) in program.methods() {
            for (i, insn) in method.code.iter().enumerate() {
                let slot = &mut op_cursor[insn.op_kind() as usize];
                op_nodes[*slot as usize] = node(mid, Bci(i as u32));
                *slot += 1;
            }
        }

        Icfg {
            base,
            method_of,
            edge_offsets,
            edge_data,
            op_ranges,
            op_nodes,
        }
    }

    /// Total number of nodes (= total instructions in the program).
    pub fn node_count(&self) -> usize {
        self.method_of.len()
    }

    /// The node for `(method, bci)`.
    pub fn node(&self, method: MethodId, bci: Bci) -> NodeId {
        NodeId(self.base[method.index()] + bci.0)
    }

    /// The method owning `node`.
    pub fn method_of(&self, node: NodeId) -> MethodId {
        self.method_of[node.index()]
    }

    /// The bytecode index of `node` within its method.
    pub fn bci_of(&self, node: NodeId) -> Bci {
        let m = self.method_of(node);
        Bci(node.0 - self.base[m.index()])
    }

    /// `(method, bci)` of a node.
    pub fn location(&self, node: NodeId) -> (MethodId, Bci) {
        (self.method_of(node), self.bci_of(node))
    }

    /// Outgoing edges of `node`.
    #[inline]
    pub fn edges(&self, node: NodeId) -> &[Edge] {
        let lo = self.edge_offsets[node.index()] as usize;
        let hi = self.edge_offsets[node.index() + 1] as usize;
        &self.edge_data[lo..hi]
    }

    /// All nodes whose instruction has operation kind `op` — the candidate
    /// start states for projecting a trace segment whose first symbol is
    /// `op`. Ascending by node id.
    #[inline]
    pub fn nodes_with_op(&self, op: OpKind) -> &[NodeId] {
        let lo = self.op_ranges[op as usize] as usize;
        let hi = self.op_ranges[op as usize + 1] as usize;
        &self.op_nodes[lo..hi]
    }

    /// The entry node of a method.
    pub fn entry_of(&self, method: MethodId) -> NodeId {
        self.node(method, Bci(0))
    }

    /// Total number of edges (diagnostics).
    pub fn edge_count(&self) -> usize {
        self.edge_data.len()
    }

    /// All node ids, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.method_of.len() as u32).map(NodeId)
    }

    /// The edge `from → to`, if one exists (the first such edge in
    /// insertion order when parallel edges of different kinds exist).
    pub fn edge_between(&self, from: NodeId, to: NodeId) -> Option<Edge> {
        self.edges(from).iter().copied().find(|e| e.to == to)
    }

    /// Number of `Call` edges (the family virtual-call refinement
    /// shrinks).
    pub fn call_edge_count(&self) -> usize {
        self.edge_data
            .iter()
            .filter(|e| e.kind == EdgeKind::Call)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jportal_bytecode::builder::ProgramBuilder;
    use jportal_bytecode::{CmpKind, Instruction as I};

    /// main calls helper; helper divides; main has a catch-all handler.
    fn call_program() -> (Program, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut h = pb.method(c, "helper", 2, true);
        h.emit(I::Iload(0));
        h.emit(I::Iload(1));
        h.emit(I::Idiv);
        h.emit(I::Ireturn);
        let helper = h.finish();
        let mut m = pb.method(c, "main", 0, false);
        let handler = m.label();
        let start = m.here();
        m.emit(I::Iconst(6));
        m.emit(I::Iconst(2));
        m.emit(I::InvokeStatic(helper));
        m.emit(I::Pop);
        let end = m.here();
        m.emit(I::Return);
        m.add_handler(start, end, handler, None);
        m.bind(handler);
        m.emit(I::Pop);
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        (p, main, helper)
    }

    use jportal_bytecode::Program;

    #[test]
    fn node_ids_partition_by_method() {
        let (p, main, helper) = call_program();
        let icfg = Icfg::build(&p);
        assert_eq!(icfg.node_count(), p.code_size());
        let n = icfg.node(main, Bci(2));
        assert_eq!(icfg.method_of(n), main);
        assert_eq!(icfg.bci_of(n), Bci(2));
        assert_eq!(icfg.location(icfg.entry_of(helper)), (helper, Bci(0)));
    }

    #[test]
    fn call_and_return_edges() {
        let (p, main, helper) = call_program();
        let icfg = Icfg::build(&p);
        let call = icfg.node(main, Bci(2));
        assert!(icfg
            .edges(call)
            .iter()
            .any(|e| e.kind == EdgeKind::Call && e.to == icfg.entry_of(helper)));
        let ret = icfg.node(helper, Bci(3));
        assert!(icfg
            .edges(ret)
            .iter()
            .any(|e| e.kind == EdgeKind::Return && e.to == icfg.node(main, Bci(3))));
    }

    #[test]
    fn uncaught_exception_propagates_to_caller_handler() {
        let (p, main, helper) = call_program();
        let icfg = Icfg::build(&p);
        // helper's idiv has no local handler; it must have an exception
        // edge into main's handler (bci 5).
        let idiv = icfg.node(helper, Bci(2));
        assert!(icfg
            .edges(idiv)
            .iter()
            .any(|e| e.kind == EdgeKind::Exception && e.to == icfg.node(main, Bci(5))));
    }

    #[test]
    fn branch_edges_carry_directions() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, 0);
        let mut m = pb.method(c, "main", 0, false);
        let t = m.label();
        m.emit(I::Iconst(1));
        m.branch_if(CmpKind::Eq, t);
        m.emit(I::Nop);
        m.bind(t);
        m.emit(I::Return);
        let id = m.finish();
        let p = pb.finish_with_entry(id).unwrap();
        let icfg = Icfg::build(&p);
        let br = icfg.node(id, Bci(1));
        let kinds: Vec<EdgeKind> = icfg.edges(br).iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::Taken));
        assert!(kinds.contains(&EdgeKind::NotTaken));
    }

    #[test]
    fn virtual_call_fans_out_to_cha_targets() {
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("Base", None, 0);
        let mut r = pb.method(base, "run", 1, true);
        r.emit(I::Iconst(1));
        r.emit(I::Ireturn);
        let run_base = r.finish();
        let slot = pb.add_virtual(base, run_base);
        let derived = pb.add_class("Derived", Some(base), 0);
        let mut r = pb.method(derived, "run", 1, true);
        r.emit(I::Iconst(2));
        r.emit(I::Ireturn);
        let run_derived = r.finish();
        pb.override_virtual(derived, slot, run_derived);
        let mut m = pb.method(base, "main", 0, false);
        m.emit(I::New(derived));
        m.emit(I::InvokeVirtual {
            declared_in: base,
            slot,
        });
        m.emit(I::Pop);
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();
        let icfg = Icfg::build(&p);
        let call = icfg.node(main, Bci(1));
        let callees: Vec<NodeId> = icfg
            .edges(call)
            .iter()
            .filter(|e| e.kind == EdgeKind::Call)
            .map(|e| e.to)
            .collect();
        assert_eq!(callees.len(), 2);
        assert!(callees.contains(&icfg.entry_of(run_base)));
        assert!(callees.contains(&icfg.entry_of(run_derived)));
    }

    #[test]
    fn refined_targets_shrink_call_and_return_edges() {
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("Base", None, 0);
        let mut r = pb.method(base, "run", 1, true);
        r.emit(I::Iconst(1));
        r.emit(I::Ireturn);
        let run_base = r.finish();
        let slot = pb.add_virtual(base, run_base);
        let derived = pb.add_class("Derived", Some(base), 0);
        let mut r = pb.method(derived, "run", 1, true);
        r.emit(I::Iconst(2));
        r.emit(I::Ireturn);
        let run_derived = r.finish();
        pb.override_virtual(derived, slot, run_derived);
        let mut m = pb.method(base, "main", 0, false);
        m.emit(I::New(derived));
        m.emit(I::InvokeVirtual {
            declared_in: base,
            slot,
        });
        m.emit(I::Pop);
        m.emit(I::Return);
        let main = m.finish();
        let p = pb.finish_with_entry(main).unwrap();

        struct OnlyDerived(MethodId);
        impl CallTargetResolver for OnlyDerived {
            fn virtual_targets(
                &self,
                _site: (MethodId, Bci),
                _declared_in: ClassId,
                _slot: u16,
            ) -> Vec<MethodId> {
                vec![self.0]
            }
        }
        let refined = Icfg::build_with_targets(&p, &OnlyDerived(run_derived));
        let cha = Icfg::build(&p);
        assert!(refined.call_edge_count() < cha.call_edge_count());
        let call = refined.node(main, Bci(1));
        let callees: Vec<NodeId> = refined
            .edges(call)
            .iter()
            .filter(|e| e.kind == EdgeKind::Call)
            .map(|e| e.to)
            .collect();
        assert_eq!(callees, vec![refined.entry_of(run_derived)]);
        // The un-instantiated target's `ireturn` no longer has a return
        // edge into main (it was never callable).
        let base_ret = refined.node(run_base, Bci(1));
        assert!(refined
            .edges(base_ret)
            .iter()
            .all(|e| e.kind != EdgeKind::Return));
        assert!(cha
            .edges(cha.node(run_base, Bci(1)))
            .iter()
            .any(|e| e.kind == EdgeKind::Return));
        // Edge lookup helper.
        assert!(refined
            .edge_between(call, refined.entry_of(run_derived))
            .is_some());
        assert!(refined
            .edge_between(call, refined.entry_of(run_base))
            .is_none());
    }

    #[test]
    fn op_index_finds_all_occurrences() {
        let (p, _, _) = call_program();
        let icfg = Icfg::build(&p);
        use jportal_bytecode::OpKind;
        assert_eq!(icfg.nodes_with_op(OpKind::Idiv).len(), 1);
        assert_eq!(icfg.nodes_with_op(OpKind::Pop).len(), 2);
        assert!(icfg.nodes_with_op(OpKind::Goto).is_empty());
        assert!(icfg.edge_count() > 0);
    }

    #[test]
    fn edge_compatibility_with_directions() {
        assert!(EdgeKind::Taken.compatible_with(BranchDir::Taken));
        assert!(!EdgeKind::Taken.compatible_with(BranchDir::NotTaken));
        assert!(EdgeKind::Taken.compatible_with(BranchDir::Unknown));
        assert!(EdgeKind::Call.compatible_with(BranchDir::NotTaken));
    }
}
