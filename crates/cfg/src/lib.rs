//! Control-flow graphs and the automata of JPortal (PLDI 2021).
//!
//! Three layers:
//!
//! * [`block`] — per-method basic-block CFGs (used by the simulated JIT and
//!   the Ball–Larus baselines),
//! * [`icfg`] — the instruction-granular **interprocedural** CFG of §4 of
//!   the paper, with fall-through, branch, switch, call, return and
//!   exception edges,
//! * [`nfa`] + [`abs`] — the ICFG viewed as a nondeterministic finite
//!   automaton (Definition 4.1), its control-flow abstraction (Definitions
//!   4.2/4.3) and the ε-free DFA used by abstraction-guided matching
//!   (Algorithm 2).
//!
//! [`tier`] implements the three-tier abstraction hierarchy of Definition
//! 5.2 (call structure → control structure → concrete instructions) used by
//! the data-recovery search.

pub mod abs;
pub mod block;
pub mod fx;
pub mod icfg;
pub mod nfa;
pub mod sym;
pub mod tier;

pub use block::{Block, BlockEdge, BlockId, Cfg};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use icfg::{CallTargetResolver, Edge, EdgeKind, Icfg, NodeId};
pub use nfa::{MatchOutcome, MatchScratch, Nfa};
pub use sym::{BranchDir, Sym};
pub use tier::Tier;
