//! A tiny FxHash-style hasher for the hot in-memory caches.
//!
//! `std`'s default SipHash is keyed and DoS-resistant, which the matcher
//! caches do not need: every key is an internal, attacker-free value
//! (node ids, interned state-set ids, opcode bytes), and the SipHash
//! rounds dominate the cost of a lookup whose payload is one or two
//! machine words. This is the multiply-xor scheme popularized by
//! rustc's `FxHasher`, implemented in-tree because the build has no
//! crates.io access (same shim policy as `proptest`/`criterion`).
//!
//! Determinism note: iteration order of a `HashMap` is unspecified under
//! *any* hasher, so no caller may depend on it — the determinism tests
//! guard that contract; switching hashers cannot change observable
//! results, only lookup latency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FNV-adjacent constant rustc uses; one multiply and
/// a rotate per word gives sufficient avalanche for table indexing.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: a single 64-bit accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            assert!(seen.insert(hash_of(i)), "collision at {i}");
        }
    }

    #[test]
    fn byte_slices_of_different_lengths_differ() {
        assert_ne!(hash_of([0u8; 3].as_slice()), hash_of([0u8; 4].as_slice()));
        assert_ne!(hash_of(b"abc".as_slice()), hash_of(b"abd".as_slice()));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u8), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, (i % 7) as u8), i * 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&(i, (i % 7) as u8)], i * 3);
        }
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        // Unkeyed by design: two hashers agree, so shard selection is
        // stable across threads and runs.
        assert_eq!(hash_of(12345u64), hash_of(12345u64));
        assert_eq!(hash_of("path"), hash_of("path"));
    }
}
