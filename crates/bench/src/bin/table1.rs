//! Table 1 — characteristics of subject programs.
//!
//! Prints the analog workloads' static characteristics next to the
//! paper's DaCapo numbers. Absolute sizes differ by design (the analogs
//! are scaled down ~1000×); the row *structure* — which subjects are
//! multi-threaded, relative size ordering of the code bases — is the
//! reproduced property.

use jportal_bench::harness::{row, EVAL_SCALE};
use jportal_bench::paper;
use jportal_workloads::{all_workloads, characteristics};

fn main() {
    println!("Table 1: characteristics of subject programs");
    println!("(paper values in parentheses; analog sizes are intentionally ~1000x smaller)\n");
    let widths = [9, 8, 14, 12, 12, 18];
    row(
        &[
            "subject".into(),
            "version".into(),
            "#insns (LoC)".into(),
            "#methods".into(),
            "#classes".into(),
            "threaded".into(),
        ],
        &widths,
    );
    for (w, p) in all_workloads(EVAL_SCALE).iter().zip(paper::TABLE1.iter()) {
        let c = characteristics(w);
        assert_eq!(c.name, p.0, "benchmark order");
        row(
            &[
                c.name.clone(),
                c.version.clone(),
                format!("{} ({})", c.instructions, p.1),
                format!("{} ({})", c.methods, p.2),
                format!("{} ({})", c.classes, p.3),
                format!("{} ({})", c.threaded, p.5),
            ],
            &widths,
        );
        assert_eq!(
            c.threaded, p.5,
            "{}: threading must match the paper",
            c.name
        );
    }
    println!("\nAll nine subjects present; threading matches the paper exactly.");
}
