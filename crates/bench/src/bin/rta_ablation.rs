//! RTA devirtualization ablation — what the static-analysis layer buys
//! the reconstruction pipeline.
//!
//! For each virtual-call-heavy subject, builds the ICFG with CHA call
//! edges and with RTA-refined call edges, then runs the full offline
//! pipeline both ways and reports:
//!
//! * ICFG size (nodes, total edges, call edges);
//! * ANFA construction time (the NFA states are the ICFG nodes, so edge
//!   pruning is state-transition pruning);
//! * projection nondeterminism (candidate start states the matcher had
//!   to try, and how many the abstract filter pruned);
//! * reconstruction wall time and end-to-end accuracy.
//!
//! ```sh
//! cargo run --release -p jportal-bench --bin rta_ablation
//! ```

use std::time::Instant;

use jportal_analysis::Rta;
use jportal_bench::harness::{jvm_config, row, EVAL_SCALE};
use jportal_cfg::abs::AbstractNfa;
use jportal_cfg::Icfg;
use jportal_core::accuracy::overall_accuracy;
use jportal_core::{JPortal, JPortalConfig};
use jportal_jvm::runtime::Jvm;
use jportal_workloads::workload_by_name;

struct Measurement {
    nodes: usize,
    edges: usize,
    call_edges: usize,
    anfa_ms: f64,
    candidates: usize,
    pruned: usize,
    analyze_ms: f64,
    accuracy: f64,
}

fn measure(name: &str, devirtualize: bool) -> Measurement {
    let w = workload_by_name(name, EVAL_SCALE);
    let r = Jvm::new(jvm_config(&w, true, None, None)).run_threads(&w.program, &w.threads);
    let traces = r.traces.as_ref().expect("tracing on");

    // ICFG + ANFA construction, timed in isolation.
    let icfg = if devirtualize {
        let rta = Rta::analyze(&w.program);
        Icfg::build_with_targets(&w.program, &rta)
    } else {
        Icfg::build(&w.program)
    };
    let t0 = Instant::now();
    let anfa = AbstractNfa::new(&w.program, &icfg);
    anfa.prewarm(1);
    let anfa_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Full pipeline, timed end to end.
    let jp = JPortal::with_config(
        &w.program,
        JPortalConfig {
            devirtualize,
            ..JPortalConfig::default()
        },
    );
    let t1 = Instant::now();
    let report = jp.analyze(traces, &r.archive);
    let analyze_ms = t1.elapsed().as_secs_f64() * 1e3;

    let (mut candidates, mut pruned) = (0, 0);
    for t in &report.threads {
        candidates += t.projection.candidates_tried;
        pruned += t.projection.candidates_pruned;
    }

    Measurement {
        nodes: icfg.node_count(),
        edges: icfg.edge_count(),
        call_edges: icfg.call_edge_count(),
        anfa_ms,
        candidates,
        pruned,
        analyze_ms,
        accuracy: overall_accuracy(&w.program, &r.truth, &report),
    }
}

fn main() {
    println!("RTA devirtualization ablation (CHA -> RTA deltas)\n");
    let widths = [9usize, 13, 13, 13, 12, 14, 12, 12, 10];
    row(
        &[
            "subject".into(),
            "variant".into(),
            "icfg nodes".into(),
            "icfg edges".into(),
            "call edges".into(),
            "anfa build".into(),
            "candidates".into(),
            "reconstruct".into(),
            "accuracy".into(),
        ],
        &widths,
    );

    for name in ["batik", "pmd"] {
        let cha = measure(name, false);
        let rta = measure(name, true);
        for (label, m) in [("CHA", &cha), ("RTA", &rta)] {
            row(
                &[
                    name.into(),
                    label.into(),
                    m.nodes.to_string(),
                    m.edges.to_string(),
                    m.call_edges.to_string(),
                    format!("{:.2} ms", m.anfa_ms),
                    format!("{} (-{})", m.candidates, m.pruned),
                    format!("{:.1} ms", m.analyze_ms),
                    format!("{:.1}%", m.accuracy * 100.0),
                ],
                &widths,
            );
        }
        let edge_cut = 100.0 * (cha.call_edges - rta.call_edges) as f64 / cha.call_edges as f64;
        let cand_cut = if cha.candidates > 0 {
            100.0 * (cha.candidates as f64 - rta.candidates as f64) / cha.candidates as f64
        } else {
            0.0
        };
        println!(
            "  {name}: call edges -{edge_cut:.1}%, candidate starts {cand_cut:+.1}% fewer, accuracy {:+.2} pts\n",
            (rta.accuracy - cha.accuracy) * 100.0
        );
        assert!(
            rta.call_edges <= cha.call_edges,
            "refinement may only remove call edges"
        );
        assert!(
            rta.accuracy >= cha.accuracy,
            "refinement must not cost accuracy"
        );
    }
}
