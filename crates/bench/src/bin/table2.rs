//! Table 2 — runtime slowdowns of JPortal vs instrumentation-based
//! (SC/PF/CF/HM) and sampling-based (xprof/JProfiler) profiling.
//!
//! Reproduced property: the *ordering and rough magnitudes* — JPortal in
//! low single-digit percent, sampling below ~2×, SC < PF ≪ CF (which
//! explodes on branch-dense subjects), HM heavy on call-dense subjects.

use jportal_bench::harness::{
    fmt_x, jvm_config, row, run_baseline, run_traced, slowdown, EVAL_SCALE,
};
use jportal_bench::paper;
use jportal_jvm::runtime::Jvm;
use jportal_profilers::{
    instrument_control_flow, instrument_hot_methods, instrument_path_profiling,
    instrument_statement_coverage, SamplingProfiler,
};
use jportal_workloads::all_workloads;

fn main() {
    println!("Table 2: slowdown (x) per profiling technique");
    println!("(measured | paper)\n");
    let widths = [9usize, 17, 17, 17, 19, 17, 15, 15];
    row(
        &[
            "subject".into(),
            "JPortal".into(),
            "SC".into(),
            "PF".into(),
            "CF".into(),
            "HM".into(),
            "xprof".into(),
            "JProfiler".into(),
        ],
        &widths,
    );

    let mut ok = true;
    for (w, p) in all_workloads(EVAL_SCALE).iter().zip(paper::TABLE2.iter()) {
        let base = run_baseline(w).wall_cycles;

        let jp = slowdown(base, run_traced(w, None, None).wall_cycles);

        let run_instrumented = |program: &jportal_bytecode::Program| {
            let mut cfg = jvm_config(w, false, None, None);
            cfg.record_truth_trace = false;
            Jvm::new(cfg).run_threads(program, &w.threads).wall_cycles
        };
        let (sc_p, _) = instrument_statement_coverage(&w.program);
        let sc = slowdown(base, run_instrumented(&sc_p));
        let (pf_p, _) = instrument_path_profiling(&w.program);
        let pf = slowdown(base, run_instrumented(&pf_p));
        let (cf_p, _) = instrument_control_flow(&w.program);
        let cf = slowdown(base, run_instrumented(&cf_p));
        let hm_p = instrument_hot_methods(&w.program);
        let hm = slowdown(base, run_instrumented(&hm_p));

        let mut cfg = jvm_config(w, false, None, None);
        cfg.record_truth_trace = false;
        let xp = slowdown(
            base,
            SamplingProfiler::xprof()
                .run(&w.program, &w.threads, cfg.clone())
                .wall_cycles,
        );
        let jpr = slowdown(
            base,
            SamplingProfiler::jprofiler()
                .run(&w.program, &w.threads, cfg)
                .wall_cycles,
        );

        row(
            &[
                w.name.into(),
                format!("{} | {}", fmt_x(jp), fmt_x(p.jportal)),
                format!("{} | {}", fmt_x(sc), fmt_x(p.sc)),
                format!("{} | {}", fmt_x(pf), fmt_x(p.pf)),
                format!("{} | {}", fmt_x(cf), fmt_x(p.cf)),
                format!("{} | {}", fmt_x(hm), fmt_x(p.hm)),
                format!("{} | {}", fmt_x(xp), fmt_x(p.xprof)),
                format!("{} | {}", fmt_x(jpr), fmt_x(p.jprofiler)),
            ],
            &widths,
        );

        // Shape checks, mirroring the paper's qualitative claims.
        let shape = jp < sc.min(pf).min(cf).min(hm) // hardware beats instrumentation
            && cf > sc // full tracing costs more than coverage
            && cf > pf;
        if !shape {
            ok = false;
            println!("  ^ SHAPE VIOLATION on {}", w.name);
        }
    }
    println!(
        "\nShape: JPortal < every instrumentation technique; SC < CF; PF < CF — {}",
        if ok { "HOLDS" } else { "VIOLATED" }
    );
}
