//! Table 4 — accuracy of hot-method detection.
//!
//! The paper takes the 10 hottest methods from the instrumentation-based
//! ground truth and counts how many each profiler's own top-10 recovers.
//! The analogs have fewer methods than DaCapo, so the set size is
//! `min(10, method count − 1)` per subject; the reproduced property is
//! the ordering: JPortal ≳ JProfiler ≥ xprof.

use jportal_bench::harness::{analyze, jvm_config, row, run_traced, EVAL_SCALE};
use jportal_bench::paper;
use jportal_core::accuracy::hot_method_intersection;
use jportal_core::profiles::HotMethodProfile;
use jportal_profilers::SamplingProfiler;
use jportal_workloads::all_workloads;

fn main() {
    println!("Table 4: hot methods found (out of top-N) — measured | paper(top-10)\n");
    let widths = [9usize, 4, 13, 13, 13];
    row(
        &[
            "subject".into(),
            "N".into(),
            "xprof".into(),
            "JProfiler".into(),
            "JPortal".into(),
        ],
        &widths,
    );
    let mut order_ok = true;
    for (w, &(pname, pxp, pjp, pjpo)) in all_workloads(EVAL_SCALE).iter().zip(paper::TABLE4.iter())
    {
        assert_eq!(w.name, pname);
        let n = (w.program.method_count().saturating_sub(1)).clamp(3, 10);

        // Ground truth: hottest by exact self-cycles.
        let traced = run_traced(w, None, None);
        let truth_top = traced.truth.hottest_methods(n);

        // JPortal: trace-derived hot methods.
        let (report, _) = analyze(w, &traced);
        let jportal_top = HotMethodProfile::from_report(&report).hottest(n);
        let jpo = hot_method_intersection(&truth_top, &jportal_top);

        // Samplers (best of three runs, like the paper).
        let sample_top = |prof: SamplingProfiler| -> usize {
            (0..3)
                .map(|_| {
                    let mut cfg = jvm_config(w, false, None, None);
                    cfg.record_truth_trace = false;
                    let r = prof.run(&w.program, &w.threads, cfg);
                    hot_method_intersection(&truth_top, &r.hottest_sampled(n))
                })
                .max()
                .unwrap_or(0)
        };
        let xp = sample_top(SamplingProfiler::xprof());
        let jp = sample_top(SamplingProfiler::jprofiler());

        row(
            &[
                w.name.into(),
                format!("{n}"),
                format!("{xp} | {pxp}"),
                format!("{jp} | {pjp}"),
                format!("{jpo} | {pjpo}"),
            ],
            &widths,
        );
        if jpo < xp || jpo < jp {
            order_ok = false;
            println!("  ^ SHAPE VIOLATION on {}", w.name);
        }
    }
    println!(
        "\nShape: JPortal >= both samplers on every subject — {}",
        if order_ok { "HOLDS" } else { "VIOLATED" }
    );
}
