//! Table 5 — trace sizes and offline decoding/recovery times.
//!
//! The paper compares the control-flow-instrumentation baseline's trace
//! volume and decode time against JPortal's. Reproduced properties: the
//! CF baseline's trace dwarfs JPortal's on branch-dense subjects
//! (avrora, h2), while on low-activity subjects (pmd) the PT stream with
//! its metadata can be the larger one; recovery time is only paid where
//! data was actually lost.

use std::time::Instant;

use jportal_bench::harness::{buffer_presets, jvm_config, row, score, EVAL_SCALE};
use jportal_bench::paper;
use jportal_jvm::runtime::Jvm;
use jportal_profilers::instrument_control_flow;
use jportal_workloads::all_workloads;

fn main() {
    println!("Table 5: trace size and offline analysis time");
    println!("(sizes in KB measured vs MB paper — the simulation is ~1000x scaled)\n");
    let widths = [9usize, 14, 14, 14, 14, 12];
    row(
        &[
            "subject".into(),
            "CF TS (KB)".into(),
            "CF DT (ms)".into(),
            "JP TS (KB)".into(),
            "JP DT (ms)".into(),
            "JP RT".into(),
        ],
        &widths,
    );
    for (w, p) in all_workloads(EVAL_SCALE).iter().zip(paper::TABLE5.iter()) {
        // Baseline: CF instrumentation trace volume; its "decode" is a
        // linear parse of the event stream, priced at a fixed throughput.
        let (cf_p, _) = instrument_control_flow(&w.program);
        let mut cfg = jvm_config(w, false, None, None);
        cfg.record_truth_trace = false;
        let cf_run = Jvm::new(cfg).run_threads(&cf_p, &w.threads);
        let (_, cf_bytes) = cf_run.probes.event_volume();
        // Parse throughput stand-in: 40 MB/s of event records.
        let cf_decode_ms = cf_bytes as f64 / 40_000.0;

        // JPortal under the "128M" preset (so recovery has work to do on
        // the lossy subjects).
        let presets = buffer_presets(w);
        let (_, buffer, drain) = presets[1];
        let start = Instant::now();
        let s = score(w, Some(buffer), Some(drain));
        let _total = start.elapsed();
        let traces = s.result.traces.as_ref().unwrap();
        let jp_bytes: u64 = traces.per_core.iter().map(|t| t.bytes.len() as u64).sum();
        let holes: usize = s.report.threads.iter().map(|t| t.recovery.holes).sum();
        let rt = if holes == 0 {
            "-".to_string()
        } else {
            // Recovery share of analysis time, attributed by hole count
            // vs segment count.
            let segs: usize = s.report.threads.iter().map(|t| t.segments).sum();
            let frac = holes as f64 / (holes + segs).max(1) as f64;
            format!("{:.1}ms", s.analysis_time.as_secs_f64() * 1000.0 * frac)
        };

        row(
            &[
                w.name.into(),
                format!("{:.1} ({:.0}M)", cf_bytes as f64 / 1024.0, p.1),
                format!("{cf_decode_ms:.1}"),
                format!("{:.1} ({:.0}M)", jp_bytes as f64 / 1024.0, p.3),
                format!("{:.1}", s.analysis_time.as_secs_f64() * 1000.0),
                rt,
            ],
            &widths,
        );
    }
    println!("\nShape: CF trace volume >> JPortal PT volume on branch-dense subjects;");
    println!("recovery time only charged where loss occurred.");
}
