//! Table 3 — breakdown of data captured and lost, and JPortal's
//! reconstruction accuracies, under three buffer sizes.
//!
//! The paper sweeps 256 MB / 128 MB / 64 MB per-core buffers on batik, h2
//! and sunflow. The analogs sweep proportional buffer presets; the
//! reproduced properties: missing data (PMD) grows as the buffer shrinks,
//! recovery contributes a meaningful slice (PR) whose accuracy (RA)
//! degrades with more loss, while decoding accuracy (DA) stays roughly
//! flat regardless of buffer size.

use jportal_bench::harness::{fmt_pct, global_presets, row, score, EVAL_SCALE};
use jportal_bench::paper;
use jportal_workloads::all_workloads;
use jportal_workloads::workload_by_name;

fn main() {
    println!("Table 3: capture/loss breakdown under buffer sizes (measured | paper)\n");
    let widths = [9usize, 7, 17, 17, 17, 17, 17, 17];
    row(
        &[
            "subject".into(),
            "buffer".into(),
            "PMD".into(),
            "PR".into(),
            "RA".into(),
            "PDC".into(),
            "PD".into(),
            "DA".into(),
        ],
        &widths,
    );

    let presets = global_presets(&all_workloads(EVAL_SCALE));
    for name in ["batik", "h2", "sunflow"] {
        let w = workload_by_name(name, EVAL_SCALE);
        let mut prev_pmd = -1.0f64;
        for (label, buffer, drain) in presets {
            let s = score(&w, Some(buffer), Some(drain));
            let p = paper::TABLE3
                .iter()
                .find(|c| c.name == name && c.buffer == label)
                .expect("paper cell");
            let a = s.accuracy;
            row(
                &[
                    name.into(),
                    label.into(),
                    format!("{} | {}", fmt_pct(a.pmd), fmt_pct(p.pmd)),
                    format!("{} | {}", fmt_pct(a.pr), fmt_pct(p.pr)),
                    format!("{} | {}", fmt_pct(a.ra), fmt_pct(p.ra)),
                    format!("{} | {}", fmt_pct(a.pdc), fmt_pct(p.pdc)),
                    format!("{} | {}", fmt_pct(a.pd), fmt_pct(p.pd)),
                    format!("{} | {}", fmt_pct(a.da), fmt_pct(p.da)),
                ],
                &widths,
            );
            if a.pmd < prev_pmd {
                println!("  ^ SHAPE VIOLATION: PMD must grow as the buffer shrinks");
            }
            prev_pmd = a.pmd;
        }
        println!();
    }
    println!("Shape: smaller buffer => more missing data; DA roughly stable across buffers.");
}
