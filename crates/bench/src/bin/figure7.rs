//! Figure 7 — JPortal's overall end-to-end control-flow accuracy per
//! benchmark (the paper's headline ≈ 80% average).
//!
//! Each subject runs under the "128M"-analog buffer preset (moderate data
//! loss), is reconstructed by the full pipeline, and scored against the
//! executor's exact ground truth.

use jportal_bench::harness::{fmt_pct, global_presets, row, score, EVAL_SCALE};
use jportal_bench::paper;
use jportal_workloads::all_workloads;

fn main() {
    println!("Figure 7: JPortal end-to-end accuracy (measured | paper)\n");
    let widths = [9usize, 18, 14, 14];
    row(
        &[
            "subject".into(),
            "accuracy".into(),
            "byte loss".into(),
            "bar".into(),
        ],
        &widths,
    );
    let mut sum = 0.0;
    let workloads = all_workloads(EVAL_SCALE);
    let presets = global_presets(&workloads);
    let (_, buffer, drain) = presets[1]; // the "128M" analog
    for (w, &(pname, pacc)) in workloads.iter().zip(paper::FIGURE7.iter()) {
        assert_eq!(w.name, pname);
        let s = score(w, Some(buffer), Some(drain));
        sum += s.accuracy.overall;
        let bar = "#".repeat((s.accuracy.overall * 20.0) as usize);
        row(
            &[
                w.name.into(),
                format!("{} | {}", fmt_pct(s.accuracy.overall), fmt_pct(pacc)),
                fmt_pct(s.byte_loss),
                bar,
            ],
            &widths,
        );
    }
    let avg = sum / 9.0;
    println!(
        "\nOverall average accuracy: {} (paper: 80.0%)",
        fmt_pct(avg)
    );
}
